//! Failure injection: the runtime must surface dead peers as errors, not
//! hangs — a production collective library's most important property.

use std::thread;
use std::time::Duration;

use preduce_comm::collectives::{barrier, ring_allreduce};
use preduce_comm::control::{control_links, GroupAssignment};
use preduce_comm::{CommError, CommWorld};

#[test]
fn collective_with_dead_peer_times_out() {
    // Rank 1 is dropped before participating: rank 0's all-reduce must
    // fail with Timeout (the channel stays open via rank 0's own sender
    // clone, so disconnection cannot be detected — only the timeout can).
    let mut eps = CommWorld::new(2).into_endpoints();
    let _e1 = eps.pop().unwrap(); // kept alive but silent
    let mut e0 = eps.pop().unwrap();
    e0.set_timeout(Duration::from_millis(50));
    let mut data = vec![1.0f32; 8];
    let err = ring_allreduce(&mut e0, &[0, 1], 0, &mut data).unwrap_err();
    assert!(matches!(err, CommError::Timeout { peer: 1, .. }), "{err:?}");
}

#[test]
fn peer_panic_mid_collective_does_not_hang_survivors() {
    let mut eps = CommWorld::new(3).into_endpoints();
    for ep in &mut eps {
        ep.set_timeout(Duration::from_millis(100));
    }
    let e2 = eps.pop().unwrap();
    let mut e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();

    // Rank 2 "crashes" before the barrier (its endpoint is dropped inside
    // a thread that exits immediately).
    let crasher = thread::spawn(move || {
        drop(e2);
    });
    crasher.join().unwrap();

    let t0 = thread::spawn(move || {
        let r = barrier(&mut e0, &[0, 1, 2], 0);
        r.unwrap_err()
    });
    let t1 = thread::spawn(move || {
        let r = barrier(&mut e1, &[0, 1, 2], 0);
        r.unwrap_err()
    });
    // Both survivors must return (with errors) rather than hang.
    let e0_err = t0.join().unwrap();
    let e1_err = t1.join().unwrap();
    for e in [e0_err, e1_err] {
        assert!(
            matches!(e, CommError::Timeout { .. }),
            "expected timeout, got {e:?}"
        );
    }
}

#[test]
fn controller_death_is_visible_to_workers() {
    let (ctl, workers) = control_links(2);
    drop(ctl);
    // Sending a ready signal into a dead controller errors immediately.
    let err = workers[0].send_ready(1).unwrap_err();
    assert!(matches!(err, CommError::Disconnected { .. }), "{err:?}");
}

#[test]
fn worker_death_is_visible_to_controller() {
    let (ctl, mut workers) = control_links(2);
    let _w1 = workers.pop().unwrap();
    let dead = workers.pop().unwrap();
    drop(dead);
    let err = ctl
        .send_assignment(
            0,
            GroupAssignment {
                group: vec![0],
                weights: vec![1.0],
                base_tag: 0,
                new_iteration: 0,
            },
        )
        .unwrap_err();
    assert!(
        matches!(err, CommError::Disconnected { peer: 0 }),
        "{err:?}"
    );
}

#[test]
fn mismatched_payload_lengths_are_rejected_not_corrupted() {
    // Two ranks enter the same collective with different vector lengths:
    // the receiver must observe PayloadMismatch instead of silently
    // writing a short chunk.
    let mut eps = CommWorld::new(2).into_endpoints();
    let mut e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    e0.set_timeout(Duration::from_millis(500));
    e1.set_timeout(Duration::from_millis(500));

    let t1 = thread::spawn(move || {
        let mut data = vec![1.0f32; 100];
        ring_allreduce(&mut e1, &[0, 1], 0, &mut data)
    });
    let mut data = vec![1.0f32; 10];
    let r0 = ring_allreduce(&mut e0, &[0, 1], 0, &mut data);
    let r1 = t1.join().unwrap();
    assert!(
        r0.is_err() || r1.is_err(),
        "length mismatch went unnoticed: {r0:?} {r1:?}"
    );
    let mismatch = [r0, r1]
        .into_iter()
        .filter_map(|r| r.err())
        .any(|e| matches!(e, CommError::PayloadMismatch { .. }));
    assert!(mismatch, "expected a PayloadMismatch error");
}

#[test]
fn stash_survives_interleaved_failures() {
    // A message for a later tag arrives, then the peer dies: the stashed
    // message must still be deliverable even though new receives fail.
    let mut eps = CommWorld::new(2).into_endpoints();
    let e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    e0.set_timeout(Duration::from_millis(50));

    e1.send(0, 7, vec![42.0]).unwrap();
    drop(e1);

    // Tag 3 never arrives → timeout; tag 7 is stashed → succeeds.
    assert!(e0.recv(1, 3).is_err());
    assert_eq!(e0.recv(1, 7).unwrap(), vec![42.0]);
}
