use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TensorError;

/// The shape of a dense row-major tensor: an ordered list of axis lengths.
///
/// Shapes in this workspace are small (rank ≤ 4 in practice: minibatch
/// activations are `[batch, features]` or `[batch, channels, h, w]`), so a
/// `Vec<usize>` is plenty and keeps the API simple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from axis lengths.
    ///
    /// Zero-length axes are permitted (an empty tensor), but an empty *rank*
    /// (no axes at all) is not — scalars are represented as `[1]`.
    pub fn new(dims: impl Into<Vec<usize>>) -> Result<Self, TensorError> {
        let dims = dims.into();
        if dims.is_empty() {
            return Err(TensorError::DegenerateShape(
                "rank-0 shapes are not supported; use [1] for scalars".into(),
            ));
        }
        Ok(Shape(dims))
    }

    /// Creates a shape, panicking on a rank-0 request.
    ///
    /// # Panics
    /// Panics if `dims` is empty.
    pub fn of(dims: impl Into<Vec<usize>>) -> Self {
        Self::new(dims).expect("rank-0 shape")
    }

    /// Total number of elements (product of axis lengths).
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Axis lengths as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Length of axis `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Interpreting the shape as a matrix, its `(rows, cols)` pair.
    ///
    /// Rank-1 shapes are treated as a single row; higher ranks collapse all
    /// leading axes into the row count (the standard "flatten batch dims"
    /// convention).
    pub fn as_matrix(&self) -> (usize, usize) {
        match self.0.len() {
            1 => (1, self.0[0]),
            n => (self.0[..n - 1].iter().product(), self.0[n - 1]),
        }
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if `idx` has the wrong rank or any coordinate is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for (i, (&d, &x)) in self.0.iter().zip(idx.iter()).enumerate().rev() {
            assert!(x < d, "index {x} out of bounds for axis {i} (len {d})");
            off += x * stride;
            stride *= d;
        }
        off
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::of(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::of(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::of(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::of([2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dims(), &[2, 3, 4]);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn rank0_rejected() {
        assert!(matches!(
            Shape::new(Vec::<usize>::new()),
            Err(TensorError::DegenerateShape(_))
        ));
    }

    #[test]
    fn zero_axis_allowed() {
        let s = Shape::of([0, 4]);
        assert_eq!(s.volume(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::of([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s = Shape::of([7]);
        assert_eq!(s.strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::of([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 2]), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_checks_bounds() {
        Shape::of([2, 3]).offset(&[2, 0]);
    }

    #[test]
    fn as_matrix_collapses_leading_axes() {
        assert_eq!(Shape::of([5]).as_matrix(), (1, 5));
        assert_eq!(Shape::of([2, 5]).as_matrix(), (2, 5));
        assert_eq!(Shape::of([2, 3, 5]).as_matrix(), (6, 5));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::of([2, 3]).to_string(), "[2, 3]");
    }
}
