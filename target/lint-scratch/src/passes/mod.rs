//! The seven project-specific passes. Each is a pure function (or small
//! state machine) over [`crate::scan::SourceFile`]s; scoping — which
//! files each pass sees — lives in [`crate::scope`] and is applied by
//! [`crate::run_check`].

pub mod event_conformance;
pub mod lock_discipline;
pub mod panic_path;
pub mod reactor_blocking;
pub mod trace_coverage;
pub mod unsafe_audit;
pub mod weight_stochasticity;

/// Names of all passes, in report order (allow directives must name one
/// of these).
pub const ALL: &[&str] = &[
    panic_path::NAME,
    lock_discipline::NAME,
    weight_stochasticity::NAME,
    trace_coverage::NAME,
    event_conformance::NAME,
    unsafe_audit::NAME,
    reactor_blocking::NAME,
];
