//! One driver per strategy family, each written once and projected onto
//! both substrates.
//!
//! A [`StrategyDriver`] owns a strategy's state machine — the math
//! (gradient aggregation, model mixing, staleness scaling) and the
//! membership policy (who participates in each exchange). Its two methods
//! project that machine onto the two substrates: `drive_sim` consumes a
//! [`SimSubstrate`] and replays the machine under deterministic virtual
//! time (these bodies are verbatim moves of the pre-engine `sim::run_*`
//! loops, so fixed-seed trajectories are bit-identical to the goldens);
//! `drive_threaded` runs the same machine as an SPMD program on real OS
//! threads via [`ThreadedSubstrate::run_spmd`].

pub mod gossip;
pub mod preduce;
pub mod ps;
pub mod sync;

use crate::engine::substrate::{SimSubstrate, ThreadedSubstrate};
use crate::metrics::RunResult;
use crate::strategy::{Strategy, StrategyFamily};
use crate::threaded::ThreadedReport;

use ps::PsPolicy;

/// A strategy written once, runnable on either substrate.
pub trait StrategyDriver {
    /// The strategy this driver executes.
    fn strategy(&self) -> Strategy;

    /// Runs the strategy to convergence (or the update cap) under
    /// deterministic virtual time.
    fn drive_sim(&self, substrate: SimSubstrate) -> RunResult;

    /// Runs the strategy for the substrate's iteration budget on real OS
    /// threads.
    fn drive_threaded(&self, substrate: &ThreadedSubstrate) -> ThreadedReport;
}

/// The driver for `strategy`, dispatched by family.
pub fn driver_for(strategy: Strategy) -> Box<dyn StrategyDriver> {
    match strategy.family() {
        StrategyFamily::Collective => Box::new(CollectiveDriver(strategy)),
        StrategyFamily::Gossip => Box::new(GossipDriver(strategy)),
        StrategyFamily::ParameterServer => Box::new(PsDriver(strategy)),
        StrategyFamily::PartialReduce => Box::new(PReduceDriver(strategy)),
    }
}

/// All-Reduce and Eager-Reduce: full-fleet collectives, no server.
struct CollectiveDriver(Strategy);

impl StrategyDriver for CollectiveDriver {
    fn strategy(&self) -> Strategy {
        self.0
    }

    fn drive_sim(&self, substrate: SimSubstrate) -> RunResult {
        let (h, _sink) = substrate.into_parts();
        match self.0 {
            Strategy::AllReduce => sync::run_allreduce(h),
            Strategy::EagerReduce => sync::run_eager_reduce(h),
            other => unreachable!("not a collective strategy: {other:?}"),
        }
    }

    fn drive_threaded(&self, substrate: &ThreadedSubstrate) -> ThreadedReport {
        match self.0 {
            Strategy::AllReduce => sync::threaded_allreduce(substrate),
            Strategy::EagerReduce => sync::threaded_eager_reduce(substrate),
            other => unreachable!("not a collective strategy: {other:?}"),
        }
    }
}

/// AD-PSGD and D-PSGD: decentralized peer-to-peer model mixing.
struct GossipDriver(Strategy);

impl StrategyDriver for GossipDriver {
    fn strategy(&self) -> Strategy {
        self.0
    }

    fn drive_sim(&self, substrate: SimSubstrate) -> RunResult {
        let (h, _sink) = substrate.into_parts();
        match self.0 {
            Strategy::AdPsgd => gossip::run_ad_psgd(h),
            Strategy::DPsgd => gossip::run_d_psgd(h),
            other => unreachable!("not a gossip strategy: {other:?}"),
        }
    }

    fn drive_threaded(&self, substrate: &ThreadedSubstrate) -> ThreadedReport {
        match self.0 {
            Strategy::AdPsgd => gossip::threaded_ad_psgd(substrate),
            Strategy::DPsgd => gossip::threaded_d_psgd(substrate),
            other => unreachable!("not a gossip strategy: {other:?}"),
        }
    }
}

/// The parameter-server zoo: BSP, BK, ASP, SSP, HETE.
struct PsDriver(Strategy);

impl StrategyDriver for PsDriver {
    fn strategy(&self) -> Strategy {
        self.0
    }

    fn drive_sim(&self, substrate: SimSubstrate) -> RunResult {
        let (h, _sink) = substrate.into_parts();
        match self.0 {
            Strategy::PsBsp => sync::run_ps_bsp(h),
            Strategy::PsBackup { backups } => sync::run_ps_bk(h, backups),
            Strategy::PsAsp => ps::run_ps_asp(h),
            Strategy::PsSsp { bound } => ps::run_ps_ssp(h, bound),
            Strategy::PsHete => ps::run_ps_hete(h),
            other => unreachable!("not a parameter-server strategy: {other:?}"),
        }
    }

    fn drive_threaded(&self, substrate: &ThreadedSubstrate) -> ThreadedReport {
        match self.0 {
            Strategy::PsBsp => sync::threaded_ps_bsp(substrate),
            Strategy::PsBackup { backups } => sync::threaded_ps_bk(substrate, backups),
            Strategy::PsAsp => ps::threaded_ps_async(substrate, PsPolicy::Asp),
            Strategy::PsSsp { bound } => ps::threaded_ps_async(substrate, PsPolicy::Ssp { bound }),
            Strategy::PsHete => ps::threaded_ps_async(substrate, PsPolicy::Hete),
            other => unreachable!("not a parameter-server strategy: {other:?}"),
        }
    }
}

/// P-Reduce (CON and DYN): the paper's partial-reduce primitive.
struct PReduceDriver(Strategy);

impl StrategyDriver for PReduceDriver {
    fn strategy(&self) -> Strategy {
        self.0
    }

    fn drive_sim(&self, substrate: SimSubstrate) -> RunResult {
        let (h, sink) = substrate.into_parts();
        let cfg = self
            .0
            .controller_config(h.num_workers())
            .expect("partial-reduce strategy has a controller config");
        preduce::run_preduce_traced(h, cfg, sink)
    }

    fn drive_threaded(&self, substrate: &ThreadedSubstrate) -> ThreadedReport {
        let cfg = self
            .0
            .controller_config(substrate.config().num_workers)
            .expect("partial-reduce strategy has a controller config");
        preduce::threaded_preduce(substrate, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_for_round_trips_every_strategy() {
        let mut all = Strategy::table1_lineup(8);
        all.push(Strategy::DPsgd);
        all.push(Strategy::PsSsp { bound: 4 });
        for s in all {
            assert_eq!(driver_for(s).strategy(), s);
        }
    }
}
