//! Chaos suite: every fault class from DESIGN.md §11, injected through
//! [`preduce_trainer::FaultPlan`], must leave P-Reduce convergent.
//!
//! Each test runs CON and DYN at N=8 / P=4 under a fault plan and
//! compares equal-budget accuracy against the fault-free golden computed
//! in the same process, then replays the trace: every planned fault must
//! be narrated as `FaultInjected`, evictions must be justified, and the
//! invariant checker must accept the whole stream. The threaded tests
//! exercise the liveness path on real threads (heartbeat silence →
//! eviction; heartbeats under stall → no false eviction). CI runs this
//! file single-threaded per test (`--test-threads=1`).

use std::sync::Arc;

use partial_reduce::{Controller, ControllerConfig, InvariantChecker, RingSink, TraceEvent};
use preduce_data::cifar10_like;
use preduce_models::zoo;
use preduce_trainer::{engine, Backend, EngineRun, ExperimentConfig, FaultPlan, Strategy};

/// Accuracy tolerance vs the fault-free golden for perturbation-only
/// plans (stall / delay / late join): the update budget is identical, so
/// only group compositions and staleness shift.
const PERTURB_TOLERANCE: f64 = 0.15;

/// Tolerance for plans that lose a worker: the dead replica's stale
/// parameters stay in the final uniform average (Algorithm 2 line 8), so
/// a crash costs real accuracy — bounded, not zero.
const CRASH_TOLERANCE: f64 = 0.25;

fn sim_config() -> ExperimentConfig {
    let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
    c.num_workers = 8;
    c.threshold = 0.999; // unreachable: fixed-budget runs, equal updates
    c.max_updates = 300;
    c.eval_every = 100;
    c
}

/// Runs P-Reduce (P=4) on the simulator under `plan`, returning the run
/// and its full trace.
fn sim_run(dynamic: bool, plan: FaultPlan) -> (EngineRun, Vec<TraceEvent>) {
    let c = sim_config();
    let sink = Arc::new(RingSink::new(65536));
    let run = engine::run_with_faults(
        Strategy::PReduce { p: 4, dynamic },
        &c,
        Backend::Sim,
        sink.clone(),
        plan,
    );
    assert_eq!(sink.dropped(), 0, "trace overflowed the ring");
    (run, sink.snapshot())
}

/// The shared chaos contract: accuracy within `tolerance` of the
/// fault-free golden, every planned fault narrated, trace accepted by the
/// invariant checker.
fn assert_chaos_contract(
    label: &str,
    plan: &FaultPlan,
    golden_accuracy: f64,
    run: &EngineRun,
    events: &[TraceEvent],
    tolerance: f64,
) {
    let acc = run.result.final_accuracy;
    assert!(acc.is_finite(), "{label}: accuracy {acc}");
    assert!(
        (acc - golden_accuracy).abs() <= tolerance,
        "{label}: accuracy {acc:.3} drifted more than {tolerance} from \
         fault-free golden {golden_accuracy:.3}"
    );
    for f in &plan.faults {
        assert!(
            events.iter().any(|e| matches!(
                e,
                TraceEvent::FaultInjected { worker, .. } if *worker == f.worker
            )),
            "{label}: fault {f:?} never narrated as FaultInjected"
        );
    }
    let report = InvariantChecker::check(events);
    assert!(report.is_clean(), "{label}: {report}");
}

#[test]
fn crash_is_evicted_and_survivors_converge() {
    for dynamic in [false, true] {
        let label = if dynamic { "DYN crash" } else { "CON crash" };
        let (golden, _) = sim_run(dynamic, FaultPlan::none());
        let plan = FaultPlan::none().crash(3, 20);
        let (run, events) = sim_run(dynamic, plan.clone());
        assert_chaos_contract(
            label,
            &plan,
            golden.result.final_accuracy,
            &run,
            &events,
            CRASH_TOLERANCE,
        );
        // The crash resolves through the ordinary departure path: an
        // eviction followed by WorkerLeft, both for rank 3.
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::WorkerEvicted { worker: 3, .. })),
            "{label}: no eviction recorded"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::WorkerLeft { worker: 3, .. })),
            "{label}: eviction never resolved into a departure"
        );
    }
}

#[test]
fn stalled_worker_is_tolerated() {
    for dynamic in [false, true] {
        let label = if dynamic { "DYN stall" } else { "CON stall" };
        let (golden, _) = sim_run(dynamic, FaultPlan::none());
        let plan = FaultPlan::none().stall(5, 4.0, 10);
        let (run, events) = sim_run(dynamic, plan.clone());
        assert_chaos_contract(
            label,
            &plan,
            golden.result.final_accuracy,
            &run,
            &events,
            PERTURB_TOLERANCE,
        );
    }
}

#[test]
fn delayed_signals_preserve_fifo_and_convergence() {
    for dynamic in [false, true] {
        let label = if dynamic { "DYN delay" } else { "CON delay" };
        let (golden, _) = sim_run(dynamic, FaultPlan::none());
        let plan = FaultPlan::none().delay_signals(2, 0.05);
        let (run, events) = sim_run(dynamic, plan.clone());
        assert_chaos_contract(
            label,
            &plan,
            golden.result.final_accuracy,
            &run,
            &events,
            PERTURB_TOLERANCE,
        );
    }
}

#[test]
fn late_joiner_is_absorbed() {
    for dynamic in [false, true] {
        let label = if dynamic {
            "DYN latejoin"
        } else {
            "CON latejoin"
        };
        let (golden, _) = sim_run(dynamic, FaultPlan::none());
        let plan = FaultPlan::none().late_join(7, 2.0);
        let (run, events) = sim_run(dynamic, plan.clone());
        assert_chaos_contract(
            label,
            &plan,
            golden.result.final_accuracy,
            &run,
            &events,
            PERTURB_TOLERANCE,
        );
    }
}

#[test]
fn combined_plan_survives_everything_at_once() {
    // The EXPERIMENTS.md showcase plan: one of each fault class.
    for dynamic in [false, true] {
        let label = if dynamic {
            "DYN combined"
        } else {
            "CON combined"
        };
        let (golden, _) = sim_run(dynamic, FaultPlan::none());
        let plan = FaultPlan::none()
            .crash(3, 30)
            .stall(5, 4.0, 10)
            .delay_signals(2, 0.05)
            .late_join(7, 2.0);
        let (run, events) = sim_run(dynamic, plan.clone());
        assert_chaos_contract(
            label,
            &plan,
            golden.result.final_accuracy,
            &run,
            &events,
            CRASH_TOLERANCE,
        );
    }
}

#[test]
fn empty_plan_is_bit_identical_to_the_faultless_run() {
    // `run_with_faults` with the empty plan must not perturb the golden
    // trajectory: stall ×1.0 and +0.0s delays are exact f64 identities.
    for dynamic in [false, true] {
        let c = sim_config();
        let base = engine::run(
            Strategy::PReduce { p: 4, dynamic },
            &c,
            Backend::Sim,
            Arc::new(partial_reduce::NullSink),
        );
        let (faulted, _) = sim_run(dynamic, FaultPlan::none());
        assert_eq!(base.result.final_accuracy, faulted.result.final_accuracy);
        assert_eq!(base.result.run_time, faulted.result.run_time);
        assert_eq!(base.result.updates, faulted.result.updates);
    }
}

#[test]
fn threaded_crash_is_evicted_by_liveness() {
    let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
    c.num_workers = 4;
    c.threaded_iters = Some(12);
    let plan = FaultPlan::none().crash(3, 4);
    let sink = Arc::new(RingSink::new(65536));
    let run = engine::run_with_faults(
        Strategy::PReduce {
            p: 2,
            dynamic: false,
        },
        &c,
        Backend::Threaded,
        sink.clone(),
        plan,
    );

    let stats = run.controller.expect("p-reduce reports controller stats");
    assert_eq!(stats.evictions, 1, "silent worker was not evicted");
    assert_eq!(run.result.stats.get("evictions"), Some(&1.0));
    assert!(run.result.final_accuracy.is_finite());

    let events = sink.snapshot();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::FaultInjected { worker: 3, .. })),
        "crash not narrated"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::WorkerEvicted { worker: 3, .. })),
        "no eviction in trace"
    );
    let report = InvariantChecker::check(&events);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn threaded_stall_keeps_heartbeating_and_is_not_evicted() {
    // A slow worker is not a dead worker: the heartbeat thread beats
    // through the stalled compute, so liveness must never fire.
    let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
    c.num_workers = 4;
    c.threaded_iters = Some(10);
    let plan = FaultPlan::none().stall(0, 20.0, 1);
    let sink = Arc::new(RingSink::new(65536));
    let run = engine::run_with_faults(
        Strategy::PReduce {
            p: 2,
            dynamic: false,
        },
        &c,
        Backend::Threaded,
        sink.clone(),
        plan,
    );

    let stats = run.controller.expect("p-reduce reports controller stats");
    assert_eq!(stats.evictions, 0, "stalled worker was falsely evicted");
    let iters = run.iterations.expect("threaded runs report iterations");
    assert!(
        iters.iter().all(|&i| i >= 10),
        "a worker fell short of its budget: {iters:?}"
    );
    let events = sink.snapshot();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::FaultInjected { worker: 0, .. })),
        "stall not narrated"
    );
    let report = InvariantChecker::check(&events);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn departure_during_in_flight_group_purges_and_reforms() {
    // Satellite (d): a worker leaves while a group is in flight and
    // another signal of its own is queued. The queued signal is purged
    // (`purged_signal: true`), a late signal is rejected, and the
    // survivor set re-forms without the departed rank.
    let sink = Arc::new(RingSink::new(4096));
    let mut ctl = Controller::with_sink(ControllerConfig::constant(4, 2), sink.clone());

    // Group 0: workers 0 and 1, in flight.
    assert!(ctl.push_ready(0, 1));
    assert!(ctl.push_ready(1, 1));
    let g0 = ctl.try_form_group().expect("group forms");
    assert_eq!(g0.group, vec![0, 1]);

    // While g0 is in flight, worker 3 signals and then departs with the
    // signal still queued; worker 2's lone signal cannot form a group.
    assert!(ctl.push_ready(3, 1));
    assert!(ctl.push_ready(2, 1));
    ctl.mark_left(3);
    assert!(
        ctl.try_form_group().is_none(),
        "purged signal must not be scheduled"
    );
    // A late signal racing the departure is rejected, never queued.
    assert!(!ctl.push_ready(3, 2));

    // g0 completes; the survivors re-form with worker 2, FIFO.
    assert!(ctl.push_ready(0, 2));
    let g1 = ctl.try_form_group().expect("survivors re-form");
    assert_eq!(g1.group, vec![2, 0]);
    assert!(ctl.push_ready(1, 2));
    assert!(
        ctl.try_form_group().is_none(),
        "only worker 1 is queued after the repair"
    );

    let events = sink.snapshot();
    assert!(
        events.iter().any(|e| matches!(
            e,
            TraceEvent::WorkerLeft {
                worker: 3,
                purged_signal: true,
                ..
            }
        )),
        "departure did not record the purge"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::SignalRejected { worker: 3, .. })),
        "late signal was not rejected"
    );
    let report = InvariantChecker::check(&events);
    assert!(report.is_clean(), "{report}");
}
