//! Pass 4 — `trace-coverage`: every controller state-mutation path
//! emits a `TraceEvent`.
//!
//! PR 1's invariant checker replays the event stream; a method on the
//! controller that mutates state without recording (and without
//! reaching a recording method) is a blind spot the checker can never
//! see into.
//!
//! v2 stops equating `&mut self` with "mutates": the v1 scanner flagged
//! every non-emitting `&mut self` method, so a method that only takes
//! `&mut self` to hand a field out (or to satisfy a trait) was a false
//! positive waiting for an allow. The token walk now looks for *actual*
//! mutation of controller state — assignment into a `self` path, a
//! mutating collection method on one, `&mut self.field` escaping into a
//! call, or whole-object replacement `*self = …` — and both the
//! "mutates" and "emits" facts propagate through `self.method(…)` calls
//! to a fixpoint. A method is flagged iff it (transitively) mutates and
//! does not (transitively) emit.

use crate::scan::{FnItem, SourceFile, TokenKind};
use crate::Finding;

/// Pass name used in findings and allow directives.
pub const NAME: &str = "trace-coverage";

/// Collection/option methods that mutate their receiver.
const MUTATING_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "swap_remove",
    "clear",
    "extend",
    "drain",
    "retain",
    "truncate",
    "append",
    "swap",
    "fill",
    "resize",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "rotate_left",
    "rotate_right",
    "take",
    "replace",
    "get_or_insert_with",
    "entry",
    "dedup",
];

/// Compound and plain assignment operators (single tokens post-lexing,
/// so `==`/`<=`/`>=` cannot be mistaken for them).
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// Runs the pass on one file (the caller scopes it to the controller).
pub fn run(file: &SourceFile) -> Vec<Finding> {
    let fns: Vec<&FnItem> = file
        .items
        .fns
        .iter()
        .filter(|f| !file.is_test[f.start] && f.body.is_some())
        .collect();

    let mut mutates: Vec<bool> = fns.iter().map(|f| mutates_directly(file, f)).collect();
    let mut emits: Vec<bool> = fns.iter().map(|f| emits_directly(file, f)).collect();
    let callees: Vec<Vec<String>> = fns.iter().map(|f| self_callees(file, f)).collect();

    // Propagate both facts through self-calls to a fixpoint.
    loop {
        let mut grew = false;
        for i in 0..fns.len() {
            for callee in &callees[i] {
                if let Some(j) = fns.iter().position(|f| &f.name == callee) {
                    if mutates[j] && !mutates[i] {
                        mutates[i] = true;
                        grew = true;
                    }
                    if emits[j] && !emits[i] {
                        emits[i] = true;
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }

    fns.iter()
        .enumerate()
        .filter(|&(i, f)| f.takes_mut_self && mutates[i] && !emits[i])
        .map(|(_, f)| Finding {
            pass: NAME.into(),
            file: file.path.clone(),
            line: f.start + 1,
            message: format!(
                "`{}` takes `&mut self` but no `TraceEvent` is emitted on this path; the replay checker cannot see this mutation",
                f.name
            ),
        })
        .collect()
}

/// True when the body visibly mutates controller state.
fn mutates_directly(file: &SourceFile, f: &FnItem) -> bool {
    let (open, close) = match f.body {
        Some(b) => b,
        None => return false,
    };
    let mut k = open;
    while k <= close {
        let tok = file.ct(k);
        if tok.kind == TokenKind::Ident && tok.text == "self" {
            // `*self = …` whole-object replacement.
            if k > open && file.ct(k - 1).text == "*" && k + 1 <= close {
                if ASSIGN_OPS.contains(&file.ct(k + 1).text.as_str()) {
                    return true;
                }
            }
            // `&mut self.field` escaping into a call.
            if k >= open + 2
                && file.ct(k - 1).text == "mut"
                && file.ct(k - 2).text == "&"
                && k + 1 <= close
                && file.ct(k + 1).text == "."
            {
                return true;
            }
            match walk_self_path(file, k, close) {
                PathEnd::Assigned | PathEnd::MutatingCall => return true,
                PathEnd::Other(next) => {
                    k = next;
                    continue;
                }
            }
        }
        k += 1;
    }
    false
}

enum PathEnd {
    /// The path is followed by an assignment operator.
    Assigned,
    /// The path ends in a mutating method call.
    MutatingCall,
    /// Neither; resume scanning at this token.
    Other(usize),
}

/// Walks `self(.field | .0 | [idx] | .method(…))*` from the `self` token
/// and classifies how the path ends.
fn walk_self_path(file: &SourceFile, k_self: usize, close: usize) -> PathEnd {
    let mut j = k_self + 1;
    while j <= close {
        let tok = file.ct(j);
        if tok.text == "." && j + 1 <= close {
            let seg = file.ct(j + 1);
            let is_call = j + 2 <= close && file.ct(j + 2).text == "(";
            if seg.kind == TokenKind::Ident && is_call {
                if MUTATING_METHODS.contains(&seg.text.as_str()) {
                    return PathEnd::MutatingCall;
                }
                // Non-mutating call: skip its arguments, keep chaining
                // (`self.queue.lock().unwrap().push(x)`).
                let mut depth = 0usize;
                let mut p = j + 2;
                while p <= close {
                    match file.ct(p).text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    p += 1;
                }
                j = p + 1;
                continue;
            }
            if seg.kind == TokenKind::Ident || seg.kind == TokenKind::Number {
                j += 2;
                continue;
            }
            return PathEnd::Other(j);
        }
        if tok.text == "[" {
            let mut depth = 0usize;
            let mut p = j;
            while p <= close {
                match file.ct(p).text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                p += 1;
            }
            j = p + 1;
            continue;
        }
        if ASSIGN_OPS.contains(&tok.text.as_str()) {
            return PathEnd::Assigned;
        }
        return PathEnd::Other(j);
    }
    PathEnd::Other(j)
}

/// True when the body records directly: a `TraceEvent::…` construction
/// or a `.record(` call.
fn emits_directly(file: &SourceFile, f: &FnItem) -> bool {
    let (open, close) = match f.body {
        Some(b) => b,
        None => return false,
    };
    for k in open..=close {
        let tok = file.ct(k);
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if tok.text == "TraceEvent" && k + 1 <= close && file.ct(k + 1).text == "::" {
            return true;
        }
        if tok.text == "record"
            && k > open
            && file.ct(k - 1).text == "."
            && k + 1 <= close
            && file.ct(k + 1).text == "("
        {
            return true;
        }
    }
    false
}

/// Names of in-file functions this body calls: `self.method(…)` plus
/// free calls `helper(…)` (emission via a free helper in the same file
/// counts, matching the v1 propagation).
fn self_callees(file: &SourceFile, f: &FnItem) -> Vec<String> {
    let mut out = Vec::new();
    let (open, close) = match f.body {
        Some(b) => b,
        None => return out,
    };
    for k in open..=close {
        let tok = file.ct(k);
        if tok.kind == TokenKind::Ident
            && tok.text == "self"
            && k + 3 <= close
            && file.ct(k + 1).text == "."
            && file.ct(k + 2).kind == TokenKind::Ident
            && file.ct(k + 3).text == "("
        {
            let name = file.ct(k + 2).text.clone();
            if !out.contains(&name) {
                out.push(name);
            }
        }
        if tok.kind == TokenKind::Ident
            && k + 1 <= close
            && file.ct(k + 1).text == "("
            && (k == open || !matches!(file.ct(k - 1).text.as_str(), "." | "::" | "fn"))
            && !out.contains(&tok.text)
        {
            out.push(tok.text.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_mutation_flagged() {
        let f = SourceFile::from_source(
            "crates/core/src/controller.rs",
            "impl C {\n    fn silent(&mut self) {\n        self.x += 1;\n    }\n}\n",
        );
        let got = run(&f);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("silent"));
    }

    #[test]
    fn direct_and_transitive_emission_clean() {
        let f = SourceFile::from_source(
            "crates/core/src/controller.rs",
            "impl C {\n    fn emitter(&mut self) {\n        self.x += 1;\n        self.sink.record(TraceEvent::RunStarted { n: 0 });\n    }\n    fn caller(&mut self) {\n        self.emitter();\n    }\n    fn reader(&self) -> u8 {\n        self.x\n    }\n}\n",
        );
        assert!(run(&f).is_empty());
    }

    #[test]
    fn non_mutating_mut_self_is_not_flagged() {
        // v1 flagged any non-emitting `&mut self`; v2 requires an actual
        // mutation, so an accessor handing out a field is clean.
        let f = SourceFile::from_source(
            "crates/core/src/controller.rs",
            "impl C {\n    fn sink_mut(&mut self) -> &mut Sink {\n        &mut self.sink\n    }\n    fn compute(&mut self) -> u8 {\n        let local = self.x + 1;\n        local\n    }\n}\n",
        );
        let got = run(&f);
        // `sink_mut` lends `&mut self.sink` out — conservatively a
        // mutation path — but `compute` touches only locals and is clean.
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("sink_mut"));
    }

    #[test]
    fn mutating_collection_calls_and_transitive_mutation_detected() {
        let f = SourceFile::from_source(
            "crates/core/src/controller.rs",
            "impl C {\n    fn enqueue(&mut self, w: u32) {\n        self.ready.push(w);\n    }\n    fn outer(&mut self, w: u32) {\n        self.enqueue(w);\n    }\n}\n",
        );
        let got = run(&f);
        assert_eq!(got.len(), 2, "{got:?}");
    }

    #[test]
    fn chained_mutation_through_guard_detected() {
        let f = SourceFile::from_source(
            "crates/core/src/controller.rs",
            "impl C {\n    fn q(&mut self, w: u32) {\n        self.queue.lock().unwrap().push(w);\n    }\n}\n",
        );
        assert_eq!(run(&f).len(), 1);
    }
}
