// Fixture: compliant unsafe — SAFETY comments on every region, and
// intrinsics only inside #[target_feature] fns.
// Scanned as crates/tensor/src/kernels.rs (never compiled).

pub fn deref_documented(p: *const f32) -> f32 {
    // SAFETY: callers pass a pointer derived from a live &[f32].
    unsafe { *p }
}

// SAFETY: caller must have verified avx2 support at runtime dispatch.
#[target_feature(enable = "avx2")]
pub unsafe fn gated_kernel(p: *const f32) -> __m256 {
    _mm256_loadu_ps(p)
}

pub fn dispatch(p: *const f32) {
    if is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 check above is the contract of gated_kernel.
        unsafe { gated_kernel(p) };
    }
}
