//! Table 1: end-to-end comparison on the CIFAR10-like task.
//!
//! For each model (ResNet-34 / VGG-19 / DenseNet-121 analogs) and
//! heterogeneity level, runs every baseline plus P-Reduce CON/DYN at
//! P ∈ {3, 5} and prints run time, #updates, and per-update time — the
//! same three metrics as the paper's Table 1.
//!
//! Run: `cargo run --release -p preduce-bench --bin table1`
//! (set `PREDUCE_QUICK=1` for a reduced-scale smoke run)

use preduce_bench::configs::{quick_mode, table1_config};
use preduce_bench::output::{maybe_dump_json, print_run_row};
use preduce_models::zoo;
use preduce_trainer::{run_experiment, Strategy};

fn main() {
    let models = [
        (zoo::resnet34(), vec![1usize, 3]),
        (zoo::vgg19(), vec![1, 3]),
        (zoo::densenet121(), vec![1, 2]),
    ];
    let quick = quick_mode();

    println!("Table 1: end-to-end comparison on cifar10-like (N = 8)");
    println!(
        "threshold = {:.2}, quick mode = {quick}\n",
        table1_config(zoo::resnet34(), 1).threshold
    );

    for (model, hls) in models {
        for hl in hls {
            println!("=== {}  (HL = {hl}) ===", model.name);
            let config = table1_config(model.clone(), hl);
            let lineup = Strategy::table1_lineup(config.num_workers);
            let mut results = Vec::new();
            for s in lineup {
                let r = run_experiment(s, &config);
                print_run_row(&r);
                results.push(r);
            }
            maybe_dump_json(&format!("table1_{}_hl{hl}", model.name), &results);
            println!();
        }
    }
}
