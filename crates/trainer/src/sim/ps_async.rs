//! Asynchronous parameter-server strategies: ASP, SSP, and the
//! heterogeneity-aware HETE.
//!
//! A single logical server (sharded across the fleet for cost purposes)
//! holds the global model. Each worker loops independently: pull → compute
//! gradient → push. Staleness arises naturally: between a worker's pull and
//! its push, other workers' pushes move the server model.

use preduce_models::SgdOptimizer;
use preduce_simnet::{EventQueue, SimTime};

use super::SimHarness;
use crate::metrics::RunResult;

/// The staleness policy distinguishing the three PS variants.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PsPolicy {
    /// Fully asynchronous (ASP): apply everything immediately, scale 1.
    Asp,
    /// Stale-synchronous (SSP): a worker may run at most `bound` iterations
    /// ahead of the slowest; violators block until the laggard catches up.
    Ssp { bound: u64 },
    /// Heterogeneity-aware [20]: scale the learning rate by `1/staleness`
    /// (DynSGD's staleness-adaptive rate).
    Hete,
}

/// Fully-asynchronous parameter server (ASP).
pub fn run_ps_asp(h: SimHarness) -> RunResult {
    run_ps(h, PsPolicy::Asp, "PS ASP".into())
}

/// Stale-synchronous parallel parameter server (SSP) with the given bound.
pub fn run_ps_ssp(h: SimHarness, bound: u64) -> RunResult {
    run_ps(h, PsPolicy::Ssp { bound }, format!("PS SSP (s={bound})"))
}

/// Heterogeneity-aware parameter server (HETE): staleness-scaled rates.
pub fn run_ps_hete(h: SimHarness) -> RunResult {
    run_ps(h, PsPolicy::Hete, "PS HETE".into())
}

fn run_ps(mut h: SimHarness, policy: PsPolicy, label: String) -> RunResult {
    let n = h.num_workers();
    let base_comm = h.network.ps_push_pull_time(n, h.bytes);
    // Each worker's round trip runs over its own link.
    let comm_of: Vec<f64> = (0..n).map(|w| base_comm * h.link_slowdown[w]).collect();

    // Server state: the global model plus one shared optimizer. By default
    // the server runs *momentum-free* SGD: with interleaved stale pushes a
    // shared momentum buffer mixes directions from different model
    // versions and destabilizes training — async PS systems (SSP, DynSGD)
    // apply plain SGD server-side. `ExperimentConfig::ps_server_momentum`
    // overrides this to study the instability.
    let mut server = h.workers[0].params.clone();
    let mut server_cfg = *h.workers[0].opt.config();
    server_cfg.momentum = h.ps_server_momentum;
    let mut server_opt = SgdOptimizer::new(server_cfg, server.len());

    // Per-worker bookkeeping.
    let mut push_count = 0u64; // global pushes (server version)
    let mut version_at_pull = vec![0u64; n];
    let mut iter_of = vec![0u64; n];
    let mut blocked: Vec<Option<(f64, SimTime)>> = vec![None; n]; // SSP

    // Workers start by pulling the initial model (free at t=0) and
    // computing.
    let mut queue: EventQueue<usize> = EventQueue::new();
    let mut started = vec![SimTime::ZERO; n];
    for w in 0..n {
        let ct = h.compute_time(w, SimTime::ZERO);
        queue.schedule(SimTime::new(ct), w);
    }

    let mut now = SimTime::ZERO;
    'outer: while let Some((t, w)) = queue.pop() {
        now = t;
        // Gradient at the worker's pulled view.
        let grad = h.workers[w].gradient(&mut h.rng);

        // Push arrives after the round trip; the update applies then.
        let done = now + comm_of[w];
        let staleness = push_count - version_at_pull[w] + 1;
        let scale = match policy {
            PsPolicy::Asp | PsPolicy::Ssp { .. } => 1.0,
            PsPolicy::Hete => 1.0 / staleness as f32,
        };
        server_opt.step_scaled(&mut server, &grad, scale);
        push_count += 1;
        iter_of[w] += 1;

        // Pull the fresh model.
        h.workers[w].set_params(&server);
        h.workers[w].iteration = iter_of[w];
        version_at_pull[w] = push_count;

        let dur = done - started[w];
        if h.record_update(done, dur) {
            now = done;
            break 'outer;
        }

        // SSP gate: block if this worker ran too far ahead.
        let min_iter = *iter_of.iter().min().expect("non-empty");
        if let PsPolicy::Ssp { bound } = policy {
            if iter_of[w] > min_iter + bound {
                blocked[w] = Some((h.compute_time(w, done), done));
            } else {
                started[w] = done;
                let ct = h.compute_time(w, done);
                queue.schedule(done + ct, w);
            }
            // Release any blocked workers the new minimum unblocks.
            let min_iter = *iter_of.iter().min().expect("non-empty");
            for b in 0..n {
                if let Some((ct, since)) = blocked[b] {
                    if iter_of[b] <= min_iter + bound {
                        blocked[b] = None;
                        let resume = done.max(since);
                        started[b] = resume;
                        queue.schedule(resume + ct, b);
                    }
                }
            }
        } else {
            started[w] = done;
            let ct = h.compute_time(w, done);
            queue.schedule(done + ct, w);
        }
    }
    h.finish(label, now)
}
