//! Minibatch sampling (Algorithm 2, line 2: "randomly sample a batch from
//! local data of the i-th worker").

use rand::seq::index::sample as index_sample;
use rand::{Rng, SeedableRng};

use crate::dataset::{Batch, Dataset};

/// Draws random minibatches from a dataset with a private, seeded RNG.
///
/// Sampling is *without replacement within a batch* and *with replacement
/// across batches*, matching the i.i.d. sampling model of the paper's
/// analysis (each worker's batch is an unbiased sample of its shard).
#[derive(Debug)]
pub struct BatchSampler {
    dataset: Dataset,
    batch_size: usize,
    rng: rand::rngs::StdRng,
}

impl BatchSampler {
    /// Creates a sampler over `dataset` drawing `batch_size`-example batches.
    ///
    /// If `batch_size` exceeds the dataset size it is clamped to the dataset
    /// size (small shards at high worker counts).
    ///
    /// # Panics
    /// Panics if `batch_size == 0` or the dataset is empty.
    pub fn new(dataset: Dataset, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!dataset.is_empty(), "cannot sample from an empty dataset");
        let batch_size = batch_size.min(dataset.len());
        BatchSampler {
            dataset,
            batch_size,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// The effective batch size (after clamping).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Draws the next random minibatch.
    pub fn next_batch(&mut self) -> Batch {
        let idx = index_sample(&mut self.rng, self.dataset.len(), self.batch_size).into_vec();
        self.dataset.gather(&idx)
    }

    /// Draws a batch using an external RNG (used by the simulator, which
    /// owns all randomness for reproducibility).
    pub fn next_batch_with<R: Rng + ?Sized>(&self, rng: &mut R) -> Batch {
        let idx = index_sample(rng, self.dataset.len(), self.batch_size).into_vec();
        self.dataset.gather(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preduce_tensor::Tensor;

    fn toy(n: usize) -> Dataset {
        let features = Tensor::from_vec((0..n).map(|i| i as f32).collect(), [n, 1]).unwrap();
        Dataset::new(features, vec![0; n], 1)
    }

    #[test]
    fn batches_have_requested_size() {
        let mut s = BatchSampler::new(toy(100), 16, 0);
        for _ in 0..5 {
            assert_eq!(s.next_batch().len(), 16);
        }
    }

    #[test]
    fn batch_size_clamped_to_dataset() {
        let s = BatchSampler::new(toy(5), 16, 0);
        assert_eq!(s.batch_size(), 5);
    }

    #[test]
    fn within_batch_sampling_is_without_replacement() {
        let mut s = BatchSampler::new(toy(32), 32, 1);
        let b = s.next_batch();
        let mut vals: Vec<i64> = (0..32).map(|i| b.features.row(i)[0] as i64).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 32, "batch repeated an example");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = BatchSampler::new(toy(50), 8, 42);
        let mut b = BatchSampler::new(toy(50), 8, 42);
        for _ in 0..3 {
            assert_eq!(
                a.next_batch().features.as_slice(),
                b.next_batch().features.as_slice()
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = BatchSampler::new(toy(50), 8, 1);
        let mut b = BatchSampler::new(toy(50), 8, 2);
        let same = (0..5)
            .all(|_| a.next_batch().features.as_slice() == b.next_batch().features.as_slice());
        assert!(!same);
    }

    #[test]
    fn external_rng_variant_is_pure() {
        use rand::SeedableRng;
        let s = BatchSampler::new(toy(50), 8, 0);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(5);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(5);
        assert_eq!(
            s.next_batch_with(&mut r1).features.as_slice(),
            s.next_batch_with(&mut r2).features.as_slice()
        );
    }
}
