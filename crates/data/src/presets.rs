//! Named dataset presets standing in for the paper's benchmarks.
//!
//! Each preset keeps the class count of the original corpus and scales the
//! sample count / dimensionality to what a CPU-only reproduction can train in
//! seconds. The convergence thresholds used by the experiments are calibrated
//! per preset in the trainer crate and recorded in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

use crate::synth::{GaussianMixture, SynthConfig};

/// A named synthetic stand-in for one of the paper's datasets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetPreset {
    /// Human-readable name, e.g. `"cifar10-like"`.
    pub name: String,
    /// The generator configuration.
    pub config: SynthConfig,
    /// Held-out test-set size used by convergence experiments.
    pub test_size: usize,
}

impl DatasetPreset {
    /// Instantiates the mixture for this preset with the given seed.
    pub fn mixture(&self, seed: u64) -> GaussianMixture {
        GaussianMixture::new(SynthConfig {
            seed,
            ..self.config.clone()
        })
    }
}

/// Stand-in for CIFAR10: 10 classes, moderate difficulty.
pub fn cifar10_like() -> DatasetPreset {
    DatasetPreset {
        name: "cifar10-like".into(),
        config: SynthConfig {
            num_classes: 10,
            feature_dim: 64,
            num_samples: 8000,
            center_norm: 3.5,
            noise_std: 1.0,
            nonlinear_warp: true,
            seed: 0,
        },
        test_size: 2000,
    }
}

/// Stand-in for CIFAR100: 100 classes, harder (more class confusion).
pub fn cifar100_like() -> DatasetPreset {
    DatasetPreset {
        name: "cifar100-like".into(),
        config: SynthConfig {
            num_classes: 100,
            feature_dim: 128,
            num_samples: 12000,
            center_norm: 4.0,
            noise_std: 1.0,
            nonlinear_warp: true,
            seed: 0,
        },
        test_size: 2000,
    }
}

/// Stand-in for ImageNet: 1000 classes, the largest preset. The feature
/// dimension and sample count are trimmed relative to the class count so
/// 32-worker convergence sweeps stay CPU-tractable; the 1000-way output
/// layer still dominates model size, as in the original.
pub fn imagenet_like() -> DatasetPreset {
    DatasetPreset {
        name: "imagenet-like".into(),
        config: SynthConfig {
            num_classes: 1000,
            feature_dim: 128,
            num_samples: 20000,
            center_norm: 8.0,
            noise_std: 1.0,
            nonlinear_warp: true,
            seed: 0,
        },
        test_size: 4000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_class_counts() {
        assert_eq!(cifar10_like().config.num_classes, 10);
        assert_eq!(cifar100_like().config.num_classes, 100);
        assert_eq!(imagenet_like().config.num_classes, 1000);
    }

    #[test]
    fn preset_mixture_respects_seed() {
        let p = cifar10_like();
        let a = p.mixture(7).generate();
        let b = p.mixture(7).generate();
        assert_eq!(a.features(), b.features());
        let c = p.mixture(8).generate();
        assert_ne!(a.features(), c.features());
    }

    #[test]
    fn test_split_fits_in_samples() {
        for p in [cifar10_like(), cifar100_like(), imagenet_like()] {
            assert!(p.test_size < p.config.num_samples, "{}", p.name);
        }
    }
}
