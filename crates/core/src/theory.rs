//! The convergence-bound calculator of Theorem 1.
//!
//! For partial reduce with group size `P` over `N` workers, with effective
//! learning rate `η = P·γ/N`, Lipschitz constant `L`, gradient-variance
//! bound `σ²`, and spectral coefficient `ρ̄`:
//!
//! * Eq. 7 (learning-rate condition): `ηL + 2N³η²ρ̄/P² ≤ 1`;
//! * Eq. 8 (bound on the average squared gradient norm):
//!   `2(F(u₁) − F_inf)/(ηK) + ηLσ²/P  +  2η²L²σ²N³ρ̄/P²`
//!   — the first two terms are the *SGD error*, the last the
//!   *network error*;
//! * with `γ = N/(L√(PK))` and large `K`, the bound decays as
//!   `O(1/√(PK))`.
//!
//! These functions let experiments check the theory against measured
//! schedules (feed in the empirical `ρ̄` from
//! [`crate::spectral::spectral_gap`]).

use serde::{Deserialize, Serialize};

/// Problem constants for the bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoremInputs {
    /// Number of workers `N`.
    pub num_workers: usize,
    /// Group size `P`.
    pub group_size: usize,
    /// Lipschitz constant `L` of the gradient.
    pub lipschitz: f64,
    /// Gradient-variance bound `σ²` (at the experiment's batch size).
    pub sigma_sq: f64,
    /// Initial suboptimality `F(u₁) − F_inf`.
    pub initial_gap: f64,
    /// Spectral coefficient `ρ̄` of the schedule.
    pub rho_bar: f64,
}

/// The two components of the Eq. 8 bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceBound {
    /// `2(F(u₁) − F_inf)/(ηK) + ηLσ²/P`.
    pub sgd_error: f64,
    /// `2η²L²σ²N³ρ̄/P²`.
    pub network_error: f64,
}

impl ConvergenceBound {
    /// The full right-hand side of Eq. 8.
    pub fn total(&self) -> f64 {
        self.sgd_error + self.network_error
    }
}

/// The effective learning rate `η = P·γ/N` used throughout Theorem 1.
pub fn effective_lr(gamma: f64, num_workers: usize, group_size: usize) -> f64 {
    group_size as f64 * gamma / num_workers as f64
}

/// Whether Eq. 7 holds: `ηL + 2N³η²ρ̄/P² ≤ 1`.
pub fn lr_condition_holds(inputs: &TheoremInputs, gamma: f64) -> bool {
    let eta = effective_lr(gamma, inputs.num_workers, inputs.group_size);
    let n = inputs.num_workers as f64;
    let p = inputs.group_size as f64;
    eta * inputs.lipschitz + 2.0 * n.powi(3) * eta * eta * inputs.rho_bar / (p * p) <= 1.0
}

/// Evaluates the Eq. 8 bound after `k_iterations` partial reduces with
/// worker learning rate `gamma`.
///
/// # Panics
/// Panics if `k_iterations == 0` or `gamma <= 0`.
pub fn convergence_bound(
    inputs: &TheoremInputs,
    gamma: f64,
    k_iterations: u64,
) -> ConvergenceBound {
    assert!(k_iterations > 0, "need at least one iteration");
    assert!(gamma > 0.0, "learning rate must be positive");
    let eta = effective_lr(gamma, inputs.num_workers, inputs.group_size);
    let n = inputs.num_workers as f64;
    let p = inputs.group_size as f64;
    let l = inputs.lipschitz;
    let s2 = inputs.sigma_sq;
    let k = k_iterations as f64;

    let sgd_error = 2.0 * inputs.initial_gap / (eta * k) + eta * l * s2 / p;
    let network_error = 2.0 * eta * eta * l * l * s2 * n.powi(3) * inputs.rho_bar / (p * p);
    ConvergenceBound {
        sgd_error,
        network_error,
    }
}

/// The learning rate `γ = N/(L√(PK))` under which the bound becomes
/// `O(1/√(PK))` (discussion below Theorem 1).
///
/// # Panics
/// Panics if any input is zero.
pub fn theorem_lr(num_workers: usize, group_size: usize, lipschitz: f64, k_iterations: u64) -> f64 {
    assert!(num_workers > 0 && group_size > 0 && k_iterations > 0);
    assert!(lipschitz > 0.0, "Lipschitz constant must be positive");
    num_workers as f64 / (lipschitz * ((group_size as u64 * k_iterations) as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize, p: usize, rho_bar: f64) -> TheoremInputs {
        TheoremInputs {
            num_workers: n,
            group_size: p,
            lipschitz: 1.0,
            sigma_sq: 1.0,
            initial_gap: 1.0,
            rho_bar,
        }
    }

    #[test]
    fn bound_decays_like_one_over_sqrt_pk() {
        // With γ = N/(L√(PK)), total bound at 4K should be about half of
        // the bound at K (for large K where the network error is small).
        let i = inputs(8, 4, 1.0);
        let k1 = 10_000_000u64;
        let k2 = 4 * k1;
        let b1 = convergence_bound(&i, theorem_lr(8, 4, 1.0, k1), k1).total();
        let b2 = convergence_bound(&i, theorem_lr(8, 4, 1.0, k2), k2).total();
        let ratio = b1 / b2;
        assert!((ratio - 2.0).abs() < 0.2, "ratio = {ratio}");
    }

    #[test]
    fn larger_p_reduces_sgd_error_at_fixed_eta() {
        // At the same effective η, the ηLσ²/P term shrinks with P.
        let k = 1000;
        let b2 = convergence_bound(&inputs(8, 2, 0.0), 0.025, k);
        let b8 = convergence_bound(&inputs(8, 8, 0.0), 0.1, k); // same η=0.1
        assert!(b8.sgd_error < b2.sgd_error);
    }

    #[test]
    fn network_error_zero_for_allreduce() {
        // ρ̄ = 0 (P = N all-reduce) ⇒ no network error.
        let b = convergence_bound(&inputs(8, 8, 0.0), 0.1, 1000);
        assert_eq!(b.network_error, 0.0);
    }

    #[test]
    fn network_error_grows_with_heterogeneity() {
        let lo = convergence_bound(&inputs(8, 2, 1.0), 0.01, 1000);
        let hi = convergence_bound(&inputs(8, 2, 5.0), 0.01, 1000);
        assert!(hi.network_error > lo.network_error);
        assert_eq!(hi.sgd_error, lo.sgd_error);
    }

    #[test]
    fn lr_condition_tightens_with_rho_bar() {
        let gamma = 0.5;
        assert!(lr_condition_holds(&inputs(8, 4, 0.0), gamma));
        // Huge ρ̄ breaks the same learning rate.
        assert!(!lr_condition_holds(&inputs(8, 4, 1e6), gamma));
    }

    #[test]
    fn theorem_lr_satisfies_condition_for_large_k() {
        let i = inputs(8, 4, 2.0);
        let k = 1_000_000;
        let gamma = theorem_lr(8, 4, 1.0, k);
        assert!(lr_condition_holds(&i, gamma));
    }

    #[test]
    fn effective_lr_formula() {
        assert_eq!(effective_lr(0.1, 8, 4), 0.05);
    }
}
