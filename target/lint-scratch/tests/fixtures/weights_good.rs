//! Known-good twin of `weights_bad.rs`: rows come from the blessed
//! constructors; gradient scales and learning-rate math stay untouched.

pub fn uniform_row(p: usize) -> Vec<f32> {
    partial_reduce::constant_weights(p)
}

pub fn scale(grad: &mut Tensor, n: usize, staleness: u64) -> f32 {
    grad.scale(1.0 / n as f32);
    1.0 / staleness as f32
}
