//! The strategy catalog: every method of the paper's evaluation (§5.1)
//! plus two extensions (SSP, D-PSGD).

use std::fmt;

use partial_reduce::{AggregationMode, ControllerConfig};
use serde::{Deserialize, Serialize};

/// Error: only [`Strategy::PReduce`] carries a partial-reduce controller
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoControllerConfig {
    /// Label of the strategy that has no controller.
    pub strategy: String,
}

impl fmt::Display for NoControllerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} has no controller config", self.strategy)
    }
}

impl std::error::Error for NoControllerConfig {}

/// The four synchronization shapes a strategy can take — the engine
/// dispatches each family to one [`crate::engine::StrategyDriver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyFamily {
    /// Full-fleet collectives (All-Reduce, Eager-Reduce).
    Collective,
    /// Decentralized peer-to-peer mixing (AD-PSGD, D-PSGD).
    Gossip,
    /// A central server holding the global model (BSP, ASP, SSP, HETE,
    /// backup workers).
    ParameterServer,
    /// The paper's partial-reduce primitive (CON and DYN).
    PartialReduce,
}

/// A distributed-training strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// All-Reduce (AR): global synchronous ring collective.
    AllReduce,
    /// Eager-Reduce (ER): majority partial collective over gradients.
    EagerReduce,
    /// AD-PSGD: asynchronous pairwise gossip.
    AdPsgd,
    /// D-PSGD: synchronous ring gossip (extension).
    DPsgd,
    /// Parameter server, bulk-synchronous.
    PsBsp,
    /// Parameter server, fully asynchronous.
    PsAsp,
    /// Parameter server, stale-synchronous with the given bound
    /// (extension; related work in the paper).
    PsSsp {
        /// Maximum iterations the fastest worker may lead by.
        bound: u64,
    },
    /// Heterogeneity-aware parameter server (staleness-scaled rates).
    PsHete,
    /// Synchronous PS with backup workers: waits for the fastest
    /// `N − backups`.
    PsBackup {
        /// Number of backup (droppable) workers.
        backups: usize,
    },
    /// **Partial reduce** — this paper. `dynamic = false` is CON
    /// (constant `1/P` weights), `true` is DYN (staleness-aware weights).
    PReduce {
        /// Group size `P`.
        p: usize,
        /// Dynamic (staleness-aware) aggregation?
        dynamic: bool,
    },
}

impl Strategy {
    /// Human-readable label matching the paper's table headers.
    pub fn label(&self) -> String {
        match self {
            Strategy::AllReduce => "All-Reduce".into(),
            Strategy::EagerReduce => "Eager-Reduce".into(),
            Strategy::AdPsgd => "AD-PSGD".into(),
            Strategy::DPsgd => "D-PSGD".into(),
            Strategy::PsBsp => "PS BSP".into(),
            Strategy::PsAsp => "PS ASP".into(),
            Strategy::PsSsp { bound } => format!("PS SSP (s={bound})"),
            Strategy::PsHete => "PS HETE".into(),
            Strategy::PsBackup { backups } => format!("PS BK (b={backups})"),
            Strategy::PReduce { p, dynamic } => {
                if *dynamic {
                    format!("P-Reduce DYN (P={p})")
                } else {
                    format!("P-Reduce CON (P={p})")
                }
            }
        }
    }

    /// The synchronization family this strategy belongs to.
    pub fn family(&self) -> StrategyFamily {
        match self {
            Strategy::AllReduce | Strategy::EagerReduce => StrategyFamily::Collective,
            Strategy::AdPsgd | Strategy::DPsgd => StrategyFamily::Gossip,
            Strategy::PsBsp
            | Strategy::PsAsp
            | Strategy::PsSsp { .. }
            | Strategy::PsHete
            | Strategy::PsBackup { .. } => StrategyFamily::ParameterServer,
            Strategy::PReduce { .. } => StrategyFamily::PartialReduce,
        }
    }

    /// Builds the controller config for a P-Reduce strategy.
    ///
    /// # Errors
    /// Returns [`NoControllerConfig`] if `self` is not
    /// [`Strategy::PReduce`] — every other strategy synchronizes without a
    /// partial-reduce controller.
    pub fn controller_config(
        &self,
        num_workers: usize,
    ) -> Result<ControllerConfig, NoControllerConfig> {
        match self {
            Strategy::PReduce { p, dynamic } => {
                Ok(Self::preduce_controller_config(*p, *dynamic, num_workers))
            }
            Strategy::AllReduce
            | Strategy::EagerReduce
            | Strategy::AdPsgd
            | Strategy::DPsgd
            | Strategy::PsBsp
            | Strategy::PsAsp
            | Strategy::PsSsp { .. }
            | Strategy::PsHete
            | Strategy::PsBackup { .. } => Err(NoControllerConfig {
                strategy: self.label(),
            }),
        }
    }

    /// The controller configuration of a [`Strategy::PReduce`] run —
    /// infallible, for call sites that already hold the destructured
    /// `p`/`dynamic` fields (the P-Reduce driver's two projections).
    pub fn preduce_controller_config(
        p: usize,
        dynamic: bool,
        num_workers: usize,
    ) -> ControllerConfig {
        ControllerConfig {
            num_workers,
            group_size: p,
            mode: if dynamic {
                AggregationMode::dynamic_default()
            } else {
                AggregationMode::Constant
            },
            history_window: None,
            frozen_avoidance: true,
        }
    }

    /// The full baseline lineup of Table 1 for a cluster of `n` workers.
    pub fn table1_lineup(n: usize) -> Vec<Strategy> {
        let backups = (n * 3) / 8; // paper: 3 backups out of 8 workers
        vec![
            Strategy::AllReduce,
            Strategy::EagerReduce,
            Strategy::AdPsgd,
            Strategy::PsBsp,
            Strategy::PsAsp,
            Strategy::PsHete,
            Strategy::PsBackup { backups },
            Strategy::PReduce {
                p: 3,
                dynamic: false,
            },
            Strategy::PReduce {
                p: 3,
                dynamic: true,
            },
            Strategy::PReduce {
                p: 5,
                dynamic: false,
            },
            Strategy::PReduce {
                p: 5,
                dynamic: true,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(Strategy::AllReduce.label(), "All-Reduce");
        assert_eq!(
            Strategy::PReduce {
                p: 3,
                dynamic: true
            }
            .label(),
            "P-Reduce DYN (P=3)"
        );
        assert_eq!(Strategy::PsBackup { backups: 3 }.label(), "PS BK (b=3)");
    }

    #[test]
    fn controller_config_for_preduce() {
        let s = Strategy::PReduce {
            p: 5,
            dynamic: false,
        };
        let c = s.controller_config(8).unwrap();
        assert_eq!(c.group_size, 5);
        assert!(matches!(c.mode, AggregationMode::Constant));
        let s = Strategy::PReduce {
            p: 3,
            dynamic: true,
        };
        assert!(matches!(
            s.controller_config(8).unwrap().mode,
            AggregationMode::Dynamic { .. }
        ));
    }

    #[test]
    fn controller_config_rejects_other_strategies() {
        let err = Strategy::AllReduce.controller_config(8).unwrap_err();
        assert_eq!(err.strategy, "All-Reduce");
        assert_eq!(err.to_string(), "All-Reduce has no controller config");
        // Every non-P-Reduce strategy errs; every P-Reduce succeeds.
        for s in Strategy::table1_lineup(8) {
            let got = s.controller_config(8);
            match s {
                Strategy::PReduce { .. } => assert!(got.is_ok(), "{s:?}"),
                _ => assert!(got.is_err(), "{s:?}"),
            }
        }
    }

    #[test]
    fn table1_lineup_composition() {
        let l = Strategy::table1_lineup(8);
        assert_eq!(l.len(), 11);
        // 4 P-Reduce variants, 3 backups out of 8.
        assert!(l.contains(&Strategy::PsBackup { backups: 3 }));
    }

    #[test]
    fn families_partition_the_lineup() {
        let lineup = Strategy::table1_lineup(8);
        assert!(lineup
            .iter()
            .any(|s| s.family() == StrategyFamily::Collective));
        assert!(lineup.iter().any(|s| s.family() == StrategyFamily::Gossip));
        assert!(lineup
            .iter()
            .any(|s| s.family() == StrategyFamily::ParameterServer));
        assert!(lineup
            .iter()
            .any(|s| s.family() == StrategyFamily::PartialReduce));
        assert_eq!(Strategy::DPsgd.family(), StrategyFamily::Gossip);
        assert_eq!(
            Strategy::PsSsp { bound: 4 }.family(),
            StrategyFamily::ParameterServer
        );
    }

    #[test]
    fn strategy_serde_roundtrip() {
        let s = Strategy::PReduce {
            p: 4,
            dynamic: true,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: Strategy = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
