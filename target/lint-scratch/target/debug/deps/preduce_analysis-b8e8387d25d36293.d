/root/repo/target/lint-scratch/target/debug/deps/preduce_analysis-b8e8387d25d36293.d: src/main.rs

/root/repo/target/lint-scratch/target/debug/deps/preduce_analysis-b8e8387d25d36293: src/main.rs

src/main.rs:
