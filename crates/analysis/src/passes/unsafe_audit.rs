//! Pass 6 — `unsafe-audit`: unsafe is confined, justified, and gated.
//!
//! PR 6 introduced the workspace's only `unsafe` — AVX2/AVX-512
//! intrinsics behind runtime dispatch in `tensor::kernels`. This pass
//! keeps that boundary mechanical instead of reviewed:
//!
//! 1. every non-test `unsafe` block, `unsafe fn`, and `unsafe impl`
//!    needs a `// SAFETY:` comment on or just above it (attribute and
//!    doc lines in between are skipped);
//! 2. a SIMD intrinsic call (`_mm…(`) must sit inside a
//!    `#[target_feature]` fn — the runtime CPU check is what makes the
//!    call sound, and `#[target_feature]` is how the compiler keeps the
//!    fn out of safe direct calls;
//! 3. every crate root except `preduce-tensor` carries
//!    `#![forbid(unsafe_code)]`, so new unsafe cannot appear outside
//!    the kernel layer without tripping the compiler *and* the lint;
//! 4. belt-and-braces: any non-test `unsafe` outside `crates/tensor/`
//!    is a finding even before rule 3's forbid lands.

use crate::scan::{SourceFile, TokenKind, UnsafeKind};
use crate::Finding;

/// Pass name used in findings and allow directives.
pub const NAME: &str = "unsafe-audit";

/// The one crate allowed to contain unsafe.
const UNSAFE_HOME: &str = "crates/tensor/";

/// Runs the pass on one file (scope: every walked file).
pub fn run(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let in_home = file.path.starts_with(UNSAFE_HOME);

    // Rule 3: crate roots must forbid unsafe (tensor exempt).
    if let Some(krate) = crate_root_name(&file.path) {
        if krate != "preduce-tensor" && !file.code.iter().any(|l| l.contains("forbid(unsafe_code)"))
        {
            findings.push(finding(
                file,
                0,
                "crate root missing `#![forbid(unsafe_code)]`; only `preduce-tensor` may contain unsafe".into(),
            ));
        }
    }

    // Rules 1 + 4 over unsafe regions (blocks and `unsafe impl`).
    for r in &file.items.unsafe_regions {
        if file.is_test[r.start] {
            continue;
        }
        if !has_safety_comment(file, r.start) {
            let what = match r.kind {
                UnsafeKind::Block => "`unsafe` block",
                UnsafeKind::Impl => "`unsafe impl`",
            };
            findings.push(finding(
                file,
                r.start,
                format!("{what} without a `// SAFETY:` comment; document the invariant that makes it sound"),
            ));
        }
        if !in_home {
            findings.push(finding(
                file,
                r.start,
                format!("`unsafe` outside `{UNSAFE_HOME}`; the workspace confines unsafe to the kernel layer"),
            ));
        }
    }

    // Rules 1 + 4 over `unsafe fn` items.
    for f in &file.items.fns {
        if !f.is_unsafe || file.is_test[f.start] {
            continue;
        }
        if !has_safety_comment(file, f.start) {
            findings.push(finding(
                file,
                f.start,
                format!(
                    "`unsafe fn {}` without a `// SAFETY:` comment; document the caller contract",
                    f.name
                ),
            ));
        }
        if !in_home {
            findings.push(finding(
                file,
                f.start,
                format!("`unsafe` outside `{UNSAFE_HOME}`; the workspace confines unsafe to the kernel layer"),
            ));
        }
    }

    // Rule 2: intrinsic calls must sit inside `#[target_feature]` fns.
    let n = file.ct_len();
    for k in 0..n {
        let tok = file.ct(k);
        if tok.kind != TokenKind::Ident
            || !tok.text.starts_with("_mm")
            || file.is_test[tok.line]
            || k + 1 >= n
            || file.ct(k + 1).text != "("
        {
            continue;
        }
        let gated = file
            .items
            .fns
            .iter()
            .filter(|f| f.body.is_some_and(|(o, c)| o <= k && k <= c))
            .any(|f| f.has_target_feature);
        if !gated {
            findings.push(finding(
                file,
                tok.line,
                format!(
                    "SIMD intrinsic `{}` outside a `#[target_feature]` fn; runtime dispatch cannot make this call sound",
                    tok.text
                ),
            ));
        }
    }

    findings.sort_by_key(|f| f.line);
    findings
}

fn finding(file: &SourceFile, line0: usize, message: String) -> Finding {
    Finding {
        pass: NAME.into(),
        file: file.path.clone(),
        line: line0 + 1,
        message,
    }
}

/// `crates/<name>/src/lib.rs` → crate package name (`preduce-<name>`),
/// `src/lib.rs` → the facade crate. Other paths are not crate roots.
fn crate_root_name(path: &str) -> Option<String> {
    if path == "src/lib.rs" {
        return Some("preduce".into());
    }
    let rest = path.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    (tail == "src/lib.rs").then(|| format!("preduce-{name}"))
}

/// Looks for `SAFETY:` in a raw comment on the construct's line or just
/// above it, skipping attribute and doc lines (a `#[target_feature]`
/// stack must not push the comment out of range).
fn has_safety_comment(file: &SourceFile, line0: usize) -> bool {
    if file.raw[line0].contains("SAFETY:") {
        return true;
    }
    let mut j = line0;
    let mut budget = 8;
    while j > 0 && budget > 0 {
        j -= 1;
        budget -= 1;
        let t = file.raw[j].trim();
        if t.contains("SAFETY:") {
            return true;
        }
        if t.starts_with("#[")
            || t.starts_with("#![")
            || t.starts_with("///")
            || t.starts_with("//!")
        {
            continue;
        }
        if t.starts_with("//") {
            // A plain comment that is not SAFETY terminates the search
            // only after being inspected above; keep scanning upward.
            continue;
        }
        return false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undocumented_unsafe_flagged_documented_clean() {
        let bad = SourceFile::from_source(
            "crates/tensor/src/kernels.rs",
            "fn f(p: *const f32) -> f32 {\n    unsafe { *p }\n}\n",
        );
        let got = run(&bad);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("SAFETY"));

        let good = SourceFile::from_source(
            "crates/tensor/src/kernels.rs",
            "fn f(p: *const f32) -> f32 {\n    // SAFETY: caller guarantees p is in-bounds.\n    unsafe { *p }\n}\n",
        );
        assert!(run(&good).is_empty());
    }

    #[test]
    fn safety_comment_seen_through_attribute_stack() {
        let f = SourceFile::from_source(
            "crates/tensor/src/kernels.rs",
            "// SAFETY: callers hold the avx2 CPU check.\n#[target_feature(enable = \"avx2\")]\nunsafe fn kern(p: *const f32) -> f32 {\n    *p\n}\n",
        );
        assert!(run(&f).is_empty(), "{:?}", run(&f));
    }

    #[test]
    fn intrinsic_outside_target_feature_flagged() {
        let bad = SourceFile::from_source(
            "crates/tensor/src/kernels.rs",
            "fn plain(p: *const f32) {\n    // SAFETY: not enough — missing target_feature.\n    unsafe {\n        let v = _mm256_loadu_ps(p);\n    }\n}\n",
        );
        let got = run(&bad);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("_mm256_loadu_ps"));

        let good = SourceFile::from_source(
            "crates/tensor/src/kernels.rs",
            "// SAFETY: caller checked avx2.\n#[target_feature(enable = \"avx2\")]\nunsafe fn gated(p: *const f32) {\n    let v = _mm256_loadu_ps(p);\n}\n",
        );
        assert!(run(&good).is_empty(), "{:?}", run(&good));
    }

    #[test]
    fn crate_roots_must_forbid_unsafe_tensor_exempt() {
        let missing = SourceFile::from_source("crates/comm/src/lib.rs", "pub mod tcp;\n");
        let got = run(&missing);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("forbid(unsafe_code)"));

        let present = SourceFile::from_source(
            "crates/comm/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod tcp;\n",
        );
        assert!(run(&present).is_empty());

        let tensor = SourceFile::from_source("crates/tensor/src/lib.rs", "pub mod kernels;\n");
        assert!(run(&tensor).is_empty());
    }

    #[test]
    fn unsafe_outside_tensor_is_flagged_even_with_safety() {
        let f = SourceFile::from_source(
            "crates/comm/src/hack.rs",
            "fn f(p: *const f32) -> f32 {\n    // SAFETY: documented but misplaced.\n    unsafe { *p }\n}\n",
        );
        let got = run(&f);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("confines unsafe"));
    }

    #[test]
    fn test_code_is_exempt() {
        let f = SourceFile::from_source(
            "crates/tensor/src/kernels.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(p: *const f32) -> f32 {\n        unsafe { *p }\n    }\n}\n",
        );
        assert!(run(&f).is_empty());
    }
}
