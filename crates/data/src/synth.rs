//! Seeded Gaussian-mixture classification task generator.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, StandardNormal};

use preduce_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Configuration of a synthetic Gaussian-mixture classification task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Total number of examples to generate.
    pub num_samples: usize,
    /// Distance of every class center from the origin. Larger ⇒ easier.
    pub center_norm: f32,
    /// Standard deviation of the per-class isotropic noise. Larger ⇒ harder.
    pub noise_std: f32,
    /// When true, features pass through a fixed random nonlinear map
    /// (`tanh` of a random projection) so linear models cannot solve the
    /// task and hidden layers earn their keep.
    pub nonlinear_warp: bool,
    /// RNG seed; the same config + seed always yields the same dataset.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            num_classes: 10,
            feature_dim: 32,
            num_samples: 4000,
            center_norm: 3.0,
            noise_std: 1.0,
            nonlinear_warp: false,
            seed: 0,
        }
    }
}

/// A sampled Gaussian mixture: class centers plus generation parameters.
///
/// Keeping the generator around (rather than only the realized dataset) lets
/// tests draw fresh i.i.d. evaluation sets from the same distribution.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    config: SynthConfig,
    /// `[num_classes, feature_dim]` class centers.
    centers: Tensor,
    /// Optional fixed random warp matrix `[feature_dim, feature_dim]`.
    warp: Option<Tensor>,
}

impl GaussianMixture {
    /// Samples class centers (uniformly on the sphere of radius
    /// `center_norm`) and the optional warp from the config's seed.
    ///
    /// # Panics
    /// Panics if the config has zero classes, dimensions, or samples.
    pub fn new(config: SynthConfig) -> Self {
        assert!(config.num_classes > 0, "need at least one class");
        assert!(config.feature_dim > 0, "need at least one feature");
        assert!(config.num_samples > 0, "need at least one sample");
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

        let d = config.feature_dim;
        let mut centers = Vec::with_capacity(config.num_classes * d);
        for _ in 0..config.num_classes {
            // Direction uniform on the sphere: normalize a standard normal.
            let v: Vec<f32> = (0..d).map(|_| StandardNormal.sample(&mut rng)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
            centers.extend(v.into_iter().map(|x| x / norm * config.center_norm));
        }
        let centers =
            Tensor::from_vec(centers, [config.num_classes, d]).expect("center volume matches");

        let warp = config.nonlinear_warp.then(|| {
            let scale = (1.0 / d as f32).sqrt();
            let data = (0..d * d).map(|_| rng.gen_range(-scale..scale)).collect();
            Tensor::from_vec(data, [d, d]).expect("warp volume matches")
        });

        GaussianMixture {
            config,
            centers,
            warp,
        }
    }

    /// The generation config.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Class centers, `[num_classes, feature_dim]`.
    pub fn centers(&self) -> &Tensor {
        &self.centers
    }

    /// Realizes the configured dataset (balanced classes, shuffled order).
    pub fn generate(&self) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed ^ 0x9e3779b9);
        self.sample(self.config.num_samples, &mut rng)
    }

    /// Draws `n` fresh examples from the mixture using `rng`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        assert!(n > 0, "cannot sample an empty dataset");
        let d = self.config.feature_dim;
        let c = self.config.num_classes;
        let noise = Normal::new(0.0f32, self.config.noise_std.max(1e-12)).expect("std positive");

        // Balanced class assignment, then shuffled.
        let mut labels: Vec<usize> = (0..n).map(|i| i % c).collect();
        labels.shuffle(rng);

        let mut data = Vec::with_capacity(n * d);
        for &y in &labels {
            let center = self.centers.row(y);
            for &cx in center {
                data.push(cx + noise.sample(rng));
            }
        }
        let mut features = Tensor::from_vec(data, [n, d]).expect("volume matches");

        if let Some(warp) = &self.warp {
            features = preduce_tensor::matmul(&features, warp);
            for v in features.as_mut_slice() {
                *v = v.tanh();
            }
        }

        Dataset::new(features, labels, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let cfg = SynthConfig {
            num_samples: 100,
            ..SynthConfig::default()
        };
        let a = GaussianMixture::new(cfg.clone()).generate();
        let b = GaussianMixture::new(cfg).generate();
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.features(), b.features());
    }

    #[test]
    fn different_seeds_differ() {
        let base = SynthConfig {
            num_samples: 100,
            ..SynthConfig::default()
        };
        let a = GaussianMixture::new(base.clone()).generate();
        let b = GaussianMixture::new(SynthConfig { seed: 1, ..base }).generate();
        assert_ne!(a.features(), b.features());
    }

    #[test]
    fn classes_are_balanced() {
        let cfg = SynthConfig {
            num_classes: 4,
            num_samples: 400,
            ..SynthConfig::default()
        };
        let d = GaussianMixture::new(cfg).generate();
        let mut counts = [0usize; 4];
        for &y in d.labels() {
            counts[y] += 1;
        }
        assert_eq!(counts, [100; 4]);
    }

    #[test]
    fn centers_have_requested_norm() {
        let cfg = SynthConfig {
            center_norm: 5.0,
            ..SynthConfig::default()
        };
        let gm = GaussianMixture::new(cfg);
        for i in 0..gm.config().num_classes {
            let norm: f32 = gm
                .centers()
                .row(i)
                .iter()
                .map(|x| x * x)
                .sum::<f32>()
                .sqrt();
            assert!((norm - 5.0).abs() < 1e-4);
        }
    }

    #[test]
    fn easy_task_is_nearest_center_separable() {
        // With a huge margin and tiny noise, nearest-center classification
        // should be essentially perfect.
        let cfg = SynthConfig {
            num_classes: 5,
            feature_dim: 16,
            num_samples: 500,
            center_norm: 10.0,
            noise_std: 0.1,
            nonlinear_warp: false,
            seed: 3,
        };
        let gm = GaussianMixture::new(cfg);
        let ds = gm.generate();
        let mut correct = 0;
        for i in 0..ds.len() {
            let x = ds.features().row(i);
            let mut best = (f32::INFINITY, 0);
            for cidx in 0..5 {
                let c = gm.centers().row(cidx);
                let dist: f32 = x.iter().zip(c).map(|(a, b)| (a - b).powi(2)).sum();
                if dist < best.0 {
                    best = (dist, cidx);
                }
            }
            if best.1 == ds.labels()[i] {
                correct += 1;
            }
        }
        assert!(correct as f32 / ds.len() as f32 > 0.99);
    }

    #[test]
    fn warp_keeps_features_bounded() {
        let cfg = SynthConfig {
            nonlinear_warp: true,
            num_samples: 50,
            ..SynthConfig::default()
        };
        let ds = GaussianMixture::new(cfg).generate();
        assert!(ds.features().max_abs() <= 1.0);
    }
}
