//! Figure 7: convergence curves (test accuracy vs training time).
//!
//! (a) VGG-19 analog on cifar10-like, N = 8, HL = 3 — All-Reduce,
//!     Eager-Reduce, P-Reduce CON/DYN (P = 3).
//! (b) ResNet-34 analog on cifar100-like, 16 workers, production
//!     heterogeneity — All-Reduce vs P-Reduce CON/DYN.
//!
//! Prints `(time, accuracy)` series per method, ready for plotting.
//!
//! Run: `cargo run --release -p preduce-bench --bin fig7_convergence`

use preduce_bench::configs::{production_config, table1_config};
use preduce_bench::output::maybe_dump_json;
use preduce_models::zoo;
use preduce_trainer::{run_experiment, RunResult, Strategy};

fn print_series(r: &RunResult) {
    println!("# {}", r.strategy);
    for p in &r.trace {
        println!("{:.2}\t{:.4}", p.time, p.accuracy);
    }
    println!();
}

fn main() {
    println!("== Fig 7(a): vgg19 analog, cifar10-like, HL = 3 ==\n");
    let mut config = table1_config(zoo::vgg19(), 3);
    // Curves should extend past the threshold crossing: keep evaluating on
    // a generous cap and do not stop at the threshold.
    config.threshold = 0.999;
    let ar_rounds: u64 = if preduce_bench::quick_mode() {
        400
    } else {
        1_000
    };
    let mut results = Vec::new();
    for s in [
        Strategy::AllReduce,
        Strategy::EagerReduce,
        Strategy::PReduce {
            p: 3,
            dynamic: false,
        },
        Strategy::PReduce {
            p: 3,
            dynamic: true,
        },
    ] {
        let mut config = config.clone();
        // Equal gradient budgets: an AR/ER round consumes N gradients, a
        // P-Reduce group consumes P.
        config.max_updates = match s {
            Strategy::PReduce { p, .. } => ar_rounds * 8 / p as u64,
            _ => ar_rounds,
        };
        config.eval_every = (config.max_updates / 25).max(1);
        let r = run_experiment(s, &config);
        print_series(&r);
        results.push(r);
    }
    maybe_dump_json("fig7a_vgg19_hl3", &results);

    println!(
        "== Fig 7(b): resnet34 analog, cifar100-like, 16 workers, production heterogeneity ==\n"
    );
    let base = production_config(16);
    let ar_rounds: u64 = if preduce_bench::quick_mode() {
        400
    } else {
        1_500
    };
    let mut results = Vec::new();
    for s in [
        Strategy::AllReduce,
        Strategy::PReduce {
            p: 4,
            dynamic: false,
        },
        Strategy::PReduce {
            p: 4,
            dynamic: true,
        },
    ] {
        let mut config = base.clone();
        config.threshold = 0.999;
        config.max_updates = match s {
            Strategy::PReduce { p, .. } => ar_rounds * 16 / p as u64,
            _ => ar_rounds,
        };
        config.eval_every = (config.max_updates / 25).max(1);
        let r = run_experiment(s, &config);
        print_series(&r);
        results.push(r);
    }
    maybe_dump_json("fig7b_production", &results);
}
