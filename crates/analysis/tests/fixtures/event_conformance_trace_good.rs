// Fixture: a closed protocol — every variant emitted and checked.
// Scanned as crates/core/src/trace.rs (never compiled).

/// The trace-event vocabulary.
pub enum TraceEvent {
    RunStarted { workers: usize },
    GroupFormed { id: u64, size: usize },
}
