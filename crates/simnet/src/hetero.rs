//! Heterogeneity models: how long one worker's local update takes.
//!
//! The paper's analysis (§2.3) models heterogeneity purely as independent
//! per-worker distributions of per-update time; its experiments realize that
//! with (a) GPU sharing at heterogeneity level HL (Table 1) and (b) a shared
//! production cluster (Figs. 9–11). Each model here reproduces one of those
//! regimes. All randomness flows through the caller's RNG, keeping
//! simulations reproducible.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Multiplicative noise applied on top of a model's base compute time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Jitter {
    /// No noise: compute time is deterministic.
    None,
    /// Log-normal multiplicative noise with median 1 and the given sigma
    /// (log-scale standard deviation). Matches the right-skewed iteration
    /// times observed on shared accelerators.
    LogNormal {
        /// Log-scale standard deviation.
        sigma: f64,
    },
}

impl Jitter {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Jitter::None => 1.0,
            Jitter::LogNormal { sigma } => LogNormal::new(0.0, sigma.max(1e-12))
                .expect("sigma validated")
                .sample(rng),
        }
    }
}

/// Per-worker compute-time model.
pub trait HeterogeneityModel: Send {
    /// Number of workers this model covers.
    fn num_workers(&self) -> usize;

    /// Seconds for `flops` of work executed by `worker` starting at `now`.
    ///
    /// Implementations may be stateful (e.g. Markov-modulated slowdowns
    /// advance their state per call).
    fn compute_time<'a>(
        &mut self,
        worker: usize,
        flops: f64,
        now: SimTime,
        rng: &mut (dyn rand::RngCore + 'a),
    ) -> f64;

    /// Clones the model behind a box.
    fn clone_box(&self) -> Box<dyn HeterogeneityModel>;
}

impl Clone for Box<dyn HeterogeneityModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

fn check_worker(worker: usize, n: usize) {
    assert!(worker < n, "worker {worker} out of range (fleet of {n})");
}

/// A homogeneous fleet: every worker has the same effective device
/// throughput (HL = 1 in the paper's terms).
#[derive(Debug, Clone)]
pub struct UniformFleet {
    n: usize,
    device_flops: f64,
    jitter: Jitter,
}

impl UniformFleet {
    /// Creates a fleet of `n` identical devices with the given sustained
    /// FLOP/s throughput.
    ///
    /// # Panics
    /// Panics if `n == 0` or `device_flops <= 0`.
    pub fn new(n: usize, device_flops: f64, jitter: Jitter) -> Self {
        assert!(n > 0, "fleet must have at least one worker");
        assert!(device_flops > 0.0, "device throughput must be positive");
        UniformFleet {
            n,
            device_flops,
            jitter,
        }
    }
}

impl HeterogeneityModel for UniformFleet {
    fn num_workers(&self) -> usize {
        self.n
    }

    fn compute_time<'a>(
        &mut self,
        worker: usize,
        flops: f64,
        _now: SimTime,
        rng: &mut (dyn rand::RngCore + 'a),
    ) -> f64 {
        check_worker(worker, self.n);
        flops / self.device_flops * self.jitter.sample(rng)
    }

    fn clone_box(&self) -> Box<dyn HeterogeneityModel> {
        Box::new(self.clone())
    }
}

/// The paper's synthetic heterogeneity knob (Table 1): `hl` workers share a
/// single physical GPU, the rest get exclusive devices. A device shared by
/// `k` residents gives each of them `1/k` of its throughput (processor
/// sharing).
#[derive(Debug, Clone)]
pub struct GpuSharingFleet {
    /// Device index per worker.
    assignment: Vec<usize>,
    /// Residents per device.
    residents: Vec<usize>,
    device_flops: f64,
    jitter: Jitter,
}

impl GpuSharingFleet {
    /// Creates a fleet of `n` workers where the first `hl` share device 0
    /// and the remaining `n - hl` each own a dedicated device — exactly the
    /// paper's construction ("selecting HL out of N workers to share a
    /// single physical GPU").
    ///
    /// `hl = 1` (or 0) degenerates to a homogeneous fleet.
    ///
    /// # Panics
    /// Panics if `n == 0`, `hl > n`, or `device_flops <= 0`.
    pub fn new(n: usize, hl: usize, device_flops: f64, jitter: Jitter) -> Self {
        assert!(n > 0, "fleet must have at least one worker");
        assert!(hl <= n, "heterogeneity level {hl} exceeds fleet size {n}");
        assert!(device_flops > 0.0, "device throughput must be positive");
        let shared = hl.max(1);
        let mut assignment = Vec::with_capacity(n);
        for i in 0..n {
            if i < shared {
                assignment.push(0);
            } else {
                assignment.push(i - shared + 1);
            }
        }
        Self::from_assignment(assignment, device_flops, jitter)
    }

    /// Creates a fleet from an explicit worker→device assignment.
    ///
    /// # Panics
    /// Panics if the assignment is empty or `device_flops <= 0`.
    pub fn from_assignment(assignment: Vec<usize>, device_flops: f64, jitter: Jitter) -> Self {
        assert!(!assignment.is_empty(), "empty device assignment");
        assert!(device_flops > 0.0, "device throughput must be positive");
        let n_devices = assignment.iter().max().expect("non-empty") + 1;
        let mut residents = vec![0usize; n_devices];
        for &d in &assignment {
            residents[d] += 1;
        }
        GpuSharingFleet {
            assignment,
            residents,
            device_flops,
            jitter,
        }
    }

    /// The slowdown factor of a worker (residents on its device).
    pub fn slowdown(&self, worker: usize) -> usize {
        check_worker(worker, self.assignment.len());
        self.residents[self.assignment[worker]]
    }
}

impl HeterogeneityModel for GpuSharingFleet {
    fn num_workers(&self) -> usize {
        self.assignment.len()
    }

    fn compute_time<'a>(
        &mut self,
        worker: usize,
        flops: f64,
        _now: SimTime,
        rng: &mut (dyn rand::RngCore + 'a),
    ) -> f64 {
        check_worker(worker, self.assignment.len());
        let share = self.residents[self.assignment[worker]] as f64;
        flops / (self.device_flops / share) * self.jitter.sample(rng)
    }

    fn clone_box(&self) -> Box<dyn HeterogeneityModel> {
        Box::new(self.clone())
    }
}

/// Fixed per-worker speed multipliers: worker `i` takes `multipliers[i]×`
/// the homogeneous time. Fig. 4(b)'s "one worker is two times slower" is
/// `SpeedFleet` with multipliers `[1, 1, 2]`.
#[derive(Debug, Clone)]
pub struct SpeedFleet {
    multipliers: Vec<f64>,
    device_flops: f64,
    jitter: Jitter,
}

impl SpeedFleet {
    /// Creates a fleet from per-worker slowdown multipliers.
    ///
    /// # Panics
    /// Panics if `multipliers` is empty, any multiplier is not positive, or
    /// `device_flops <= 0`.
    pub fn new(multipliers: Vec<f64>, device_flops: f64, jitter: Jitter) -> Self {
        assert!(!multipliers.is_empty(), "empty multiplier list");
        assert!(
            multipliers.iter().all(|&m| m > 0.0 && m.is_finite()),
            "multipliers must be positive and finite"
        );
        assert!(device_flops > 0.0, "device throughput must be positive");
        SpeedFleet {
            multipliers,
            device_flops,
            jitter,
        }
    }
}

impl HeterogeneityModel for SpeedFleet {
    fn num_workers(&self) -> usize {
        self.multipliers.len()
    }

    fn compute_time<'a>(
        &mut self,
        worker: usize,
        flops: f64,
        _now: SimTime,
        rng: &mut (dyn rand::RngCore + 'a),
    ) -> f64 {
        check_worker(worker, self.multipliers.len());
        flops / self.device_flops * self.multipliers[worker] * self.jitter.sample(rng)
    }

    fn clone_box(&self) -> Box<dyn HeterogeneityModel> {
        Box::new(self.clone())
    }
}

/// A production shared cluster: each worker independently alternates between
/// a *normal* and a *degraded* state following a two-state Markov chain
/// (evaluated once per update). Degraded updates run `slow_factor×` slower.
/// With a small entry probability and a moderate exit probability this
/// yields the bursty, heavy-tailed per-update times of the paper's Tencent
/// cluster (Fig. 9).
#[derive(Debug, Clone)]
pub struct MarkovFleet {
    n: usize,
    device_flops: f64,
    /// Probability of entering the degraded state at each update.
    p_degrade: f64,
    /// Probability of recovering at each update while degraded.
    p_recover: f64,
    /// Slowdown while degraded.
    slow_factor: f64,
    jitter: Jitter,
    degraded: Vec<bool>,
}

impl MarkovFleet {
    /// Creates a production-like fleet.
    ///
    /// # Panics
    /// Panics on empty fleets, non-probability transition values,
    /// `slow_factor < 1`, or non-positive throughput.
    pub fn new(
        n: usize,
        device_flops: f64,
        p_degrade: f64,
        p_recover: f64,
        slow_factor: f64,
        jitter: Jitter,
    ) -> Self {
        assert!(n > 0, "fleet must have at least one worker");
        assert!(device_flops > 0.0, "device throughput must be positive");
        assert!(
            (0.0..=1.0).contains(&p_degrade) && (0.0..=1.0).contains(&p_recover),
            "transition probabilities must be in [0, 1]"
        );
        assert!(slow_factor >= 1.0, "slow factor must be ≥ 1");
        MarkovFleet {
            n,
            device_flops,
            p_degrade,
            p_recover,
            slow_factor,
            jitter,
            degraded: vec![false; n],
        }
    }

    /// Whether `worker` is currently degraded.
    pub fn is_degraded(&self, worker: usize) -> bool {
        check_worker(worker, self.n);
        self.degraded[worker]
    }
}

impl HeterogeneityModel for MarkovFleet {
    fn num_workers(&self) -> usize {
        self.n
    }

    fn compute_time<'a>(
        &mut self,
        worker: usize,
        flops: f64,
        _now: SimTime,
        rng: &mut (dyn rand::RngCore + 'a),
    ) -> f64 {
        check_worker(worker, self.n);
        // Advance the worker's chain one step.
        let roll: f64 = rng.gen();
        let state = &mut self.degraded[worker];
        if *state {
            if roll < self.p_recover {
                *state = false;
            }
        } else if roll < self.p_degrade {
            *state = true;
        }
        let factor = if *state { self.slow_factor } else { 1.0 };
        flops / self.device_flops * factor * self.jitter.sample(rng)
    }

    fn clone_box(&self) -> Box<dyn HeterogeneityModel> {
        Box::new(self.clone())
    }
}

/// The scale campaign's named heterogeneity presets, sized to an
/// arbitrary fleet. Returns `None` for an unknown name.
///
/// * `"uniform"` — homogeneous devices with mild log-normal jitter
///   (σ = 0.2), the HL = 1 baseline;
/// * `"gpu-sharing"` — the paper's Table 1 knob at HL = N/4: a quarter
///   of the fleet shares one physical GPU;
/// * `"markov"` — the production-cluster regime (Fig. 9): bursty
///   two-state slowdowns (4× while degraded) over jittered devices.
///
/// All presets use a 1 GFLOP/s device baseline, so compute times are in
/// easy units of "seconds per GFLOP of local work".
pub fn standard_fleet(name: &str, n: usize) -> Option<Box<dyn HeterogeneityModel>> {
    assert!(n > 0, "fleet must have at least one worker");
    let flops = 1e9;
    match name {
        "uniform" => Some(Box::new(UniformFleet::new(
            n,
            flops,
            Jitter::LogNormal { sigma: 0.2 },
        ))),
        "gpu-sharing" => {
            // HL = N/4, but at least 2 sharers (when the fleet allows it)
            // so tiny fleets still exercise sharing.
            let hl = if n >= 8 { n / 4 } else { n.min(2) };
            Some(Box::new(GpuSharingFleet::new(
                n,
                hl,
                flops,
                Jitter::LogNormal { sigma: 0.1 },
            )))
        }
        "markov" => Some(Box::new(MarkovFleet::new(
            n,
            flops,
            0.05,
            0.4,
            4.0,
            Jitter::LogNormal { sigma: 0.2 },
        ))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0)
    }

    #[test]
    fn uniform_fleet_is_deterministic_without_jitter() {
        let mut f = UniformFleet::new(4, 1e9, Jitter::None);
        let t = f.compute_time(0, 2e9, SimTime::ZERO, &mut rng());
        assert_eq!(t, 2.0);
        assert_eq!(f.num_workers(), 4);
    }

    #[test]
    fn gpu_sharing_slows_colocated_workers() {
        let mut f = GpuSharingFleet::new(8, 3, 1e9, Jitter::None);
        // Workers 0..3 share device 0 (3 residents) → 3× slower.
        assert_eq!(f.slowdown(0), 3);
        assert_eq!(f.slowdown(2), 3);
        assert_eq!(f.slowdown(3), 1);
        let slow = f.compute_time(0, 1e9, SimTime::ZERO, &mut rng());
        let fast = f.compute_time(7, 1e9, SimTime::ZERO, &mut rng());
        assert_eq!(slow, 3.0);
        assert_eq!(fast, 1.0);
    }

    #[test]
    fn hl1_is_homogeneous() {
        let f = GpuSharingFleet::new(4, 1, 1e9, Jitter::None);
        for w in 0..4 {
            assert_eq!(f.slowdown(w), 1);
        }
    }

    #[test]
    fn speed_fleet_applies_multipliers() {
        let mut f = SpeedFleet::new(vec![1.0, 1.0, 2.0], 1e9, Jitter::None);
        assert_eq!(f.compute_time(2, 1e9, SimTime::ZERO, &mut rng()), 2.0);
        assert_eq!(f.compute_time(0, 1e9, SimTime::ZERO, &mut rng()), 1.0);
    }

    #[test]
    fn lognormal_jitter_has_median_one() {
        let mut f = UniformFleet::new(1, 1e9, Jitter::LogNormal { sigma: 0.3 });
        let mut r = rng();
        let mut times: Vec<f64> = (0..2001)
            .map(|_| f.compute_time(0, 1e9, SimTime::ZERO, &mut r))
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[1000];
        assert!((median - 1.0).abs() < 0.1, "median {median}");
        // Right-skew: mean exceeds median.
        let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
        assert!(mean > median);
    }

    #[test]
    fn markov_fleet_mixes_fast_and_slow() {
        let mut f = MarkovFleet::new(1, 1e9, 0.2, 0.5, 4.0, Jitter::None);
        let mut r = rng();
        let times: Vec<f64> = (0..500)
            .map(|_| f.compute_time(0, 1e9, SimTime::ZERO, &mut r))
            .collect();
        let fast = times.iter().filter(|&&t| (t - 1.0).abs() < 1e-9).count();
        let slow = times.iter().filter(|&&t| (t - 4.0).abs() < 1e-9).count();
        assert_eq!(fast + slow, 500, "only two deterministic levels exist");
        assert!(fast > 100 && slow > 50, "fast={fast} slow={slow}");
    }

    #[test]
    fn markov_zero_probability_never_degrades() {
        let mut f = MarkovFleet::new(2, 1e9, 0.0, 1.0, 10.0, Jitter::None);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(f.compute_time(0, 1e9, SimTime::ZERO, &mut r), 1.0);
        }
        assert!(!f.is_degraded(0));
    }

    #[test]
    fn boxed_clone_preserves_behaviour() {
        let f = SpeedFleet::new(vec![1.0, 3.0], 1e9, Jitter::None);
        let mut boxed: Box<dyn HeterogeneityModel> = Box::new(f);
        let mut cloned = boxed.clone();
        assert_eq!(
            boxed.compute_time(1, 1e9, SimTime::ZERO, &mut rng()),
            cloned.compute_time(1, 1e9, SimTime::ZERO, &mut rng())
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_worker() {
        let mut f = UniformFleet::new(2, 1e9, Jitter::None);
        f.compute_time(2, 1e9, SimTime::ZERO, &mut rng());
    }

    #[test]
    fn standard_fleet_presets_resolve() {
        for name in ["uniform", "gpu-sharing", "markov"] {
            for n in [1, 4, 100, 1000] {
                let mut fleet = standard_fleet(name, n).unwrap();
                assert_eq!(fleet.num_workers(), n, "{name} at N={n}");
                let t = fleet.compute_time(0, 1e9, SimTime::ZERO, &mut rng());
                assert!(t.is_finite() && t > 0.0, "{name}: t = {t}");
            }
        }
        assert!(standard_fleet("quantum", 8).is_none());
    }
}
