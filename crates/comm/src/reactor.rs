//! The controller's signal plane: a sharded non-blocking reactor over
//! the TCP control sockets.
//!
//! The first TCP control plane spawned one blocking reader thread per
//! worker socket. That topology caps fleet size at the OS thread
//! budget and makes every ready signal a cross-thread wakeup. The
//! reactor replaces it: a small fixed pool of shard threads owns the
//! sockets (round-robin), polls them non-blocking with per-socket
//! incremental [`FrameBuffer`] decoding, and delivers decoded signals
//! to the controller in *batches* — one channel send per scan, not per
//! frame. Socket EOF or a desynchronized stream surfaces as a
//! [`ControlEvent::Disconnected`] so the serving loop can evict the
//! process immediately instead of waiting out the heartbeat budget.
//!
//! `std` only: no epoll wrapper is available under the workspace's
//! dependency budget, so shards scan their sockets with
//! `set_nonblocking(true)` reads and an adaptive idle backoff (yield a
//! few rounds, then sleep [`ReactorConfig::idle_sleep`]). At control
//! message sizes this sustains six-figure signals/sec (see
//! `BENCH_controller_throughput.json`) while idling at a handful of
//! syscalls per shard per millisecond.

use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam::channel::unbounded;
use parking_lot::Mutex;

use crate::control::{ControlEvent, FleetRoster, WorkerSignal};
use crate::error::CommError;
use crate::frame::FrameBuffer;
use crate::tcp::{self, TcpControllerLink};
use crate::Result;

/// Tuning knobs for the signal-plane reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Shard (poller thread) count; `0` picks one shard per 256 sockets,
    /// clamped to `[1, 4]`.
    pub shards: usize,
    /// Idle rounds a shard spends yielding before it starts sleeping.
    pub spin_rounds: u32,
    /// Sleep between scans once a shard has gone idle.
    pub idle_sleep: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            shards: 0,
            spin_rounds: 16,
            idle_sleep: Duration::from_micros(500),
        }
    }
}

impl ReactorConfig {
    /// The effective shard count for a fleet of `n` sockets.
    pub fn effective_shards(&self, n: usize) -> usize {
        if self.shards > 0 {
            self.shards.min(n.max(1))
        } else {
            (n / 256 + 1).clamp(1, 4)
        }
    }
}

/// One fleet member as seen at handshake time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetMember {
    /// Worker rank.
    pub rank: usize,
    /// The peer address of the control connection.
    pub peer_addr: String,
    /// The worker's data-plane listener address, when it sent one.
    pub data_addr: Option<String>,
}

/// One socket owned by a shard thread.
struct ShardSocket {
    rank: usize,
    stream: TcpStream,
    buf: FrameBuffer,
}

/// Drains every readable byte from one socket into `batch`. Returns
/// `false` when the connection is gone (EOF, hard error, or a
/// desynchronized frame stream).
fn pump(sock: &mut ShardSocket, scratch: &mut [u8], batch: &mut Vec<ControlEvent>) -> bool {
    loop {
        match sock.stream.read(scratch) {
            Ok(0) => return false,
            Ok(n) => {
                let Some(chunk) = scratch.get(..n) else {
                    return false;
                };
                sock.buf.push_bytes(chunk);
                loop {
                    match sock.buf.next_frame::<WorkerSignal>() {
                        Ok(Some(signal)) => batch.push(ControlEvent::Signal(signal)),
                        Ok(None) => break,
                        // Malformed frame: the stream is desynchronized
                        // beyond recovery; treat the peer as gone.
                        Err(_) => return false,
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// One shard's scan loop: poll every owned socket, batch decoded
/// events, deliver once per productive scan, back off adaptively when
/// idle. Exits when all sockets are gone or the controller dropped the
/// receiving end.
fn run_shard(
    mut socks: Vec<ShardSocket>,
    tx: crossbeam::channel::Sender<Vec<ControlEvent>>,
    cfg: ReactorConfig,
) {
    let mut scratch = vec![0u8; 16 * 1024];
    let mut idle_rounds = 0u32;
    while !socks.is_empty() {
        let mut batch: Vec<ControlEvent> = Vec::new();
        socks.retain_mut(|s| {
            let alive = pump(s, &mut scratch, &mut batch);
            if !alive {
                batch.push(ControlEvent::Disconnected { worker: s.rank });
            }
            alive
        });
        if batch.is_empty() {
            idle_rounds = idle_rounds.saturating_add(1);
            if idle_rounds <= cfg.spin_rounds {
                thread::yield_now();
            } else {
                // lint: allow(reactor-blocking) bounded adaptive idle backoff: after
                // spin_rounds empty polls the shard naps for idle_sleep so idle fleets
                // do not spin a core; any inbound byte ends the nap on the next poll.
                thread::sleep(cfg.idle_sleep);
            }
        } else {
            idle_rounds = 0;
            if tx.send(batch).is_err() {
                return;
            }
        }
    }
}

/// Accepts exactly `n` workers, handshakes each (rank range and
/// duplicate checks), and hands their read halves to the shard pool.
/// Shared by [`tcp::accept_workers`] (in-process fleets, no roster)
/// and [`accept_fleet`] (multi-process fleets).
pub(crate) fn accept_reactor(
    listener: &TcpListener,
    n: usize,
    cfg: ReactorConfig,
) -> Result<(TcpControllerLink, Vec<FleetMember>)> {
    assert!(n > 0, "need at least one worker");
    let mut writers: Vec<Option<Arc<Mutex<TcpStream>>>> = (0..n).map(|_| None).collect();
    let mut members: Vec<Option<FleetMember>> = (0..n).map(|_| None).collect();
    let mut readers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();

    for conn in 0..n {
        let (mut stream, peer) = listener
            .accept()
            .map_err(|_| CommError::Disconnected { peer: conn })?;
        tcp::configure(&stream, conn)?;
        stream
            .set_read_timeout(Some(tcp::HELLO_TIMEOUT))
            .map_err(|_| CommError::Disconnected { peer: conn })?;
        let hello: tcp::Hello = tcp::read_frame(&mut stream, conn)?;
        if hello.rank >= n {
            return Err(CommError::InvalidRank {
                rank: hello.rank,
                world: n,
            });
        }
        let rank = hello.rank;
        let slot = members
            .get_mut(rank)
            .ok_or(CommError::InvalidRank { rank, world: n })?;
        if slot.is_some() {
            return Err(CommError::InvalidGroup(format!(
                "duplicate hello from rank {rank}"
            )));
        }
        *slot = Some(FleetMember {
            rank,
            peer_addr: peer.to_string(),
            data_addr: hello.data_addr,
        });
        let reader = stream
            .try_clone()
            .map_err(|_| CommError::Disconnected { peer: rank })?;
        reader
            .set_nonblocking(true)
            .map_err(|_| CommError::Disconnected { peer: rank })?;
        if let Some(r) = readers.get_mut(rank) {
            *r = Some(reader);
        }
        if let Some(w) = writers.get_mut(rank) {
            *w = Some(Arc::new(Mutex::new(stream)));
        }
    }

    // Range and duplicate checks above guarantee all n slots are full.
    let writers: Vec<Arc<Mutex<TcpStream>>> = writers.into_iter().flatten().collect();
    let members: Vec<FleetMember> = members.into_iter().flatten().collect();
    debug_assert_eq!(writers.len(), n, "every rank said hello");

    let shards = cfg.effective_shards(n);
    let mut per_shard: Vec<Vec<ShardSocket>> = (0..shards).map(|_| Vec::new()).collect();
    for (rank, reader) in readers.into_iter().enumerate() {
        let Some(stream) = reader else { continue };
        let shard = per_shard.iter_mut().min_by_key(|v| v.len());
        if let Some(shard) = shard {
            shard.push(ShardSocket {
                rank,
                stream,
                buf: FrameBuffer::new(),
            });
        }
    }

    let (tx, rx) = unbounded::<Vec<ControlEvent>>();
    for (i, socks) in per_shard.into_iter().enumerate() {
        if socks.is_empty() {
            continue;
        }
        let tx = tx.clone();
        thread::Builder::new()
            .name(format!("preduce-reactor-{i}"))
            .spawn(move || run_shard(socks, tx, cfg))
            .map_err(|_| CommError::Disconnected { peer: usize::MAX })?;
    }

    Ok((TcpControllerLink::from_reactor(rx, writers), members))
}

/// Accepts a multi-process fleet of `n` worker processes: handshakes
/// every rank, requires each hello to carry a data-plane address, then
/// broadcasts the [`FleetRoster`] so workers can dial each other for
/// group averages. Returns the reactor-backed control link plus the
/// member table (for `ProcessJoined` tracing).
///
/// # Errors
/// Fails on handshake errors, duplicate/out-of-range ranks, or a
/// worker that did not announce a data address.
pub fn accept_fleet(
    listener: &TcpListener,
    n: usize,
    cfg: ReactorConfig,
) -> Result<(TcpControllerLink, Vec<FleetMember>)> {
    let (mut link, members) = accept_reactor(listener, n, cfg)?;
    let mut data_addrs = Vec::with_capacity(n);
    for m in &members {
        let addr = m.data_addr.clone().ok_or_else(|| {
            CommError::InvalidGroup(format!(
                "worker {} joined a process fleet without a data-plane address",
                m.rank
            ))
        })?;
        data_addrs.push(addr);
    }
    let roster = FleetRoster { data_addrs };
    link.broadcast_roster(&roster)?;
    Ok((link, members))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{BatchControlPlane, ControlPlane, GroupAssignment, WorkerControlPlane};
    use crate::tcp::{bind_controller, RetryPolicy, TcpWorkerLink};

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn fleet_handshake_distributes_roster() {
        let n = 3;
        let (listener, addr) = bind_controller("127.0.0.1:0");
        let workers: Vec<_> = (0..n)
            .map(|rank| {
                thread::spawn(move || {
                    TcpWorkerLink::connect_fleet(
                        addr,
                        rank,
                        format!("10.0.0.{rank}:70{rank}0"),
                        RetryPolicy::default(),
                    )
                    .expect("fleet connect")
                })
            })
            .collect();
        let (_link, members) =
            accept_fleet(&listener, n, ReactorConfig::default()).expect("accept fleet");
        assert_eq!(members.len(), n);
        for (rank, w) in workers.into_iter().enumerate() {
            let (_w, roster) = w.join().expect("join");
            assert_eq!(roster.data_addrs.len(), n);
            assert_eq!(
                roster.data_addrs.get(rank).map(String::as_str),
                Some(format!("10.0.0.{rank}:70{rank}0").as_str())
            );
        }
    }

    #[test]
    fn fleet_without_data_addr_is_rejected() {
        let (listener, addr) = bind_controller("127.0.0.1:0");
        let w = thread::spawn(move || TcpWorkerLink::connect(addr, 0));
        let r = accept_fleet(&listener, 1, ReactorConfig::default());
        assert!(matches!(r, Err(CommError::InvalidGroup(_))), "{r:?}");
        let _ = w.join().expect("join");
    }

    #[test]
    fn disconnect_surfaces_as_event() {
        let (listener, addr) = bind_controller("127.0.0.1:0");
        let w = thread::spawn(move || {
            let mut w = TcpWorkerLink::connect(addr, 0).expect("connect");
            w.send_ready(1).expect("ready");
            // Dropping the link closes the socket: the reactor must
            // report the EOF as a Disconnected event.
        });
        let (mut link, _) = accept_reactor(&listener, 1, ReactorConfig::default()).expect("accept");
        w.join().expect("worker");
        let mut saw_signal = false;
        let mut saw_disconnect = false;
        let deadline = std::time::Instant::now() + T;
        while !(saw_signal && saw_disconnect) && std::time::Instant::now() < deadline {
            for ev in link
                .recv_events(64, Duration::from_millis(100))
                .unwrap_or_default()
            {
                match ev {
                    ControlEvent::Signal(WorkerSignal::Ready { worker: 0, .. }) => {
                        saw_signal = true;
                    }
                    ControlEvent::Disconnected { worker: 0 } => saw_disconnect = true,
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert!(saw_signal, "ready signal decoded by the reactor");
        assert!(saw_disconnect, "EOF reported as Disconnected");
    }

    #[test]
    fn reactor_link_still_serves_assignments() {
        let (listener, addr) = bind_controller("127.0.0.1:0");
        let worker = thread::spawn(move || {
            let mut w = TcpWorkerLink::connect(addr, 0).expect("connect");
            w.send_ready(7).expect("ready");
            w.recv_assignment(T).expect("assignment")
        });
        let (mut link, _) = accept_reactor(&listener, 1, ReactorConfig::default()).expect("accept");
        match link.recv_signal(T).expect("signal") {
            WorkerSignal::Ready { worker, iteration } => {
                assert_eq!((worker, iteration), (0, 7));
            }
            other => panic!("unexpected {other:?}"),
        }
        let a = GroupAssignment {
            group: vec![0],
            weights: vec![1.0],
            base_tag: 3,
            new_iteration: 7,
        };
        link.send_assignment(0, a.clone()).expect("send");
        assert_eq!(worker.join().expect("join"), a);
    }

    #[test]
    fn shard_count_scales_with_sockets() {
        let cfg = ReactorConfig::default();
        assert_eq!(cfg.effective_shards(1), 1);
        assert_eq!(cfg.effective_shards(255), 1);
        assert_eq!(cfg.effective_shards(1024), 4);
        let fixed = ReactorConfig {
            shards: 8,
            ..ReactorConfig::default()
        };
        assert_eq!(fixed.effective_shards(1024), 8);
        assert_eq!(fixed.effective_shards(2), 2);
    }
}
