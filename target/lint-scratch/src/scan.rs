//! Lexical source model: the v2 token engine.
//!
//! A `.rs` file is scanned three ways, all kept on [`SourceFile`]:
//!
//! 1. **Line views** — the raw text (for allowlist comments) and a *code
//!    view* with comments and string/char literals blanked to spaces, so
//!    line-oriented helpers can match words without tripping over doc
//!    prose or string contents. Column positions are preserved:
//!    `code[i]` has the same length as `raw[i]`.
//! 2. **Token stream** — a spanned token list ([`Token`]) over the whole
//!    file: identifiers, multi-character punctuation (`::`, `=>`, `+=`…),
//!    number/string/char literals, lifetimes, raw strings, and comment /
//!    doc-comment regions as their own token kinds. Passes that need
//!    structure (guard scopes, match arms, attribute lookback) work here.
//! 3. **Item tree** — a lightweight structural index ([`ItemTree`]):
//!    functions (with header, `unsafe`/`#[target_feature]`/`&mut self`
//!    facts and body token range), `unsafe` regions, enums with their
//!    variants, impl blocks, and modules. `#[cfg(test)]` regions are
//!    tracked per line in `is_test`.
//!
//! This is still a deliberate non-parser: no expressions, no types, no
//! name resolution — and no dependencies, because the lint gate must
//! build anywhere the toolchain does. But the facts it does extract are
//! scope-accurate (brace depth from real tokens, not per-line brace
//! counting), which kills the false-positive classes the line scanner
//! had around multi-line statements and strings containing braces.

use std::fs;
use std::io;
use std::path::Path;

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `self`, `controller`).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (`1.0`, `0x40`, `64_usize`).
    Number,
    /// String literal, including byte and raw strings.
    Str,
    /// Char literal (`'\n'`).
    Char,
    /// Punctuation; multi-char operators are one token (`::`, `=>`).
    Punct,
    /// Plain comment (`// …`, `/* … */`).
    Comment,
    /// Doc comment (`/// …`, `//! …`, `/** … */`).
    DocComment,
}

impl TokenKind {
    /// True for tokens that participate in code structure (everything
    /// except comments).
    pub fn is_code(self) -> bool {
        !matches!(self, TokenKind::Comment | TokenKind::DocComment)
    }
}

/// One spanned token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind tag.
    pub kind: TokenKind,
    /// Verbatim text (comments keep their full body).
    pub text: String,
    /// 0-based line of the first byte.
    pub line: usize,
    /// 0-based byte column of the first byte.
    pub col: usize,
}

/// A function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub start: usize,
    /// 0-based line of the body's closing brace (or of the `;` for a
    /// bodiless trait declaration).
    pub end: usize,
    /// Signature text from `fn` up to (excluding) the body brace,
    /// whitespace-normalized.
    pub header: String,
    /// Body extent as an inclusive range of *code-token positions*
    /// (indices into [`SourceFile::code_tokens`]), from the opening to
    /// the closing brace. `None` for bodiless declarations.
    pub body: Option<(usize, usize)>,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Carries a `#[target_feature(…)]` attribute.
    pub has_target_feature: bool,
    /// Takes `&mut self` (possibly with a lifetime).
    pub takes_mut_self: bool,
}

/// What introduced an `unsafe` region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }` block.
    Block,
    /// `unsafe impl … { }` / `unsafe trait … { }`.
    Impl,
}

/// An `unsafe` block or impl/trait region (unsafe *functions* live on
/// [`FnItem::is_unsafe`]).
#[derive(Debug, Clone)]
pub struct UnsafeRegion {
    /// 0-based line of the `unsafe` keyword.
    pub start: usize,
    /// 0-based line of the region's closing brace.
    pub end: usize,
    /// Block or impl.
    pub kind: UnsafeKind,
}

/// An enum definition with its variants.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// 0-based line of the `enum` keyword.
    pub start: usize,
    /// 0-based line of the closing brace.
    pub end: usize,
    /// `(variant name, 0-based definition line)` in order.
    pub variants: Vec<(String, usize)>,
}

/// An impl block.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// The implemented-on type's name (`impl Trait for Type` → `Type`).
    pub type_name: String,
    /// 0-based line of the `impl` keyword.
    pub start: usize,
    /// 0-based line of the closing brace.
    pub end: usize,
}

/// An inline or file module declaration.
#[derive(Debug, Clone)]
pub struct ModItem {
    /// Module name.
    pub name: String,
    /// 0-based line of the `mod` keyword.
    pub start: usize,
    /// 0-based line of the closing brace (or the `;` line).
    pub end: usize,
}

/// The structural index of one file.
#[derive(Debug, Clone, Default)]
pub struct ItemTree {
    /// Every `fn` item, outer before nested.
    pub fns: Vec<FnItem>,
    /// Every `unsafe` block / impl region.
    pub unsafe_regions: Vec<UnsafeRegion>,
    /// Every enum with its variants.
    pub enums: Vec<EnumItem>,
    /// Every impl block.
    pub impls: Vec<ImplItem>,
    /// Every module declaration.
    pub mods: Vec<ModItem>,
}

/// One `Base::Variant` path reference, classified by position.
#[derive(Debug, Clone)]
pub struct PathRef {
    /// The segment after `::` (must start uppercase to be collected).
    pub variant: String,
    /// 0-based line.
    pub line: usize,
    /// True when the reference sits in *pattern* position — a match-arm
    /// pattern, an `if let`/`while let`/`let` pattern, or the pattern
    /// argument of `matches!`. False means expression (construction)
    /// position.
    pub pattern: bool,
    /// True when the line is inside `#[cfg(test)]`.
    pub test: bool,
}

/// A scanned source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (display + scoping).
    pub path: String,
    /// Original lines, verbatim.
    pub raw: Vec<String>,
    /// Lines with comments and string/char literals blanked to spaces.
    pub code: Vec<String>,
    /// `is_test[i]`: line `i` is inside a `#[cfg(test)]` item.
    pub is_test: Vec<bool>,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens, in order.
    pub code_tokens: Vec<usize>,
    /// Structural index built from the code tokens.
    pub items: ItemTree,
}

impl SourceFile {
    /// Reads and scans the file at `abs`, recording it under the
    /// workspace-relative `rel` path.
    pub fn load(abs: &Path, rel: &str) -> io::Result<SourceFile> {
        Ok(SourceFile::from_source(rel, &fs::read_to_string(abs)?))
    }

    /// Scans in-memory source (fixture tests use this directly).
    pub fn from_source(rel: &str, source: &str) -> SourceFile {
        let blanked = blank_non_code(source);
        let raw: Vec<String> = source.lines().map(str::to_string).collect();
        let code: Vec<String> = blanked.lines().map(str::to_string).collect();
        debug_assert_eq!(raw.len(), code.len());
        let is_test = mark_test_regions(&code);
        let tokens = tokenize(source);
        let code_tokens: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind.is_code())
            .map(|(i, _)| i)
            .collect();
        let items = build_items(&tokens, &code_tokens);
        SourceFile {
            path: rel.to_string(),
            raw,
            code,
            is_test,
            tokens,
            code_tokens,
            items,
        }
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the file has no lines.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Code lines that are not inside `#[cfg(test)]`, with 0-based index.
    pub fn non_test_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.code
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.is_test[*i])
            .map(|(i, l)| (i, l.as_str()))
    }

    /// The code token at code-token position `k` (panics on bad `k`;
    /// positions come from this file's own item tree).
    pub fn ct(&self, k: usize) -> &Token {
        &self.tokens[self.code_tokens[k]]
    }

    /// Number of code tokens.
    pub fn ct_len(&self) -> usize {
        self.code_tokens.len()
    }

    /// All `base::Variant` references (uppercase-initial segment after a
    /// `::` following `base`), classified as pattern vs expression
    /// position. Comment and string mentions never appear here — they
    /// are not code tokens.
    pub fn path_refs(&self, base: &str) -> Vec<PathRef> {
        path_refs_impl(self, base)
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

/// Multi-char operators, longest first within each arity.
const PUNCTS3: &[&str] = &["<<=", ">>=", "..=", "..."];
const PUNCTS2: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "<<", ">>", "..",
];

/// Lexes `source` into a spanned token stream. Never fails: bytes that
/// fit no rule become single-char punct tokens, so the stream always
/// covers the file.
pub fn tokenize(source: &str) -> Vec<Token> {
    let b = source.as_bytes();
    let mut toks = Vec::new();
    let (mut line, mut col) = (0usize, 0usize);
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            col = 0;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            col += 1;
            i += 1;
            continue;
        }
        let (tline, tcol) = (line, col);
        // Line comment (`///`/`//!` are doc comments).
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let s = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
                col += 1;
            }
            let text = &source[s..i];
            let kind = if text.starts_with("///") || text.starts_with("//!") {
                TokenKind::DocComment
            } else {
                TokenKind::Comment
            };
            toks.push(token(kind, text, tline, tcol));
            continue;
        }
        // Block comment, nested (`/** */`, `/*! */` are doc comments).
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let s = i;
            let doc = (b.get(i + 2) == Some(&b'*') && b.get(i + 3) != Some(&b'/'))
                || b.get(i + 2) == Some(&b'!');
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                    col += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                    col += 2;
                    if depth == 0 {
                        break;
                    }
                } else if b[i] == b'\n' {
                    i += 1;
                    line += 1;
                    col = 0;
                } else {
                    i += 1;
                    col += 1;
                }
            }
            let kind = if doc {
                TokenKind::DocComment
            } else {
                TokenKind::Comment
            };
            toks.push(token(kind, &source[s..i], tline, tcol));
            continue;
        }
        // Raw (and byte-raw) string literal.
        if let Some(len) = raw_string_len(b, i) {
            let s = i;
            for _ in 0..len {
                if b[i] == b'\n' {
                    line += 1;
                    col = 0;
                } else {
                    col += 1;
                }
                i += 1;
            }
            toks.push(token(TokenKind::Str, &source[s..i], tline, tcol));
            continue;
        }
        // Plain or byte string literal.
        if c == b'"' || (c == b'b' && b.get(i + 1) == Some(&b'"') && !prev_is_ident(b, i)) {
            let s = i;
            if c == b'b' {
                i += 1;
                col += 1;
            }
            i += 1;
            col += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    if b[i + 1] == b'\n' {
                        i += 2;
                        line += 1;
                        col = 0;
                    } else {
                        i += 2;
                        col += 2;
                    }
                } else if b[i] == b'"' {
                    i += 1;
                    col += 1;
                    break;
                } else if b[i] == b'\n' {
                    i += 1;
                    line += 1;
                    col = 0;
                } else {
                    i += 1;
                    col += 1;
                }
            }
            toks.push(token(TokenKind::Str, &source[s..i], tline, tcol));
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' && !prev_is_ident(b, i) {
            let is_char = match b.get(i + 1) {
                Some(b'\\') => true,
                Some(_) => b.get(i + 2) == Some(&b'\''),
                None => false,
            };
            let s = i;
            if is_char {
                i += 1;
                col += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        i += 2;
                        col += 2;
                    } else if b[i] == b'\'' {
                        i += 1;
                        col += 1;
                        break;
                    } else {
                        i += 1;
                        col += 1;
                    }
                }
                toks.push(token(TokenKind::Char, &source[s..i], tline, tcol));
            } else {
                i += 1;
                col += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                    col += 1;
                }
                toks.push(token(TokenKind::Lifetime, &source[s..i], tline, tcol));
            }
            continue;
        }
        // Number literal. A `.` joins only when it is not a range (`..`)
        // and not a method call (`1.max(2)`); `1e-3` exponents join.
        if c.is_ascii_digit() {
            let s = i;
            i += 1;
            col += 1;
            while i < b.len() {
                let d = b[i];
                let joins = d.is_ascii_alphanumeric()
                    || d == b'_'
                    || (d == b'.'
                        && b.get(i + 1) != Some(&b'.')
                        && !b
                            .get(i + 1)
                            .map(|n| n.is_ascii_alphabetic() || *n == b'_')
                            .unwrap_or(false))
                    || ((d == b'+' || d == b'-')
                        && matches!(b[i - 1], b'e' | b'E')
                        && !source[s..i].starts_with("0x")
                        && b.get(i + 1).map(|n| n.is_ascii_digit()).unwrap_or(false));
                if joins {
                    i += 1;
                    col += 1;
                } else {
                    break;
                }
            }
            toks.push(token(TokenKind::Number, &source[s..i], tline, tcol));
            continue;
        }
        // Identifier / keyword (including `r#ident` raw identifiers).
        if c.is_ascii_alphabetic() || c == b'_' {
            let s = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
                col += 1;
            }
            toks.push(token(TokenKind::Ident, &source[s..i], tline, tcol));
            continue;
        }
        // Punctuation: longest multi-char operator wins.
        let rest = &source[i..];
        let mc = PUNCTS3
            .iter()
            .chain(PUNCTS2.iter())
            .find(|p| rest.starts_with(**p));
        if let Some(p) = mc {
            toks.push(token(TokenKind::Punct, p, tline, tcol));
            i += p.len();
            col += p.len();
            continue;
        }
        // Single char; consume a whole UTF-8 scalar to stay on char
        // boundaries (non-ASCII outside comments/strings is rare but legal).
        let w = rest.chars().next().map(char::len_utf8).unwrap_or(1);
        toks.push(token(TokenKind::Punct, &source[i..i + w], tline, tcol));
        i += w;
        col += w;
    }
    toks
}

fn token(kind: TokenKind, text: &str, line: usize, col: usize) -> Token {
    Token {
        kind,
        text: text.to_string(),
        line,
        col,
    }
}

// ---------------------------------------------------------------------------
// Item tree
// ---------------------------------------------------------------------------

/// Builds the structural index from the token stream. `ct` holds the
/// indices of non-comment tokens.
fn build_items(tokens: &[Token], ct: &[usize]) -> ItemTree {
    let t = |k: usize| -> &Token { &tokens[ct[k]] };
    let n = ct.len();
    let mut items = ItemTree::default();
    let mut k = 0usize;
    while k < n {
        let tok = t(k);
        if tok.kind != TokenKind::Ident {
            k += 1;
            continue;
        }
        match tok.text.as_str() {
            "fn" => {
                if let Some(f) = parse_fn(tokens, ct, k) {
                    items.fns.push(f);
                }
            }
            "unsafe" => {
                if let Some(r) = parse_unsafe(tokens, ct, k) {
                    items.unsafe_regions.push(r);
                }
            }
            "enum" => {
                if let Some(e) = parse_enum(tokens, ct, k) {
                    items.enums.push(e);
                }
            }
            "impl" => {
                if let Some(im) = parse_impl(tokens, ct, k) {
                    items.impls.push(im);
                }
            }
            "mod" => {
                if let Some(m) = parse_mod(tokens, ct, k) {
                    items.mods.push(m);
                }
            }
            _ => {}
        }
        k += 1;
    }
    items
}

/// Position of the `}` matching the `{` at code-token position `open`.
fn ct_matching_brace(tokens: &[Token], ct: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (off, idx) in ct[open..].iter().enumerate() {
        match tokens[*idx].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses the `fn` item whose keyword sits at code-token position `k`.
fn parse_fn(tokens: &[Token], ct: &[usize], k: usize) -> Option<FnItem> {
    let t = |p: usize| -> &Token { &tokens[ct[p]] };
    let n = ct.len();
    // `fn(` is a function-pointer type, not an item.
    if k + 1 >= n || t(k + 1).kind != TokenKind::Ident {
        return None;
    }
    let name_tok = t(k + 1);
    let name = name_tok.text.clone();
    let (is_unsafe, has_target_feature) = fn_prefix_facts(tokens, ct, k);
    // Scan to the body `{` (paren/bracket depth 0) or a `;` (no body).
    let mut pd = 0usize;
    let mut bd = 0usize;
    let mut header = String::new();
    let mut body_open: Option<usize> = None;
    let mut end_line = name_tok.line;
    let mut p = k;
    while p < n {
        let tok = t(p);
        match tok.text.as_str() {
            "(" => pd += 1,
            ")" => pd = pd.saturating_sub(1),
            "[" => bd += 1,
            "]" => bd = bd.saturating_sub(1),
            "{" if pd == 0 && bd == 0 => {
                body_open = Some(p);
                break;
            }
            ";" if pd == 0 && bd == 0 => {
                end_line = tok.line;
                break;
            }
            _ => {}
        }
        if !header.is_empty() {
            header.push(' ');
        }
        header.push_str(&tok.text);
        p += 1;
    }
    let body = body_open.and_then(|open| {
        ct_matching_brace(tokens, ct, open).map(|close| {
            end_line = t(close).line;
            (open, close)
        })
    });
    let takes_mut_self = header_takes_mut_self(tokens, ct, k, body_open.unwrap_or(p));
    Some(FnItem {
        name,
        start: t(k).line,
        end: end_line,
        header,
        body,
        is_unsafe,
        has_target_feature,
        takes_mut_self,
    })
}

/// Looks backward from the `fn` keyword over modifiers (`pub`, `const`,
/// `async`, `extern "C"`, `unsafe`, `pub(crate)`) and attribute groups
/// to collect declared-`unsafe` and `#[target_feature]` facts.
fn fn_prefix_facts(tokens: &[Token], ct: &[usize], k_fn: usize) -> (bool, bool) {
    let t = |p: usize| -> &Token { &tokens[ct[p]] };
    let mut is_unsafe = false;
    let mut target_feature = false;
    let mut k = k_fn;
    while k > 0 {
        let p = k - 1;
        let tok = t(p);
        match (tok.kind, tok.text.as_str()) {
            (TokenKind::Ident, "pub" | "const" | "async" | "extern" | "default") => k = p,
            (TokenKind::Ident, "unsafe") => {
                is_unsafe = true;
                k = p;
            }
            (TokenKind::Str, _) => k = p, // extern "C"
            (TokenKind::Punct, ")") => {
                // `pub(crate)` visibility group: walk back to its `(`.
                let mut depth = 0usize;
                let mut q = p;
                loop {
                    match t(q).text.as_str() {
                        ")" => depth += 1,
                        "(" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if q == 0 {
                        break;
                    }
                    q -= 1;
                }
                if q == 0 && depth != 0 {
                    break;
                }
                k = q;
            }
            (TokenKind::Punct, "]") => {
                // Attribute group: walk back to `[`, expect a `#` before it.
                let mut depth = 0usize;
                let mut q = p;
                loop {
                    match t(q).text.as_str() {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if q == 0 {
                        break;
                    }
                    q -= 1;
                }
                if q == 0 || t(q - 1).text != "#" {
                    break;
                }
                if (q..=p).any(|a| t(a).text == "target_feature") {
                    target_feature = true;
                }
                k = q - 1;
            }
            _ => break,
        }
    }
    (is_unsafe, target_feature)
}

/// True when the header tokens between `fn` and the body contain the
/// receiver `&mut self` (optionally with a lifetime between `&` and
/// `mut`).
fn header_takes_mut_self(tokens: &[Token], ct: &[usize], k_fn: usize, k_end: usize) -> bool {
    let t = |p: usize| -> &Token { &tokens[ct[p]] };
    let hi = k_end.min(ct.len());
    for p in k_fn..hi {
        if t(p).text != "&" {
            continue;
        }
        let mut q = p + 1;
        if q < hi && t(q).kind == TokenKind::Lifetime {
            q += 1;
        }
        if q + 1 < hi && t(q).text == "mut" && t(q + 1).text == "self" {
            return true;
        }
    }
    false
}

/// Parses an `unsafe { … }` block or `unsafe impl`/`unsafe trait`
/// region at code-token position `k` (`unsafe fn` is a [`FnItem`] fact).
fn parse_unsafe(tokens: &[Token], ct: &[usize], k: usize) -> Option<UnsafeRegion> {
    let t = |p: usize| -> &Token { &tokens[ct[p]] };
    let n = ct.len();
    if k + 1 >= n {
        return None;
    }
    let next = t(k + 1);
    let start = t(k).line;
    if next.text == "{" {
        let close = ct_matching_brace(tokens, ct, k + 1)?;
        return Some(UnsafeRegion {
            start,
            end: t(close).line,
            kind: UnsafeKind::Block,
        });
    }
    if next.text == "impl" || next.text == "trait" {
        // Find the region body's `{` then its close.
        let open = (k + 1..n).find(|&p| t(p).text == "{")?;
        let close = ct_matching_brace(tokens, ct, open)?;
        return Some(UnsafeRegion {
            start,
            end: t(close).line,
            kind: UnsafeKind::Impl,
        });
    }
    None
}

/// Parses the enum at code-token position `k`, extracting variant names
/// and their lines.
fn parse_enum(tokens: &[Token], ct: &[usize], k: usize) -> Option<EnumItem> {
    let t = |p: usize| -> &Token { &tokens[ct[p]] };
    let n = ct.len();
    if k + 1 >= n || t(k + 1).kind != TokenKind::Ident {
        return None;
    }
    let name = t(k + 1).text.clone();
    let open = (k + 1..n).find(|&p| t(p).text == "{")?;
    let close = ct_matching_brace(tokens, ct, open)?;
    let mut variants = Vec::new();
    let mut p = open + 1;
    while p < close {
        // Skip attribute groups on the variant.
        if t(p).text == "#" && p + 1 < close && t(p + 1).text == "[" {
            let mut depth = 0usize;
            while p < close {
                match t(p).text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            p += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                p += 1;
            }
            continue;
        }
        if t(p).kind == TokenKind::Ident {
            variants.push((t(p).text.clone(), t(p).line));
            // Skip to the `,` terminating this variant (depth 0 relative
            // to the enum body) or the enum's closing brace.
            let mut depth = 0usize;
            while p < close {
                match t(p).text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth = depth.saturating_sub(1),
                    "," if depth == 0 => {
                        break;
                    }
                    _ => {}
                }
                p += 1;
            }
        }
        p += 1;
    }
    Some(EnumItem {
        name,
        start: t(k).line,
        end: t(close).line,
        variants,
    })
}

/// Parses the impl block at code-token position `k`, naming the type it
/// implements on.
fn parse_impl(tokens: &[Token], ct: &[usize], k: usize) -> Option<ImplItem> {
    let t = |p: usize| -> &Token { &tokens[ct[p]] };
    let n = ct.len();
    let mut p = k + 1;
    // Skip the generic parameter list, honoring `>>` closing two levels.
    if p < n && t(p).text == "<" {
        let mut depth = 0isize;
        while p < n {
            match t(p).text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            p += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    let open = (p..n).find(|&q| {
        let tok = t(q);
        tok.text == "{" || tok.text == ";"
    })?;
    if t(open).text == ";" {
        return None; // `impl Trait for Type;` does not exist; bail safely.
    }
    // The type is after `for` when present, else right after the generics.
    let type_start = (p..open)
        .find(|&q| t(q).text == "for")
        .map(|f| f + 1)
        .unwrap_or(p);
    let mut type_name = None;
    for q in type_start..open {
        let tok = t(q);
        if tok.kind == TokenKind::Ident && !matches!(tok.text.as_str(), "dyn" | "mut" | "const") {
            // Skip path prefixes (`fmt::Display` → `Display`).
            if q + 1 < open && t(q + 1).text == "::" {
                continue;
            }
            type_name = Some(tok.text.clone());
            break;
        }
    }
    let close = ct_matching_brace(tokens, ct, open)?;
    Some(ImplItem {
        type_name: type_name?,
        start: t(k).line,
        end: t(close).line,
    })
}

/// Parses the module declaration at code-token position `k`.
fn parse_mod(tokens: &[Token], ct: &[usize], k: usize) -> Option<ModItem> {
    let t = |p: usize| -> &Token { &tokens[ct[p]] };
    let n = ct.len();
    if k + 2 >= n || t(k + 1).kind != TokenKind::Ident {
        return None;
    }
    let name = t(k + 1).text.clone();
    let start = t(k).line;
    match t(k + 2).text.as_str() {
        ";" => Some(ModItem {
            name,
            start,
            end: t(k + 2).line,
        }),
        "{" => {
            let close = ct_matching_brace(tokens, ct, k + 2)?;
            Some(ModItem {
                name,
                start,
                end: t(close).line,
            })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Pattern-position classification (match arms, let patterns, matches!)
// ---------------------------------------------------------------------------

/// Implements [`SourceFile::path_refs`]: one forward walk over the code
/// tokens tracking, at every position, whether it lies in a match-arm
/// pattern (before the arm's `=>`), a `let`/`if let`/`while let`
/// pattern (before the `=`), or the pattern argument of `matches!`.
fn path_refs_impl(file: &SourceFile, base: &str) -> Vec<PathRef> {
    struct MatchCtx {
        body_depth: usize,
        in_pattern: bool,
    }
    let n = file.ct_len();
    // Pre-compute which `{` positions open a `match` body: the first `{`
    // after the `match` keyword at paren/bracket depth 0.
    let mut match_opens = vec![false; n];
    for k in 0..n {
        let tok = file.ct(k);
        if tok.kind != TokenKind::Ident || tok.text != "match" {
            continue;
        }
        // `.match(…)` method or a path segment cannot follow `.`/`::`.
        if k > 0 && matches!(file.ct(k - 1).text.as_str(), "." | "::") {
            continue;
        }
        let mut pd = 0usize;
        for p in k + 1..n {
            match file.ct(p).text.as_str() {
                "(" | "[" => pd += 1,
                ")" | "]" => pd = pd.saturating_sub(1),
                "{" if pd == 0 => {
                    match_opens[p] = true;
                    break;
                }
                ";" if pd == 0 => break,
                _ => {}
            }
        }
    }

    let mut refs = Vec::new();
    let mut depth = 0usize;
    let mut pdepth = 0usize;
    let mut matches_stack: Vec<MatchCtx> = Vec::new();
    // `let` pattern: Some((brace depth, paren depth)) while active.
    let mut let_pat: Option<(usize, usize)> = None;
    // `matches!(expr, PATTERN)` contexts: (paren depth of the group, armed).
    let mut macro_stack: Vec<(usize, bool)> = Vec::new();

    let mut k = 0usize;
    while k < n {
        let tok = file.ct(k);
        match (tok.kind, tok.text.as_str()) {
            (TokenKind::Punct, "{") => {
                depth += 1;
                if match_opens[k] {
                    matches_stack.push(MatchCtx {
                        body_depth: depth,
                        in_pattern: true,
                    });
                }
            }
            (TokenKind::Punct, "}") => {
                if let Some(top) = matches_stack.last() {
                    if depth == top.body_depth {
                        matches_stack.pop();
                    }
                }
                depth = depth.saturating_sub(1);
                if let Some(top) = matches_stack.last_mut() {
                    if depth == top.body_depth {
                        top.in_pattern = true;
                    }
                }
            }
            (TokenKind::Punct, "(") => pdepth += 1,
            (TokenKind::Punct, ")") => {
                pdepth = pdepth.saturating_sub(1);
                if let Some(&(pd_open, _)) = macro_stack.last() {
                    if pdepth < pd_open {
                        macro_stack.pop();
                    }
                }
            }
            (TokenKind::Punct, "=>") => {
                if let Some(top) = matches_stack.last_mut() {
                    if depth == top.body_depth && pdepth == 0 {
                        top.in_pattern = false;
                    }
                }
            }
            (TokenKind::Punct, ",") => {
                if let Some(top) = matches_stack.last_mut() {
                    if depth == top.body_depth && pdepth == 0 {
                        top.in_pattern = true;
                    }
                }
                if let Some((pd_open, armed)) = macro_stack.last_mut() {
                    if pdepth == *pd_open {
                        *armed = true;
                    }
                }
            }
            (TokenKind::Ident, "let") => {
                let_pat = Some((depth, pdepth));
            }
            (TokenKind::Punct, "=" | ":" | ";") => {
                if let Some((bd, pd)) = let_pat {
                    if depth == bd && pdepth == pd {
                        let_pat = None;
                    }
                }
            }
            (TokenKind::Ident, "matches") => {
                if k + 2 < n && file.ct(k + 1).text == "!" && file.ct(k + 2).text == "(" {
                    macro_stack.push((pdepth + 1, false));
                }
            }
            (TokenKind::Ident, name) if name == base => {
                if k + 2 < n
                    && file.ct(k + 1).text == "::"
                    && file.ct(k + 2).kind == TokenKind::Ident
                {
                    let seg = &file.ct(k + 2).text;
                    if seg.chars().next().map(char::is_uppercase).unwrap_or(false) {
                        let pattern = matches_stack.last().map(|m| m.in_pattern).unwrap_or(false)
                            || let_pat.is_some()
                            || macro_stack.last().map(|&(_, armed)| armed).unwrap_or(false);
                        let line = tok.line;
                        refs.push(PathRef {
                            variant: seg.clone(),
                            line,
                            pattern,
                            test: file.is_test.get(line).copied().unwrap_or(false),
                        });
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    refs
}

// ---------------------------------------------------------------------------
// Line views (code blanking, cfg(test) regions)
// ---------------------------------------------------------------------------

/// Replaces comments and string/char literal contents with spaces,
/// preserving line structure and column positions.
fn blank_non_code(source: &str) -> String {
    let b = source.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and byte-raw) string literal: r"..." / r#"..."# / br#"..."#.
        if let Some(skip) = raw_string_len(b, i) {
            for k in 0..skip {
                out.push(if b[i + k] == b'\n' { b'\n' } else { b' ' });
            }
            i += skip;
            continue;
        }
        // Plain or byte string literal.
        if c == b'"' || (c == b'b' && b.get(i + 1) == Some(&b'"') && !prev_is_ident(b, i)) {
            if c == b'b' {
                out.push(b' ');
                i += 1;
            }
            out.push(b' '); // opening quote
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    // An escaped newline (string continuation) must keep
                    // the line structure intact.
                    out.push(b' ');
                    out.push(if b[i + 1] == b'\n' { b'\n' } else { b' ' });
                    i += 2;
                } else if b[i] == b'"' {
                    out.push(b' ');
                    i += 1;
                    break;
                } else {
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: 'x' or '\n' is a literal; 'a (no
        // closing quote right after) is a lifetime and stays as code.
        if c == b'\'' && !prev_is_ident(b, i) {
            let is_char = match b.get(i + 1) {
                Some(b'\\') => true,
                Some(_) => b.get(i + 2) == Some(&b'\''),
                None => false,
            };
            if is_char {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'\'' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    // The scanner only ever sees ASCII-relevant tokens; non-ASCII bytes
    // pass through untouched, so this round-trips valid UTF-8.
    String::from_utf8_lossy(&out).into_owned()
}

/// If a raw string literal starts at `i`, returns its total byte length.
fn raw_string_len(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if b.get(j) == Some(&b'b') {
        j += 1;
    }
    if b.get(j) != Some(&b'r') || prev_is_ident(b, i) {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    // Find closing `"` followed by `hashes` hash marks.
    while j < b.len() {
        if b[j] == b'"'
            && b[j + 1..].len() >= hashes
            && b[j + 1..j + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return Some(j + 1 + hashes - i);
        }
        j += 1;
    }
    Some(b.len() - i)
}

/// True when the byte before `i` continues an identifier (so `r`/`b`
/// here is the tail of a name, not a literal prefix).
fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// Marks every line belonging to a `#[cfg(test)]` item (attribute line
/// through the matching close brace, or the terminating `;` for
/// braceless items).
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut is_test = vec![false; code.len()];
    let mut line = 0;
    while line < code.len() {
        if let Some(col) = code[line].find("#[cfg(test)]") {
            let end = item_end(code, line, col);
            for t in is_test.iter_mut().take(end + 1).skip(line) {
                *t = true;
            }
            line = end + 1;
        } else {
            line += 1;
        }
    }
    is_test
}

/// Finds the last line of the item starting at (`line`, `col`): scans
/// forward for either a `;` at brace depth 0 (braceless item) or the
/// close of the first `{`.
fn item_end(code: &[String], line: usize, col: usize) -> usize {
    let mut depth = 0usize;
    let mut seen_brace = false;
    let mut l = line;
    let mut c = col;
    while l < code.len() {
        let bytes = code[l].as_bytes();
        while c < bytes.len() {
            match bytes[c] {
                b'{' => {
                    depth += 1;
                    seen_brace = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if seen_brace && depth == 0 {
                        return l;
                    }
                }
                b';' if !seen_brace => {
                    // Skip the attribute's own `]` line; a `;` before any
                    // brace ends a braceless item like `#[cfg(test)] use x;`.
                    return l;
                }
                _ => {}
            }
            c += 1;
        }
        l += 1;
        c = 0;
    }
    code.len() - 1
}

// ---------------------------------------------------------------------------
// Back-compat line helpers (passes still use these for word-level facts)
// ---------------------------------------------------------------------------

/// A function item's extent in a file (0-based, inclusive lines).
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub start: usize,
    /// Line of the body's closing brace.
    pub end: usize,
    /// Header text from `fn` through the opening brace (signature).
    pub header: String,
}

/// Extracts every `fn` item span, now derived from the token-built item
/// tree. Nested functions stay inside their parent's span; the parent is
/// listed first.
pub fn fn_spans(file: &SourceFile) -> Vec<FnSpan> {
    file.items
        .fns
        .iter()
        .filter(|f| f.body.is_some())
        .map(|f| FnSpan {
            name: f.name.clone(),
            start: f.start,
            end: f.end,
            header: f.header.clone(),
        })
        .collect()
}

/// Position of the brace matching the `{` at (`line`, `col`).
pub fn matching_brace(code: &[String], line: usize, col: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    let (mut l, mut c) = (line, col);
    while l < code.len() {
        let bytes = code[l].as_bytes();
        while c < bytes.len() {
            match bytes[c] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((l, c));
                    }
                }
                _ => {}
            }
            c += 1;
        }
        l += 1;
        c = 0;
    }
    None
}

/// All identifier tokens in a code line.
pub fn identifiers(line: &str) -> Vec<&str> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i].is_ascii_alphabetic() || b[i] == b'_' {
            let s = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(&line[s..i]);
        } else {
            i += 1;
        }
    }
    out
}

/// True when `token` appears in `line` as a whole word (not as a
/// fragment of a longer identifier).
pub fn has_word(line: &str, token: &str) -> bool {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(token) {
        let i = from + pos;
        let j = i + token.len();
        let before_ok = i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
        let after_ok = j >= b.len() || !(b[j].is_ascii_alphanumeric() || b[j] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = j;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings() {
        let f = SourceFile::from_source(
            "t.rs",
            "let x = \"a.unwrap()\"; // .expect(\nlet y = 1; /* panic! */ let z = 2;\n",
        );
        assert!(!f.code[0].contains("unwrap"));
        assert!(!f.code[0].contains("expect"));
        assert!(f.code[0].contains("let x ="));
        assert!(!f.code[1].contains("panic"));
        assert!(f.code[1].contains("let z = 2;"));
        assert_eq!(f.code[0].len(), f.raw[0].len());
    }

    #[test]
    fn raw_strings_and_chars_blank_lifetimes_survive() {
        let f = SourceFile::from_source(
            "t.rs",
            "let s = r#\"no .unwrap() here\"#;\nlet c = '\\n'; fn f<'a>(x: &'a str) {}\n",
        );
        assert!(!f.code[0].contains("unwrap"));
        assert!(f.code[1].contains("'a"));
        // The token stream agrees: the raw string is one Str token, the
        // lifetime is a Lifetime token, the char literal a Char token.
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text.starts_with("r#")));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "'\\n'"));
    }

    #[test]
    fn cfg_test_regions_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::from_source("t.rs", src);
        assert_eq!(f.is_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() {\n    inner();\n}\n\nfn b(x: u8) -> u8 {\n    x\n}\n";
        let f = SourceFile::from_source("t.rs", src);
        let spans = fn_spans(&f);
        assert_eq!(spans.len(), 2);
        assert_eq!(
            (spans[0].name.as_str(), spans[0].start, spans[0].end),
            ("a", 0, 2)
        );
        assert_eq!(
            (spans[1].name.as_str(), spans[1].start, spans[1].end),
            ("b", 4, 6)
        );
    }

    #[test]
    fn word_matching_is_bounded() {
        assert!(has_word("let weights = x;", "weights"));
        assert!(!has_word("let raw_weights = x;", "weights"));
        assert!(!has_word("weightsum", "weights"));
    }

    #[test]
    fn lexer_spans_and_multichar_puncts() {
        let toks = tokenize("a += b::c;\nx => y..=z\n");
        let texts: Vec<(&str, usize)> = toks.iter().map(|t| (t.text.as_str(), t.line)).collect();
        assert_eq!(
            texts,
            vec![
                ("a", 0),
                ("+=", 0),
                ("b", 0),
                ("::", 0),
                ("c", 0),
                (";", 0),
                ("x", 1),
                ("=>", 1),
                ("y", 1),
                ("..=", 1),
                ("z", 1),
            ]
        );
        assert_eq!(toks[1].col, 2);
    }

    #[test]
    fn lexer_numbers_and_doc_comments() {
        let toks = tokenize("/// doc\n// plain\nlet x = 1.0 / 2; let r = 0..n; let e = 1e-3;\n");
        assert_eq!(toks[0].kind, TokenKind::DocComment);
        assert_eq!(toks[1].kind, TokenKind::Comment);
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1.0", "2", "0", "1e-3"]);
        assert!(toks.iter().any(|t| t.text == ".."));
    }

    #[test]
    fn item_tree_fn_facts() {
        let src = "\
#[target_feature(enable = \"avx2\")]\n\
pub(crate) unsafe fn k(&mut self, v: &[f32]) {\n\
    body();\n\
}\n\
fn plain(x: u8) -> u8 { x }\n\
fn decl(x: u8) -> u8;\n";
        let f = SourceFile::from_source("t.rs", src);
        assert_eq!(f.items.fns.len(), 3);
        let k = &f.items.fns[0];
        assert_eq!(k.name, "k");
        assert!(k.is_unsafe && k.has_target_feature && k.takes_mut_self);
        assert_eq!((k.start, k.end), (1, 3));
        let plain = &f.items.fns[1];
        assert!(!plain.is_unsafe && !plain.has_target_feature && !plain.takes_mut_self);
        assert!(plain.body.is_some());
        assert!(f.items.fns[2].body.is_none());
    }

    #[test]
    fn item_tree_unsafe_enum_impl_mod() {
        let src = "\
mod inner {\n\
    pub enum Ev {\n\
        A,\n\
        B { n: usize },\n\
        C(u8),\n\
    }\n\
}\n\
impl fmt::Display for Ev {\n\
    fn fmt(&self) {}\n\
}\n\
fn f() {\n\
    unsafe { raw() }\n\
}\n";
        let f = SourceFile::from_source("t.rs", src);
        assert_eq!(f.items.mods.len(), 1);
        assert_eq!(f.items.mods[0].name, "inner");
        assert_eq!(f.items.enums.len(), 1);
        let vars: Vec<&str> = f.items.enums[0]
            .variants
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(vars, vec!["A", "B", "C"]);
        assert_eq!(f.items.impls.len(), 1);
        assert_eq!(f.items.impls[0].type_name, "Ev");
        assert_eq!(f.items.unsafe_regions.len(), 1);
        assert_eq!(f.items.unsafe_regions[0].kind, UnsafeKind::Block);
        assert_eq!(f.items.unsafe_regions[0].start, 11);
    }

    #[test]
    fn path_refs_classify_pattern_vs_expression() {
        let src = "\
fn emit(sink: &S) {\n\
    sink.record(Ev::Made { n: 1 });\n\
}\n\
fn check(e: &Ev) -> bool {\n\
    match e {\n\
        Ev::Made { n, .. } => *n > 0,\n\
        Ev::Other(_) if true => false,\n\
        _ => matches!(e, Ev::Third { .. }),\n\
    }\n\
}\n\
fn take(e: Ev) {\n\
    if let Ev::Made { n, .. } = e {\n\
        let _ = n;\n\
    }\n\
}\n\
/// Doc prose about [`Ev::Ignored`].\n\
fn doc_mention() {}\n";
        let f = SourceFile::from_source("t.rs", src);
        let refs = f.path_refs("Ev");
        let by = |v: &str| -> Vec<bool> {
            refs.iter()
                .filter(|r| r.variant == v)
                .map(|r| r.pattern)
                .collect()
        };
        assert_eq!(by("Made"), vec![false, true, true]); // emit, match arm, if-let
        assert_eq!(by("Other"), vec![true]);
        assert_eq!(by("Third"), vec![true]); // matches! pattern arg
        assert!(by("Ignored").is_empty(), "doc comments are not code");
    }

    #[test]
    fn path_refs_expression_after_arrow_is_not_pattern() {
        let src = "\
fn rewrite(e: Ev) -> Ev {\n\
    match e {\n\
        Ev::A => Ev::B,\n\
        other => other,\n\
    }\n\
}\n";
        let f = SourceFile::from_source("t.rs", src);
        let refs = f.path_refs("Ev");
        assert_eq!(refs.len(), 2);
        assert!(refs[0].pattern, "arm pattern");
        assert!(!refs[1].pattern, "arm body is expression position");
    }
}
