//! Criterion micro-benchmarks for the performance-critical primitives:
//! the threaded ring all-reduce, controller group formation, dynamic
//! weight generation, sync-graph connectivity, the GEMM kernel, and one
//! fully-simulated P-Reduce iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::thread;

use partial_reduce::{
    dynamic_weights, expected_sync_matrix_uniform, spectral_gap, Controller, ControllerConfig,
    GapPolicy, SyncGraph,
};
use preduce_comm::collectives::ring_allreduce;
use preduce_comm::control::{ControlPlane, WorkerControlPlane};
use preduce_comm::CommWorld;
use preduce_tensor::{matmul, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor/matmul");
    for n in [32usize, 128] {
        let a = Tensor::full([n, n], 1.5);
        let b = Tensor::full([n, n], 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    group.finish();
}

fn bench_ring_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm/ring_allreduce");
    group.sample_size(20);
    for &(n, dim) in &[(4usize, 65_536usize), (8, 65_536)] {
        group.bench_with_input(
            BenchmarkId::new("threads", format!("n{n}_d{dim}")),
            &(n, dim),
            |bch, &(n, dim)| {
                bch.iter(|| {
                    let eps = CommWorld::new(n).into_endpoints();
                    let all: Vec<usize> = (0..n).collect();
                    let handles: Vec<_> = eps
                        .into_iter()
                        .map(|mut ep| {
                            let group = all.clone();
                            thread::spawn(move || {
                                let mut data = vec![1.0f32; dim];
                                ring_allreduce(&mut ep, &group, 0, &mut data).expect("allreduce");
                                data[0]
                            })
                        })
                        .collect();
                    for h in handles {
                        let _ = h.join().expect("thread");
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_controller(c: &mut Criterion) {
    c.bench_function("controller/group_formation_n64_p4", |b| {
        b.iter(|| {
            let mut ctl = Controller::new(ControllerConfig::constant(64, 4));
            let mut formed = 0u64;
            // Respect the signal protocol: a worker re-signals only after
            // it was grouped (frozen-avoidance deferrals hold signals
            // across rounds).
            let mut free = [true; 64];
            for round in 0..8u64 {
                for (w, f) in free.iter_mut().enumerate() {
                    if *f {
                        ctl.push_ready(w, round);
                        *f = false;
                    }
                }
                while let Some(d) = ctl.try_form_group() {
                    formed += 1;
                    for &m in &d.group {
                        free[m] = true;
                    }
                }
            }
            std::hint::black_box(formed)
        })
    });
}

fn bench_dynamic_weights(c: &mut Criterion) {
    let iterations: Vec<u64> = (0..16).map(|i| 1000 - (i * i) as u64 % 60).collect();
    c.bench_function("weights/dynamic_p16", |b| {
        b.iter(|| dynamic_weights(std::hint::black_box(&iterations), 0.5, GapPolicy::Initial))
    });
}

fn bench_sync_graph(c: &mut Criterion) {
    c.bench_function("graph/connectivity_n128", |b| {
        let mut g = SyncGraph::new(128);
        for i in 0..127 {
            g.add_group(&[i, i + 1]);
        }
        b.iter(|| std::hint::black_box(&g).is_connected())
    });
}

fn bench_spectral(c: &mut Criterion) {
    c.bench_function("spectral/rho_n32", |b| {
        let w = expected_sync_matrix_uniform(32, 4);
        b.iter(|| spectral_gap(std::hint::black_box(&w)).expect("symmetric"))
    });
}

fn bench_sim_iteration(c: &mut Criterion) {
    use preduce_data::cifar10_like;
    use preduce_models::zoo;
    use preduce_trainer::{run_experiment, ExperimentConfig, Strategy};

    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("preduce_100_updates_n8_p3", |b| {
        b.iter(|| {
            let mut cfg = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 2);
            cfg.max_updates = 100;
            cfg.eval_every = 100;
            cfg.threshold = 0.999;
            run_experiment(
                Strategy::PReduce {
                    p: 3,
                    dynamic: true,
                },
                std::hint::black_box(&cfg),
            )
        })
    });
    g.finish();
}

fn bench_tcp_control(c: &mut Criterion) {
    use preduce_comm::control::{GroupAssignment, WorkerSignal};
    use preduce_comm::tcp::{accept_workers, bind_controller, TcpWorkerLink};
    use std::time::Duration;

    // One persistent loopback connection; measure a full signal →
    // assignment round trip (the per-iteration control overhead of the
    // paper's prototype).
    let (listener, addr) = bind_controller("127.0.0.1:0");
    let worker = thread::spawn(move || TcpWorkerLink::connect(addr, 0));
    let mut ctl = accept_workers(&listener, 1).expect("handshake");
    let mut link = worker.join().unwrap().expect("connect");

    c.bench_function("tcp/signal_assignment_roundtrip", |b| {
        b.iter(|| {
            link.send_ready(1).expect("send");
            match ctl.recv_signal(Duration::from_secs(5)).expect("recv") {
                WorkerSignal::Ready { worker, .. } => {
                    ctl.send_assignment(
                        worker,
                        GroupAssignment {
                            group: vec![worker],
                            weights: vec![1.0],
                            base_tag: 0,
                            new_iteration: 1,
                        },
                    )
                    .expect("assign");
                }
                other => panic!("unexpected {other:?}"),
            }
            std::hint::black_box(link.recv_assignment(Duration::from_secs(5)).expect("recv"))
        })
    });
}

fn bench_model_forward_backward(c: &mut Criterion) {
    use preduce_models::{softmax_cross_entropy, NetworkSpec};
    let mut net = NetworkSpec::mlp(64, &[128, 64], 10).build(0);
    let x = Tensor::full([8, 64], 0.3);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    c.bench_function("models/fwd_bwd_batch8_mlp128x64", |b| {
        b.iter(|| {
            net.zero_grads();
            let logits = net.forward(std::hint::black_box(&x));
            let loss = softmax_cross_entropy(&logits, &labels);
            net.backward(&loss.grad);
            std::hint::black_box(net.grad_vector())
        })
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_ring_allreduce,
    bench_controller,
    bench_dynamic_weights,
    bench_sync_graph,
    bench_spectral,
    bench_sim_iteration,
    bench_tcp_control,
    bench_model_forward_backward,
);
criterion_main!(benches);
