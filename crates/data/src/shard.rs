//! Data sharding across workers (§4 of the paper: each worker handles a
//! subset of the training data).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// How examples are assigned to worker shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardStrategy {
    /// Contiguous blocks in dataset order. Matches a naive HDFS block split;
    /// shards can be class-skewed if the dataset is ordered.
    Contiguous,
    /// Round-robin assignment (`i % n_shards`).
    RoundRobin,
    /// A seeded global shuffle followed by contiguous blocks — the
    /// "shuffle the local data among workers" setup the paper's unbiasedness
    /// assumption (Assumption 1.2) relies on. This is the default used by the
    /// experiments.
    Shuffled {
        /// Shuffle seed.
        seed: u64,
    },
    /// Sort by label, then contiguous blocks: maximally **non-IID** shards
    /// (each worker sees only a slice of the classes). Violates
    /// Assumption 1.2 on purpose — used to study what schedule isolation
    /// (frozen groups) costs when shards genuinely differ.
    ByLabel,
    /// Assignment through a seeded bounded-load consistent-hash ring
    /// ([`crate::consistent_hash::HashRing`], DESIGN.md §14): example `i`
    /// goes to the owner of key `i`, capped at 1.2× the uniform share.
    /// Unlike the block strategies, ownership barely changes when the
    /// worker set does — churn relocates only the departed/joined
    /// worker's keys — which is what elastic restore relies on. Shard
    /// sizes vary within the 1.2× balance bound instead of ±1.
    ConsistentHash {
        /// Ring seed, shared fleet-wide so every process computes the
        /// same assignment without coordination.
        seed: u64,
    },
}

/// Splits `dataset` into `n_shards` near-equal shards.
///
/// Shard sizes differ by at most one example; every example is assigned to
/// exactly one shard.
///
/// # Panics
/// Panics if `n_shards == 0` or `n_shards > dataset.len()`.
pub fn shard_dataset(dataset: &Dataset, n_shards: usize, strategy: ShardStrategy) -> Vec<Dataset> {
    assert!(n_shards > 0, "need at least one shard");
    assert!(
        n_shards <= dataset.len(),
        "more shards ({n_shards}) than examples ({})",
        dataset.len()
    );

    let n = dataset.len();
    if let ShardStrategy::ConsistentHash { seed } = strategy {
        return shard_by_ring(dataset, n_shards, seed);
    }
    let order: Vec<usize> = match strategy {
        ShardStrategy::Contiguous => (0..n).collect(),
        ShardStrategy::RoundRobin => {
            // Sorting by (i % n_shards, i) groups round-robin assignments.
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by_key(|&i| (i % n_shards, i));
            idx
        }
        ShardStrategy::Shuffled { seed } => {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
            idx
        }
        ShardStrategy::ByLabel => {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by_key(|&i| (dataset.labels()[i], i));
            idx
        }
        ShardStrategy::ConsistentHash { .. } => unreachable!("handled above"),
    };

    // Cut `order` into n_shards near-equal contiguous runs.
    let base = n / n_shards;
    let extra = n % n_shards;
    let mut shards = Vec::with_capacity(n_shards);
    let mut start = 0;
    for s in 0..n_shards {
        let size = base + usize::from(s < extra);
        shards.push(dataset.subset(&order[start..start + size]));
        start += size;
    }
    shards
}

/// Ring-based sharding: example `i` goes to the bounded-load owner of
/// key `i`. Within each shard, examples keep dataset order.
fn shard_by_ring(dataset: &Dataset, n_shards: usize, seed: u64) -> Vec<Dataset> {
    let ring = crate::consistent_hash::HashRing::uniform(n_shards, seed);
    let owners = ring.assign_balanced(dataset.len(), crate::consistent_hash::BALANCE_FACTOR);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
    for (i, &owner) in owners.iter().enumerate() {
        members[owner].push(i);
    }
    members
        .iter()
        .map(|idx| {
            assert!(
                !idx.is_empty(),
                "consistent-hash shard came up empty: dataset of {} examples is too \
                 small for {n_shards} bounded-load shards",
                dataset.len()
            );
            dataset.subset(idx)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use preduce_tensor::Tensor;

    fn toy(n: usize) -> Dataset {
        let features = Tensor::from_vec((0..n).map(|i| i as f32).collect(), [n, 1]).unwrap();
        let labels = (0..n).map(|i| i % 2).collect();
        Dataset::new(features, labels, 2)
    }

    #[test]
    fn contiguous_blocks() {
        let shards = shard_dataset(&toy(10), 3, ShardStrategy::Contiguous);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].len(), 4); // 10 = 4 + 3 + 3
        assert_eq!(shards[1].len(), 3);
        assert_eq!(shards[2].len(), 3);
        assert_eq!(shards[0].features().row(0), &[0.0]);
        assert_eq!(shards[1].features().row(0), &[4.0]);
    }

    #[test]
    fn round_robin_interleaves() {
        let shards = shard_dataset(&toy(6), 2, ShardStrategy::RoundRobin);
        let vals: Vec<f32> = (0..3).map(|i| shards[0].features().row(i)[0]).collect();
        assert_eq!(vals, vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn shuffled_partitions_everything_exactly_once() {
        let ds = toy(11);
        let shards = shard_dataset(&ds, 4, ShardStrategy::Shuffled { seed: 9 });
        let mut seen: Vec<f32> = shards
            .iter()
            .flat_map(|s| (0..s.len()).map(|i| s.features().row(i)[0]))
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f32> = (0..11).map(|i| i as f32).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn shuffled_is_seed_deterministic() {
        let ds = toy(20);
        let a = shard_dataset(&ds, 3, ShardStrategy::Shuffled { seed: 1 });
        let b = shard_dataset(&ds, 3, ShardStrategy::Shuffled { seed: 1 });
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.features(), y.features());
        }
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let shards = shard_dataset(&toy(17), 5, ShardStrategy::Shuffled { seed: 0 });
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
        assert_eq!(sizes.iter().sum::<usize>(), 17);
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn rejects_too_many_shards() {
        shard_dataset(&toy(2), 3, ShardStrategy::Contiguous);
    }

    #[test]
    fn consistent_hash_partitions_everything_exactly_once() {
        let ds = toy(256);
        let shards = shard_dataset(&ds, 4, ShardStrategy::ConsistentHash { seed: 13 });
        assert_eq!(shards.len(), 4);
        let mut seen: Vec<f32> = shards
            .iter()
            .flat_map(|s| (0..s.len()).map(|i| s.features().row(i)[0]))
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f32> = (0..256).map(|i| i as f32).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn consistent_hash_is_seed_deterministic_and_balanced() {
        let ds = toy(1000);
        let a = shard_dataset(&ds, 8, ShardStrategy::ConsistentHash { seed: 5 });
        let b = shard_dataset(&ds, 8, ShardStrategy::ConsistentHash { seed: 5 });
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.features(), y.features());
        }
        let cap = (1.2 * 1000.0 / 8.0).ceil() as usize;
        assert!(a.iter().all(|s| s.len() <= cap && !s.is_empty()));
    }

    #[test]
    fn by_label_concentrates_classes() {
        // toy(10): labels alternate 0,1. ByLabel puts all 0s in the first
        // shard, all 1s in the second.
        let shards = shard_dataset(&toy(10), 2, ShardStrategy::ByLabel);
        assert!(shards[0].labels().iter().all(|&y| y == 0));
        assert!(shards[1].labels().iter().all(|&y| y == 1));
    }
}
