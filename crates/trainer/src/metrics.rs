//! Run metrics: the paper's three-way decomposition of end-to-end
//! performance (§5.2) plus the convergence trace behind Figs. 7 and 10.

use serde::{Deserialize, Serialize};

/// One point on a convergence curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Virtual time (seconds since training start).
    pub time: f64,
    /// Updates performed so far.
    pub updates: u64,
    /// Test accuracy of the worker-averaged model.
    pub accuracy: f64,
    /// Squared gradient norm `‖∇F(u_k)‖²` of the averaged model over the
    /// held-out set — the quantity Theorem 1 bounds. Populated only when
    /// `ExperimentConfig::track_grad_norm` is set.
    #[serde(default)]
    pub grad_norm_sq: Option<f64>,
}

/// The result of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Strategy label (e.g. `"P-Reduce CON (P=3)"`).
    pub strategy: String,
    /// Virtual run time in seconds (to convergence, or to the cap).
    pub run_time: f64,
    /// Number of updates (the paper's unit: one All-Reduce round, one PS
    /// push, one gossip exchange, or one partial-reduce group operation).
    pub updates: u64,
    /// Whether the threshold was reached before the update cap.
    pub converged: bool,
    /// Final test accuracy of the averaged model.
    pub final_accuracy: f64,
    /// The convergence trace (sampled every `eval_every` updates).
    pub trace: Vec<TracePoint>,
    /// Sampled per-update wall times (for the Fig. 9 distribution);
    /// capped in length by the driver.
    pub per_update_samples: Vec<f64>,
    /// Driver-specific diagnostics (e.g. P-Reduce's repair count or the
    /// fraction of groups with non-uniform weights).
    #[serde(default)]
    pub stats: std::collections::BTreeMap<String, f64>,
}

impl RunResult {
    /// Average time per update — the paper's hardware-efficiency metric.
    pub fn per_update_time(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.run_time / self.updates as f64
        }
    }

    /// The first and last trace points, or `None` for an empty trace
    /// (threaded-backend runs and sim runs shorter than one eval
    /// interval record no trace points).
    pub fn trace_endpoints(&self) -> Option<(&TracePoint, &TracePoint)> {
        Some((self.trace.first()?, self.trace.last()?))
    }

    /// The first trace point at or above `threshold`, if any.
    pub fn time_to_accuracy(&self, threshold: f64) -> Option<f64> {
        self.trace
            .iter()
            .find(|p| p.accuracy >= threshold)
            .map(|p| p.time)
    }

    /// Percentile of the per-update samples (`q ∈ [0, 1]`); `None` when no
    /// samples were recorded.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn per_update_percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.per_update_samples.is_empty() {
            return None;
        }
        let mut s = self.per_update_samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let idx = ((s.len() - 1) as f64 * q).round() as usize;
        Some(s[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        RunResult {
            strategy: "test".into(),
            run_time: 100.0,
            updates: 50,
            converged: true,
            final_accuracy: 0.91,
            trace: vec![
                TracePoint {
                    time: 10.0,
                    updates: 5,
                    accuracy: 0.5,
                    grad_norm_sq: None,
                },
                TracePoint {
                    time: 60.0,
                    updates: 30,
                    accuracy: 0.85,
                    grad_norm_sq: None,
                },
                TracePoint {
                    time: 100.0,
                    updates: 50,
                    accuracy: 0.91,
                    grad_norm_sq: Some(0.01),
                },
            ],
            per_update_samples: vec![2.0, 1.0, 4.0, 3.0],
            stats: Default::default(),
        }
    }

    #[test]
    fn per_update_time_is_ratio() {
        assert_eq!(result().per_update_time(), 2.0);
        let empty = RunResult {
            updates: 0,
            ..result()
        };
        assert_eq!(empty.per_update_time(), 0.0);
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let r = result();
        assert_eq!(r.time_to_accuracy(0.8), Some(60.0));
        assert_eq!(r.time_to_accuracy(0.5), Some(10.0));
        assert_eq!(r.time_to_accuracy(0.99), None);
    }

    #[test]
    fn percentiles() {
        let r = result();
        assert_eq!(r.per_update_percentile(0.0), Some(1.0));
        assert_eq!(r.per_update_percentile(1.0), Some(4.0));
        assert_eq!(r.per_update_percentile(0.5), Some(3.0));
        let empty = RunResult {
            per_update_samples: vec![],
            ..result()
        };
        assert_eq!(empty.per_update_percentile(0.5), None);
    }

    #[test]
    fn trace_endpoints_handle_empty_traces() {
        let r = result();
        let (first, last) = r.trace_endpoints().expect("non-empty trace");
        assert_eq!(first.accuracy, 0.5);
        assert_eq!(last.accuracy, 0.91);
        let empty = RunResult {
            trace: vec![],
            ..result()
        };
        assert!(empty.trace_endpoints().is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let r = result();
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.updates, r.updates);
        assert_eq!(back.trace.len(), r.trace.len());
    }
}
