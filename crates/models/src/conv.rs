//! 2-D convolution via im2col + GEMM.
//!
//! Activations flow through the network as rank-2 `[batch, features]`
//! tensors; convolutional layers interpret each row in channel-major order
//! (`offset = c·H·W + y·W + x`) using the spatial metadata carried by the
//! layer itself. This keeps a single activation type throughout while still
//! supporting genuine CNN analogs in the model zoo.

use preduce_tensor::{he_normal, kernels, matmul, matmul_a_bt, matmul_at_b, Tensor};
use rand::Rng;

use crate::layer::Layer;

/// A 2-D convolution layer (`stride`, symmetric zero `padding`).
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    in_h: usize,
    in_w: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// `[out_c, in_c * kernel * kernel]`.
    weight: Tensor,
    /// `[out_c]`.
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    /// Cached `[batch * positions, K]` im2col matrix from the forward pass.
    col: Option<Tensor>,
    /// Batch size of the cached forward pass.
    batch: usize,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal weights and zero bias.
    ///
    /// # Panics
    /// Panics if any dimension is zero, `stride == 0`, or the configured
    /// geometry yields an empty output.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_c: usize,
        in_h: usize,
        in_w: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(
            in_c > 0 && in_h > 0 && in_w > 0 && out_c > 0 && kernel > 0,
            "zero-sized conv dimension"
        );
        assert!(stride > 0, "stride must be positive");
        let (oh, ow) = out_hw(in_h, in_w, kernel, stride, padding);
        assert!(oh > 0 && ow > 0, "conv output is empty for this geometry");
        let fan_in = in_c * kernel * kernel;
        Conv2d {
            in_c,
            in_h,
            in_w,
            out_c,
            kernel,
            stride,
            padding,
            weight: he_normal(rng, [out_c, fan_in], fan_in),
            bias: Tensor::zeros([out_c]),
            grad_weight: Tensor::zeros([out_c, fan_in]),
            grad_bias: Tensor::zeros([out_c]),
            col: None,
            batch: 0,
        }
    }

    /// Output spatial dimensions `(out_h, out_w)`.
    pub fn output_hw(&self) -> (usize, usize) {
        out_hw(self.in_h, self.in_w, self.kernel, self.stride, self.padding)
    }

    /// Output feature count (`out_c · out_h · out_w`).
    pub fn output_features(&self) -> usize {
        let (oh, ow) = self.output_hw();
        self.out_c * oh * ow
    }

    /// Input feature count (`in_c · in_h · in_w`).
    pub fn input_features(&self) -> usize {
        self.in_c * self.in_h * self.in_w
    }

    fn positions(&self) -> usize {
        let (oh, ow) = self.output_hw();
        oh * ow
    }

    /// Builds the `[batch * positions, K]` im2col matrix for `x`.
    fn im2col(&self, x: &Tensor) -> Tensor {
        let (oh, ow) = self.output_hw();
        let positions = oh * ow;
        let k = self.kernel;
        let kk = self.in_c * k * k;
        let batch = x.shape().dim(0);
        let mut col = vec![0.0f32; batch * positions * kk];
        let xs = x.as_slice();
        let row_len = self.input_features();

        for b in 0..batch {
            let xrow = &xs[b * row_len..(b + 1) * row_len];
            for oy in 0..oh {
                for ox in 0..ow {
                    let pos = oy * ow + ox;
                    let base = (b * positions + pos) * kk;
                    for c in 0..self.in_c {
                        for ky in 0..k {
                            let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                            if iy < 0 || iy >= self.in_h as isize {
                                continue; // zero padding
                            }
                            for kx in 0..k {
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if ix < 0 || ix >= self.in_w as isize {
                                    continue;
                                }
                                col[base + c * k * k + ky * k + kx] =
                                    xrow[c * self.in_h * self.in_w
                                        + iy as usize * self.in_w
                                        + ix as usize];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(col, [batch * positions, kk]).expect("im2col volume matches")
    }

    /// Scatter-adds a `[batch * positions, K]` gradient back to input layout.
    fn col2im(&self, dcol: &Tensor, batch: usize) -> Tensor {
        let (oh, ow) = self.output_hw();
        let positions = oh * ow;
        let k = self.kernel;
        let kk = self.in_c * k * k;
        let row_len = self.input_features();
        let mut dx = vec![0.0f32; batch * row_len];
        let ds = dcol.as_slice();

        for b in 0..batch {
            let dxrow = &mut dx[b * row_len..(b + 1) * row_len];
            for oy in 0..oh {
                for ox in 0..ow {
                    let pos = oy * ow + ox;
                    let base = (b * positions + pos) * kk;
                    for c in 0..self.in_c {
                        for ky in 0..k {
                            let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                            if iy < 0 || iy >= self.in_h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if ix < 0 || ix >= self.in_w as isize {
                                    continue;
                                }
                                dxrow[c * self.in_h * self.in_w
                                    + iy as usize * self.in_w
                                    + ix as usize] += ds[base + c * k * k + ky * k + kx];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(dx, [batch, row_len]).expect("col2im volume matches")
    }
}

fn out_hw(
    in_h: usize,
    in_w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> (usize, usize) {
    let oh = (in_h + 2 * padding).saturating_sub(kernel) / stride + 1;
    let ow = (in_w + 2 * padding).saturating_sub(kernel) / stride + 1;
    (oh, ow)
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.shape().dim(1),
            self.input_features(),
            "conv2d expects [batch, {}], got {}",
            self.input_features(),
            x.shape()
        );
        let batch = x.shape().dim(0);
        let positions = self.positions();
        let col = self.im2col(x);

        // [batch*positions, out_c]
        let out = matmul_a_bt(&col, &self.weight);

        // Rearrange to channel-major [batch, out_c * positions] and add bias.
        let mut y = vec![0.0f32; batch * self.out_c * positions];
        let os = out.as_slice();
        for b in 0..batch {
            for pos in 0..positions {
                let src = (b * positions + pos) * self.out_c;
                for c in 0..self.out_c {
                    y[b * self.out_c * positions + c * positions + pos] =
                        os[src + c] + self.bias.as_slice()[c];
                }
            }
        }
        self.col = Some(col);
        self.batch = batch;
        Tensor::from_vec(y, [batch, self.out_c * positions]).expect("conv output volume matches")
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let col = self
            .col
            .take()
            .expect("Conv2d::backward called before forward");
        let batch = self.batch;
        let positions = self.positions();
        assert_eq!(
            grad.shape().dims(),
            &[batch, self.out_c * positions],
            "conv2d backward grad shape mismatch"
        );

        // Rearrange grad to [batch*positions, out_c].
        let gs = grad.as_slice();
        let mut gmat = vec![0.0f32; batch * positions * self.out_c];
        for b in 0..batch {
            for c in 0..self.out_c {
                for pos in 0..positions {
                    gmat[(b * positions + pos) * self.out_c + c] =
                        gs[b * self.out_c * positions + c * positions + pos];
                }
            }
        }
        let gmat =
            Tensor::from_vec(gmat, [batch * positions, self.out_c]).expect("gmat volume matches");

        // dW += gmatᵀ · col : [out_c, K]
        self.grad_weight.add_assign(&matmul_at_b(&gmat, &col));
        // db += column sums of gmat.
        kernels::col_sums_acc(
            self.grad_bias.as_mut_slice(),
            gmat.as_slice(),
            batch * positions,
            self.out_c,
        );
        // dcol = gmat · W : [batch*positions, K], then scatter back.
        let dcol = matmul(&gmat, &self.weight);
        self.col2im(&dcol, batch)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill_zero();
        self.grad_bias.fill_zero();
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0)
    }

    #[test]
    fn output_geometry() {
        let c = Conv2d::new(&mut rng(), 3, 8, 8, 4, 3, 1, 1);
        assert_eq!(c.output_hw(), (8, 8)); // "same" padding
        let c = Conv2d::new(&mut rng(), 3, 8, 8, 4, 3, 2, 1);
        assert_eq!(c.output_hw(), (4, 4));
        let c = Conv2d::new(&mut rng(), 1, 5, 5, 1, 3, 1, 0);
        assert_eq!(c.output_hw(), (3, 3));
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        // 1 channel, 1x1 kernel with weight 1: output == input.
        let mut c = Conv2d::new(&mut rng(), 1, 3, 3, 1, 1, 1, 0);
        c.params_mut()[0].as_mut_slice()[0] = 1.0;
        let x = Tensor::from_vec((0..9).map(|i| i as f32).collect(), [1, 9]).unwrap();
        let y = c.forward(&x);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_3x3_valid_convolution() {
        // Single 2x2 kernel of ones over a 3x3 input: each output is the sum
        // of a 2x2 window.
        let mut c = Conv2d::new(&mut rng(), 1, 3, 3, 1, 2, 1, 0);
        for w in c.params_mut()[0].as_mut_slice() {
            *w = 1.0;
        }
        let x =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], [1, 9]).unwrap();
        let y = c.forward(&x);
        // Windows: [1,2,4,5]=12  [2,3,5,6]=16  [4,5,7,8]=24  [5,6,8,9]=28
        assert_eq!(y.as_slice(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let mut c = Conv2d::new(&mut rng(), 1, 2, 2, 2, 1, 1, 0);
        for w in c.params_mut()[0].as_mut_slice() {
            *w = 0.0;
        }
        c.params_mut()[1]
            .as_mut_slice()
            .copy_from_slice(&[1.5, -2.5]);
        let y = c.forward(&Tensor::zeros([1, 4]));
        assert_eq!(y.as_slice()[..4], [1.5; 4]);
        assert_eq!(y.as_slice()[4..], [-2.5; 4]);
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut c = Conv2d::new(&mut rng(), 2, 4, 4, 3, 3, 1, 1);
        let mut xr = rng();
        use rand::Rng;
        let x = Tensor::from_vec(
            (0..2 * 2 * 16)
                .map(|_| xr.gen_range(-1.0f32..1.0))
                .collect(),
            [2, 32],
        )
        .unwrap();

        let y = c.forward(&x);
        let ones = Tensor::ones(y.shape().clone());
        let _ = c.backward(&ones);
        let analytic = c.grads()[0].clone();

        let eps = 1e-2f32;
        // Spot-check a handful of weights.
        for idx in [0usize, 5, 17, 30, 50] {
            let orig = c.params()[0].as_slice()[idx];
            c.params_mut()[0].as_mut_slice()[idx] = orig + eps;
            let hi: f64 = c.forward(&x).sum();
            c.params_mut()[0].as_mut_slice()[idx] = orig - eps;
            let lo: f64 = c.forward(&x).sum();
            c.params_mut()[0].as_mut_slice()[idx] = orig;
            let numeric = ((hi - lo) / (2.0 * eps as f64)) as f32;
            let a = analytic.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 0.05 * numeric.abs().max(1.0),
                "w[{idx}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut c = Conv2d::new(&mut rng(), 1, 3, 3, 2, 2, 1, 0);
        let mut x = Tensor::from_vec((0..9).map(|i| 0.1 * i as f32).collect(), [1, 9]).unwrap();
        let y = c.forward(&x);
        let dx = c.backward(&Tensor::ones(y.shape().clone()));

        let eps = 1e-2f32;
        for idx in 0..9 {
            let orig = x.as_slice()[idx];
            x.as_mut_slice()[idx] = orig + eps;
            let hi: f64 = c.forward(&x).sum();
            x.as_mut_slice()[idx] = orig - eps;
            let lo: f64 = c.forward(&x).sum();
            x.as_mut_slice()[idx] = orig;
            let numeric = ((hi - lo) / (2.0 * eps as f64)) as f32;
            let a = dx.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 1e-2,
                "x[{idx}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn param_count() {
        let c = Conv2d::new(&mut rng(), 3, 8, 8, 16, 3, 1, 1);
        assert_eq!(c.param_count(), 16 * 3 * 9 + 16);
    }
}
