//! Decentralized gossip strategies: AD-PSGD (asynchronous, the paper's
//! closest decentralized baseline) and D-PSGD (synchronous ring, extension).

use preduce_simnet::{EventQueue, SimTime};
use preduce_tensor::Tensor;
use rand::Rng;

use super::SimHarness;
use crate::metrics::RunResult;

/// AD-PSGD: each worker computes a gradient, then *atomically averages its
/// model with one uniformly-random peer* (regardless of that peer's state),
/// then applies the gradient. The averaged-in peer keeps computing — its
/// in-flight gradient was taken at the pre-average model and lands on the
/// post-average one. That inconsistency is exactly the model-quality issue
/// the paper contrasts P-Reduce against (§5.2.2).
pub fn run_ad_psgd(mut h: SimHarness) -> RunResult {
    let n = h.num_workers();
    assert!(n >= 2, "gossip needs at least two workers");
    let base_comm = h.network.gossip_pair_time(h.bytes);

    // Event payload: worker whose compute finished. The gradient is taken
    // when compute *starts* (pre-averaging model) to reproduce AD-PSGD's
    // inconsistency window.
    let mut queue: EventQueue<usize> = EventQueue::new();
    let mut in_flight: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
    let mut started = vec![SimTime::ZERO; n];
    // AD-PSGD's model averaging is *atomic per worker*: concurrent
    // averaging operations touching the same worker serialize (the
    // algorithm's correctness requires it; [29] §4, and the contention is
    // exactly what Prague [31] later attacks). `comm_free[w]` is when
    // worker w's communication lane is next available.
    let mut comm_free = vec![SimTime::ZERO; n];

    #[allow(clippy::needless_range_loop)] // h.workers and in_flight are
    // indexed in lockstep; an iterator would fight the split borrows.
    for w in 0..n {
        let g = h.workers[w].gradient(&mut h.rng);
        in_flight[w] = Some(g);
        let ct = h.compute_time(w, SimTime::ZERO);
        queue.schedule(SimTime::new(ct), w);
    }

    let mut now = SimTime::ZERO;
    while let Some((t, w)) = queue.pop() {
        // Atomic pairwise model average with a random peer.
        let peer = {
            let r = h.rng.gen_range(0..n - 1);
            if r >= w {
                r + 1
            } else {
                r
            }
        };
        let comm = base_comm * h.link_factor([w, peer]);
        let start = t.max(comm_free[w]).max(comm_free[peer]);
        now = start + comm;
        comm_free[w] = now;
        comm_free[peer] = now;
        let mut avg = h.workers[w].params.clone();
        avg.add_assign(&h.workers[peer].params);
        avg.scale(0.5);
        h.workers[w].set_params(&avg);
        h.workers[peer].set_params(&avg);

        // Apply the (possibly inconsistent) gradient taken at compute
        // start.
        let grad = in_flight[w].take().expect("scheduled with gradient");
        h.workers[w].apply(&grad, 1.0);
        h.workers[w].iteration += 1;

        let dur = now - started[w];
        if h.record_update(now, dur) {
            break;
        }

        // Start the next iteration.
        started[w] = now;
        let g = h.workers[w].gradient(&mut h.rng);
        in_flight[w] = Some(g);
        let ct = h.compute_time(w, now);
        queue.schedule(now + ct, w);
    }
    h.finish("AD-PSGD".into(), now)
}

/// D-PSGD: synchronous decentralized SGD on a ring. Every round, each
/// worker averages its model with its two ring neighbors (weights 1/3)
/// and applies its own local gradient. One round = one update (same
/// counting as All-Reduce).
pub fn run_d_psgd(mut h: SimHarness) -> RunResult {
    let n = h.num_workers();
    assert!(n >= 3, "ring gossip needs at least three workers");
    // Each worker exchanges full models with two neighbors, concurrently:
    // cost ≈ two pairwise transfers; the ring is gated by its slowest link.
    let comm = 2.0 * h.network.gossip_pair_time(h.bytes) * h.link_factor(0..h.num_workers());
    let mut now = SimTime::ZERO;
    loop {
        let compute: Vec<f64> = (0..n).map(|w| h.compute_time(w, now)).collect();
        let round_compute = compute.iter().cloned().fold(0.0f64, f64::max);

        // Gradients at current local models.
        let grads: Vec<Tensor> = (0..n).map(|w| h.workers[w].gradient(&mut h.rng)).collect();

        // Ring mixing: x_i ← (x_{i−1} + x_i + x_{i+1}) / 3.
        let olds: Vec<Tensor> = h.workers.iter().map(|w| w.params.clone()).collect();
        for i in 0..n {
            let mut mixed = olds[i].clone();
            mixed.add_assign(&olds[(i + 1) % n]);
            mixed.add_assign(&olds[(i + n - 1) % n]);
            mixed.scale(1.0 / 3.0);
            h.workers[i].set_params(&mixed);
            h.workers[i].apply(&grads[i], 1.0);
            h.workers[i].iteration += 1;
        }

        let dur = round_compute + comm;
        now += dur;
        if h.record_update(now, dur) {
            break;
        }
    }
    h.finish("D-PSGD".into(), now)
}
