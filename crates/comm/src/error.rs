use std::fmt;

/// Errors from the message-passing runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A rank outside `0..world_size` was addressed.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// The world size.
        world: usize,
    },
    /// The peer's endpoint has been dropped; the world is shutting down.
    Disconnected {
        /// The peer whose channel closed.
        peer: usize,
    },
    /// A receive did not complete within the configured timeout — in this
    /// in-process runtime that indicates a deadlocked or panicked peer.
    Timeout {
        /// The peer being waited on.
        peer: usize,
        /// The tag being waited for.
        tag: u64,
    },
    /// A collective was invoked with an invalid group (empty, duplicate
    /// members, out-of-range ranks, or the caller not in the group).
    InvalidGroup(String),
    /// Payload length mismatch between group members in a collective.
    PayloadMismatch {
        /// Length this rank holds.
        expected: usize,
        /// Length received from a peer.
        actual: usize,
    },
    /// A control frame failed to decode: an oversized length prefix or
    /// a payload that is not valid JSON for the expected message type.
    /// Decode paths return this instead of panicking; the connection
    /// that produced it must be dropped (the stream is desynchronized).
    MalformedFrame {
        /// What was wrong with the frame.
        detail: String,
    },
    /// A TCP connect did not succeed within the retry policy's budget.
    /// Carries the real OS error text instead of the old
    /// `Disconnected { peer: usize::MAX }` sentinel.
    ConnectFailed {
        /// The address dialed.
        addr: String,
        /// How many attempts were made before giving up.
        attempts: u32,
        /// The last underlying `io::Error`, stringified (kept as text so
        /// `CommError` stays `Clone + PartialEq + Eq`).
        error: String,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::InvalidRank { rank, world } => {
                write!(f, "rank {rank} out of range for world of {world}")
            }
            CommError::Disconnected { peer } => {
                write!(f, "peer {peer} disconnected")
            }
            CommError::Timeout { peer, tag } => {
                write!(f, "timed out waiting for tag {tag} from peer {peer}")
            }
            CommError::InvalidGroup(msg) => write!(f, "invalid group: {msg}"),
            CommError::MalformedFrame { detail } => {
                write!(f, "malformed control frame: {detail}")
            }
            CommError::PayloadMismatch { expected, actual } => write!(
                f,
                "payload length mismatch in collective: {expected} vs {actual}"
            ),
            CommError::ConnectFailed {
                addr,
                attempts,
                error,
            } => write!(
                f,
                "connect to {addr} failed after {attempts} attempt(s): {error}"
            ),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        assert!(CommError::InvalidRank { rank: 9, world: 4 }
            .to_string()
            .contains('9'));
        assert!(CommError::Timeout { peer: 2, tag: 77 }
            .to_string()
            .contains("77"));
        let e = CommError::ConnectFailed {
            addr: "127.0.0.1:9".into(),
            attempts: 5,
            error: "connection refused".into(),
        };
        assert!(e.to_string().contains("127.0.0.1:9"));
        assert!(e.to_string().contains("5 attempt(s)"));
        assert!(e.to_string().contains("refused"));
        let m = CommError::MalformedFrame {
            detail: "oversized control frame (9999999 bytes)".into(),
        };
        assert!(m.to_string().contains("malformed control frame"));
        assert!(m.to_string().contains("9999999"));
    }
}
