//! Property-based tests for the mini-DL framework: parameter plumbing,
//! gradient correctness on random architectures, and loss identities.

use preduce_models::{softmax_cross_entropy, LayerSpec, NetworkSpec, SgdConfig, SgdOptimizer};
use preduce_tensor::Tensor;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn mlp_strategy() -> impl Strategy<Value = NetworkSpec> {
    (
        1usize..8,                               // input dim
        prop::collection::vec(1usize..12, 0..3), // hidden widths
        2usize..6,                               // classes
    )
        .prop_map(|(d, hidden, c)| NetworkSpec::mlp(d, &hidden, c))
}

proptest! {
    #[test]
    fn param_vector_roundtrips_for_any_mlp(
        spec in mlp_strategy(),
        seed in any::<u64>(),
    ) {
        let mut net = spec.build(seed);
        let v = net.param_vector();
        prop_assert_eq!(v.len(), net.param_count());
        let mut perturbed = v.clone();
        for (i, x) in perturbed.as_mut_slice().iter_mut().enumerate() {
            *x += (i % 7) as f32 * 0.01;
        }
        net.set_param_vector(&perturbed);
        prop_assert_eq!(net.param_vector(), perturbed);
    }

    #[test]
    fn same_seed_same_network_different_seed_different(
        spec in mlp_strategy(),
        seed in any::<u64>(),
    ) {
        let a = spec.build(seed).param_vector();
        let b = spec.build(seed).param_vector();
        prop_assert_eq!(&a, &b);
        let c = spec.build(seed.wrapping_add(1)).param_vector();
        // Different seeds must differ unless the net is pathologically
        // tiny; tolerate equality only for ≤2 params (bias-only nets).
        if a.len() > 2 {
            prop_assert_ne!(&a, &c);
        }
    }

    #[test]
    fn gradient_check_random_architectures(
        spec in mlp_strategy(),
        seed in any::<u64>(),
    ) {
        let mut net = spec.build(seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xf00d);
        let batch = 3usize;
        let d = spec.input_dim;
        let x = Tensor::from_vec(
            (0..batch * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            [batch, d],
        )
        .unwrap();
        let labels: Vec<usize> = (0..batch)
            .map(|_| rng.gen_range(0..spec.validate()))
            .collect();

        // Analytic gradient of the mean cross-entropy.
        net.zero_grads();
        let logits = net.forward(&x);
        let loss = softmax_cross_entropy(&logits, &labels);
        net.backward(&loss.grad);
        let analytic = net.grad_vector();

        // Numeric spot-check. Finite differences can cross ReLU kinks on
        // individual coordinates, so require a majority of probes to
        // agree rather than every single one.
        let base = net.param_vector();
        let eps = 1e-3f32;
        let total = net.param_count();
        let probes = [0, total / 3, total / 2, 2 * total / 3, total - 1];
        let mut agree = 0;
        for &idx in &probes {
            let mut hi = base.clone();
            hi.as_mut_slice()[idx] += eps;
            net.set_param_vector(&hi);
            let f_hi =
                softmax_cross_entropy(&net.forward(&x), &labels).loss;
            let mut lo = base.clone();
            lo.as_mut_slice()[idx] -= eps;
            net.set_param_vector(&lo);
            let f_lo =
                softmax_cross_entropy(&net.forward(&x), &labels).loss;
            let numeric = ((f_hi - f_lo) / (2.0 * eps as f64)) as f32;
            let a = analytic.as_slice()[idx];
            if (a - numeric).abs() < 2e-2_f32.max(numeric.abs() * 0.15) {
                agree += 1;
            }
        }
        // Simple majority: tiny random nets can have a dead-ReLU probe or
        // a kink crossing on up to two coordinates; systematic backprop
        // bugs fail *all* probes.
        prop_assert!(
            agree >= 3,
            "only {agree}/{} gradient probes agreed",
            probes.len()
        );
    }

    #[test]
    fn cross_entropy_bounded_below_by_zero(
        seed in any::<u64>(),
        batch in 1usize..6,
        classes in 2usize..8,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let logits = Tensor::from_vec(
            (0..batch * classes)
                .map(|_| rng.gen_range(-10.0f32..10.0))
                .collect(),
            [batch, classes],
        )
        .unwrap();
        let labels: Vec<usize> =
            (0..batch).map(|_| rng.gen_range(0..classes)).collect();
        let out = softmax_cross_entropy(&logits, &labels);
        prop_assert!(out.loss >= 0.0);
        prop_assert!(out.loss.is_finite());
        // Gradient rows sum to ~0 (softmax minus one-hot).
        for r in 0..batch {
            let s: f32 = out.grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn sgd_with_zero_lr_is_identity(
        spec in mlp_strategy(),
        seed in any::<u64>(),
    ) {
        let net = spec.build(seed);
        let mut params = net.param_vector();
        let before = params.clone();
        let mut opt = SgdOptimizer::new(
            SgdConfig {
                lr: 0.0,
                momentum: 0.9,
                weight_decay: 0.1,
                schedule: preduce_models::LrSchedule::Constant,
            },
            params.len(),
        );
        let grad = Tensor::full([params.len()], 1.0);
        opt.step(&mut params, &grad);
        prop_assert_eq!(params, before);
    }

    #[test]
    fn residual_spec_always_validates_when_inner_preserves_width(
        width in 1usize..16,
        blocks in 1usize..4,
    ) {
        let spec = NetworkSpec::residual_mlp(8, width, blocks, 3);
        prop_assert_eq!(spec.validate(), 3);
        // Layer count: stem (2) + blocks + head (1).
        prop_assert_eq!(spec.layers.len(), 3 + blocks);
        if let LayerSpec::Residual { layers } = &spec.layers[2] {
            prop_assert_eq!(layers.len(), 4);
        } else {
            prop_assert!(false, "third layer should be residual");
        }
    }
}
