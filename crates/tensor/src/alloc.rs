//! A counting global allocator for peak-memory accounting.
//!
//! The scale campaign (DESIGN.md §15) asserts a hard peak-RSS-style
//! budget on N = 10⁴ simulations: the streaming invariant checker and the
//! windowed connectivity structure promise O(N + T·P) state, and the only
//! honest way to enforce that promise in a test is to *measure* the
//! process's live allocation. [`CountingAlloc`] wraps the system
//! allocator with two relaxed atomics (live bytes, peak bytes) so a
//! harness can do:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//! // ... run the sim ...
//! assert!(ALLOC.peak_bytes() < BUDGET);
//! ```
//!
//! The counters use `Ordering::Relaxed` throughout: cross-thread
//! precision of a *diagnostic* high-water mark is not worth a fence on
//! every allocation, and the scale harness drives the sim from a single
//! thread anyway. The peak is maintained with a CAS loop, so it is never
//! *under*-reported for allocations this thread observed.
//!
//! This module lives in `preduce-tensor` because it is the workspace's
//! one crate permitted to contain `unsafe` (the unsafe-audit lint pass
//! confines `unsafe` here; a `GlobalAlloc` impl is inherently unsafe).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A [`System`]-backed allocator that tracks live and peak bytes.
///
/// Zero-cost when not installed; one or two relaxed atomic RMWs per
/// allocation when installed as the `#[global_allocator]`.
pub struct CountingAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAlloc {
    /// Creates an allocator with zeroed counters (`const`, so it can
    /// initialize a `static`).
    pub const fn new() -> Self {
        CountingAlloc {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Bytes currently allocated and not yet freed.
    pub fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Self::live_bytes`] since construction (or the
    /// last [`Self::reset_peak`]).
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current live count, so a harness
    /// can measure the peak of one phase in isolation.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn on_alloc(&self, bytes: usize) {
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let mut peak = self.peak.load(Ordering::Relaxed);
        while live > peak {
            match self
                .peak
                .compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => peak = seen,
            }
        }
    }

    fn on_dealloc(&self, bytes: usize) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: every method delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract (valid layouts in, valid blocks out); the
// counter updates on the side never touch the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System.alloc` under the caller's contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is forwarded unchanged; the caller upholds the
        // `GlobalAlloc::alloc` contract.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            self.on_alloc(layout.size());
        }
        ptr
    }

    // SAFETY: delegates to `System.dealloc` under the caller's contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `Self::alloc`/`alloc_zeroed`/
        // `realloc`, which all delegate to `System`, with this `layout`.
        unsafe { System.dealloc(ptr, layout) };
        self.on_dealloc(layout.size());
    }

    // SAFETY: delegates to `System.alloc_zeroed` under the caller's
    // contract.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is forwarded unchanged from the caller.
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            self.on_alloc(layout.size());
        }
        ptr
    }

    // SAFETY: delegates to `System.realloc` under the caller's contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: `ptr`/`layout` describe a live block from this
        // allocator (delegated to `System`); `new_size` is the caller's.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // Successful realloc frees the old block and owns the new.
            self.on_dealloc(layout.size());
            self.on_alloc(new_size);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Installed as the real global allocator only inside the scale
    // harness; here the methods are exercised directly.
    #[test]
    fn counters_track_alloc_and_free() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        // SAFETY: a valid, non-zero-sized layout.
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        assert_eq!(a.live_bytes(), 4096);
        assert_eq!(a.peak_bytes(), 4096);
        // SAFETY: `p` came from `a.alloc` with `layout`.
        unsafe { a.dealloc(p, layout) };
        assert_eq!(a.live_bytes(), 0);
        assert_eq!(a.peak_bytes(), 4096, "peak is a high-water mark");
        a.reset_peak();
        assert_eq!(a.peak_bytes(), 0);
    }

    #[test]
    fn realloc_moves_the_live_count() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        // SAFETY: a valid, non-zero-sized layout.
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        // SAFETY: `p` is live from `a.alloc` with `layout`; 2048 > 0.
        let q = unsafe { a.realloc(p, layout, 2048) };
        assert!(!q.is_null());
        assert_eq!(a.live_bytes(), 2048);
        assert!(a.peak_bytes() >= 2048);
        let grown = Layout::from_size_align(2048, 8).unwrap();
        // SAFETY: `q` is live with layout `grown` after the realloc.
        unsafe { a.dealloc(q, grown) };
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn zeroed_allocations_are_counted() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(512, 8).unwrap();
        // SAFETY: a valid, non-zero-sized layout.
        let p = unsafe { a.alloc_zeroed(layout) };
        assert!(!p.is_null());
        // SAFETY: `p` points at 512 readable bytes from `alloc_zeroed`.
        let first = unsafe { *p };
        assert_eq!(first, 0);
        assert_eq!(a.live_bytes(), 512);
        // SAFETY: `p` came from `a.alloc_zeroed` with `layout`.
        unsafe { a.dealloc(p, layout) };
    }
}
