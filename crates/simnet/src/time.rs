use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time, in seconds since simulation start.
///
/// Wraps `f64` with a total order (`f64::total_cmp`) so it can key the event
/// queue. Construction rejects NaN, which keeps the total order meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point.
    ///
    /// # Panics
    /// Panics if `seconds` is NaN or negative.
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "SimTime must be finite and non-negative, got {seconds}"
        );
        SimTime(seconds)
    }

    /// Seconds since simulation start.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Advances by `dt` seconds.
    ///
    /// # Panics
    /// Panics if `dt` is NaN or negative.
    pub fn after(self, dt: f64) -> SimTime {
        assert!(
            dt.is_finite() && dt >= 0.0,
            "time delta must be finite and non-negative, got {dt}"
        );
        SimTime(self.0 + dt)
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, dt: f64) -> SimTime {
        self.after(dt)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, dt: f64) {
        *self = self.after(dt);
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::new(1.0);
        let b = a + 0.5;
        assert!(b > a);
        assert_eq!(b - a, 0.5);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::ZERO.seconds(), 0.0);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += 2.0;
        assert_eq!(t.seconds(), 2.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_delta() {
        let _ = SimTime::ZERO + f64::NAN;
    }
}
