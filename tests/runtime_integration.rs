//! Cross-crate integration tests of the threaded prototype: the
//! partial-reduce primitive over real threads, checked against
//! hand-computed aggregation results and against the simulator's
//! semantics.

use preduce::comm::collectives::TAG_STRIDE;
use preduce::data::cifar10_like;
use preduce::models::zoo;
use preduce::partial_reduce::runtime::spawn;
use preduce::partial_reduce::{dynamic_weights, AggregationMode, ControllerConfig, GapPolicy};
use preduce::trainer::threaded::{train_threaded_allreduce, train_threaded_preduce};
use preduce::trainer::ExperimentConfig;
use std::thread;

fn small_config(n: usize) -> ExperimentConfig {
    let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
    c.num_workers = n;
    c.sgd.lr = 0.05;
    c
}

#[test]
fn full_group_preduce_matches_hand_average() {
    // P = N = 2 with constant weights: after one reduce, both workers hold
    // exactly the mean of their pre-reduce vectors.
    let (handle, mut reducers) = spawn(ControllerConfig::constant(2, 2));
    let r1 = reducers.pop().unwrap();
    let r0 = reducers.pop().unwrap();

    let t0 = thread::spawn(move || {
        let mut r = r0;
        let mut params = vec![2.0f32, 4.0, 6.0];
        r.reduce(&mut params, 1).unwrap();
        r.finish().unwrap();
        params
    });
    let t1 = thread::spawn(move || {
        let mut r = r1;
        let mut params = vec![4.0f32, 8.0, 10.0];
        r.reduce(&mut params, 1).unwrap();
        r.finish().unwrap();
        params
    });
    let p0 = t0.join().unwrap();
    let p1 = t1.join().unwrap();
    handle.join();
    assert_eq!(p0, vec![3.0, 6.0, 8.0]);
    assert_eq!(p0, p1);
}

#[test]
fn dynamic_weights_in_runtime_match_library_function() {
    // Two workers at iterations 7 and 3: the runtime's aggregation must
    // equal the weights `dynamic_weights` computes.
    let alpha = 0.4;
    let cfg = ControllerConfig {
        num_workers: 2,
        group_size: 2,
        mode: AggregationMode::Dynamic {
            alpha,
            gap_policy: GapPolicy::Initial,
        },
        history_window: None,
        frozen_avoidance: true,
    };
    let (handle, mut reducers) = spawn(cfg);
    let r1 = reducers.pop().unwrap();
    let r0 = reducers.pop().unwrap();

    let t0 = thread::spawn(move || {
        let mut r = r0;
        let mut params = vec![10.0f32];
        let out = r.reduce(&mut params, 7).unwrap();
        r.finish().unwrap();
        (params, out.new_iteration)
    });
    let t1 = thread::spawn(move || {
        let mut r = r1;
        let mut params = vec![30.0f32];
        let out = r.reduce(&mut params, 3).unwrap();
        r.finish().unwrap();
        (params, out.new_iteration)
    });
    let (p0, k0) = t0.join().unwrap();
    let (p1, k1) = t1.join().unwrap();
    handle.join();

    let w = dynamic_weights(&[7, 3], alpha, GapPolicy::Initial);
    let expected = w[0] * 10.0 + w[1] * 30.0;
    assert!((p0[0] - expected).abs() < 1e-4, "{} vs {expected}", p0[0]);
    assert_eq!(p0, p1);
    // Both fast-forward to the group max.
    assert_eq!(k0, 7);
    assert_eq!(k1, 7);
}

#[test]
fn threaded_preduce_accuracy_tracks_allreduce() {
    // Same workload, same local-update budget: the threaded P-Reduce run
    // should land in the same accuracy neighbourhood as threaded AR.
    let c = small_config(4);
    let iters = 120;
    let ar = train_threaded_allreduce(&c, iters);
    let pr = train_threaded_preduce(&c, ControllerConfig::constant(4, 2), iters);
    assert!(ar.accuracy > 0.45, "AR too weak: {}", ar.accuracy);
    assert!(
        pr.accuracy > ar.accuracy - 0.15,
        "P-Reduce {} lags AR {} by too much",
        pr.accuracy,
        ar.accuracy
    );
}

#[test]
fn concurrent_disjoint_groups_form_in_threaded_runtime() {
    // With P = 2 and 6 workers, multiple groups must be able to run
    // concurrently; total groups over the run reflects that (each worker
    // reduces `iters` times ⇒ iters*6/2 groups minus drain singletons).
    let c = small_config(6);
    let iters = 30u64;
    let r = train_threaded_preduce(&c, ControllerConfig::constant(6, 2), iters);
    let stats = r.controller.expect("stats");
    let total = stats.groups_formed * 2 + stats.singletons;
    assert_eq!(total, iters * 6, "every local update joins one reduce");
}

#[test]
fn ring_allreduce_tags_do_not_collide_across_iterations() {
    // Regression guard for the tag-stride discipline: many iterations of
    // full-world collectives on the same endpoints must not cross-talk.
    use preduce::comm::collectives::ring_allreduce;
    use preduce::comm::CommWorld;
    let n = 4;
    let eps = CommWorld::new(n).into_endpoints();
    let handles: Vec<_> = eps
        .into_iter()
        .enumerate()
        .map(|(rank, mut ep)| {
            thread::spawn(move || {
                let group: Vec<usize> = (0..n).collect();
                let mut results = Vec::new();
                for k in 0..50u64 {
                    let mut data = vec![(rank + 1) as f32 * (k + 1) as f32; 17];
                    ring_allreduce(&mut ep, &group, k * TAG_STRIDE, &mut data).unwrap();
                    results.push(data[0]);
                }
                results
            })
        })
        .collect();
    let all: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for k in 0..50usize {
        let expected = 10.0 * (k + 1) as f32; // (1+2+3+4)·(k+1)
        for r in &all {
            assert_eq!(r[k], expected, "iteration {k}");
        }
    }
}
