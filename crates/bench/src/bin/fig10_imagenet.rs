//! Figure 10: convergence on the ImageNet-scale analog workloads
//! (ResNet-18 and VGG-16), 32 workers, production heterogeneity.
//!
//! Prints `(time, accuracy)` curves for All-Reduce vs P-Reduce (P = 4) —
//! the paper's finding: P-Reduce reaches the same terminal accuracy with a
//! much faster time axis.
//!
//! Run: `cargo run --release -p preduce-bench --bin fig10_imagenet`

use preduce_bench::configs::imagenet_config;
use preduce_bench::output::maybe_dump_json;
use preduce_models::zoo;
use preduce_trainer::{run_experiment, RunResult, Strategy};

fn print_series(r: &RunResult) {
    println!("# {}", r.strategy);
    for p in &r.trace {
        println!("{:.2}\t{:.4}", p.time, p.accuracy);
    }
    println!(
        "# final accuracy {:.4} after {:.1}s / {} updates\n",
        r.final_accuracy, r.run_time, r.updates
    );
}

fn main() {
    for model in [zoo::resnet18(), zoo::vgg16()] {
        println!(
            "== Fig 10: {} analog on imagenet-like, 32 workers ==\n",
            model.name
        );
        let base_config = imagenet_config(model, 32);
        // Equal *gradient* budgets per strategy: one AR round consumes 32
        // local gradients, one P-Reduce (P=4) group consumes 4, so the
        // update caps differ by N/P to trace comparable spans of work.
        let ar_rounds: u64 = if preduce_bench::quick_mode() {
            400
        } else {
            2_500
        };
        let mut results = Vec::new();
        for s in [
            Strategy::AllReduce,
            Strategy::PReduce {
                p: 4,
                dynamic: false,
            },
            Strategy::PReduce {
                p: 4,
                dynamic: true,
            },
        ] {
            let mut config = base_config.clone();
            config.threshold = 0.999; // run to the cap to trace the plateau
            config.max_updates = match s {
                Strategy::AllReduce => ar_rounds,
                _ => ar_rounds * 32 / 4,
            };
            config.eval_every = config.max_updates / 20;
            let r = run_experiment(s, &config);
            print_series(&r);
            results.push(r);
        }
        maybe_dump_json(&format!("fig10_{}", base_config.model.name), &results);
    }
}
