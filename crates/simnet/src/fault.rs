//! Fault-injection vocabulary shared by both execution substrates.
//!
//! A [`FaultPlan`] is a declarative list of per-worker faults that the
//! engine applies uniformly to the virtual-time simulator and the
//! threaded runtime (DESIGN.md §11). The vocabulary mirrors the failure
//! classes the paper's controller must absorb:
//!
//! * **Crash** — fail-stop at an iteration boundary; exercises eviction,
//!   queued-signal purging, and in-flight group repair.
//! * **Stall** — a worker becomes `factor`× slower from some iteration;
//!   exercises partial-reduce's core heterogeneity claim.
//! * **DelaySignals** — control messages from a worker arrive late;
//!   exercises FIFO ordering under a laggy control link.
//! * **LateJoin** — a worker starts the run late; exercises the gap
//!   policy and staleness-aware weights (§3.3.3).
//!
//! Plans parse from a compact CLI spec (`--fault-plan`), e.g.
//! `crash:3@40,stall:5x4@10,delay:2+0.05,latejoin:7+2.0`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One fault class, bound to a worker by [`FaultSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Fail-stop: the worker completes `at_iteration` local updates and
    /// then dies silently — no `Leaving` message, no further signals.
    /// Crashes happen at iteration boundaries only (see DESIGN.md §11
    /// for the failure model).
    Crash {
        /// Number of local updates completed before death.
        at_iteration: u64,
    },
    /// The worker's per-update compute time is multiplied by `factor`
    /// starting at `from_iteration` (0 = from the start).
    Stall {
        /// Slowdown multiplier (> 1.0 slows the worker down).
        factor: f64,
        /// First iteration the slowdown applies to.
        from_iteration: u64,
    },
    /// Every ready signal from the worker reaches the controller
    /// `seconds` late (virtual seconds on sim, wall seconds threaded).
    DelaySignals {
        /// Added one-way control-plane latency.
        seconds: f64,
    },
    /// The worker sends its first ready signal `seconds` after the rest
    /// of the fleet starts.
    LateJoin {
        /// Start-up delay.
        seconds: f64,
    },
    /// Elastic recovery (DESIGN.md §14): once the fleet has completed
    /// `at_update` global updates, a replacement for this (previously
    /// crashed/evicted) worker restores from the latest checkpoint and
    /// rejoins the run.
    Restore {
        /// Global update count that triggers the restore.
        at_update: u64,
    },
}

impl FaultKind {
    /// Compact human/trace label, stable across substrates so chaos
    /// tests can match `FaultInjected` events against the plan.
    pub fn label(&self) -> String {
        match *self {
            FaultKind::Crash { at_iteration } => format!("crash@{at_iteration}"),
            FaultKind::Stall {
                factor,
                from_iteration,
            } => format!("stall x{factor} from {from_iteration}"),
            FaultKind::DelaySignals { seconds } => format!("delay +{seconds}s"),
            FaultKind::LateJoin { seconds } => format!("latejoin +{seconds}s"),
            FaultKind::Restore { at_update } => format!("restore@{at_update}"),
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A fault bound to one worker rank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Target worker rank.
    pub worker: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A whole-run chaos plan: zero or more per-worker faults.
///
/// The empty plan is the fault-free baseline; every accessor degrades to
/// a no-op so call sites need no special-casing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The injected faults, in declaration order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Builder: adds a fail-stop at `at_iteration` for `worker`.
    pub fn crash(mut self, worker: usize, at_iteration: u64) -> Self {
        self.faults.push(FaultSpec {
            worker,
            kind: FaultKind::Crash { at_iteration },
        });
        self
    }

    /// Builder: slows `worker` down by `factor` from `from_iteration`.
    pub fn stall(mut self, worker: usize, factor: f64, from_iteration: u64) -> Self {
        self.faults.push(FaultSpec {
            worker,
            kind: FaultKind::Stall {
                factor,
                from_iteration,
            },
        });
        self
    }

    /// Builder: delays `worker`'s control signals by `seconds`.
    pub fn delay_signals(mut self, worker: usize, seconds: f64) -> Self {
        self.faults.push(FaultSpec {
            worker,
            kind: FaultKind::DelaySignals { seconds },
        });
        self
    }

    /// Builder: `worker` joins the run `seconds` late.
    pub fn late_join(mut self, worker: usize, seconds: f64) -> Self {
        self.faults.push(FaultSpec {
            worker,
            kind: FaultKind::LateJoin { seconds },
        });
        self
    }

    /// Builder: a replacement for `worker` restores from checkpoint once
    /// the fleet reaches `at_update` global updates.
    pub fn restore(mut self, worker: usize, at_update: u64) -> Self {
        self.faults.push(FaultSpec {
            worker,
            kind: FaultKind::Restore { at_update },
        });
        self
    }

    /// All faults targeting `worker`.
    pub fn for_worker(&self, worker: usize) -> impl Iterator<Item = &FaultSpec> {
        self.faults.iter().filter(move |f| f.worker == worker)
    }

    /// The iteration at which `worker` crashes, if any (earliest wins
    /// when several crash faults target the same rank).
    pub fn crash_at(&self, worker: usize) -> Option<u64> {
        self.for_worker(worker)
            .filter_map(|f| match f.kind {
                FaultKind::Crash { at_iteration } => Some(at_iteration),
                _ => None,
            })
            .min()
    }

    /// Compute-time multiplier for `worker` at `iteration` (product of
    /// all applicable stalls; 1.0 when none apply).
    pub fn stall_factor(&self, worker: usize, iteration: u64) -> f64 {
        self.for_worker(worker)
            .filter_map(|f| match f.kind {
                FaultKind::Stall {
                    factor,
                    from_iteration,
                } if iteration >= from_iteration => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Added latency on `worker`'s control signals (sum of delays).
    pub fn signal_delay(&self, worker: usize) -> f64 {
        self.for_worker(worker)
            .filter_map(|f| match f.kind {
                FaultKind::DelaySignals { seconds } => Some(seconds),
                _ => None,
            })
            .sum()
    }

    /// The global update count at which a replacement for `worker`
    /// restores from checkpoint, if any (earliest wins).
    pub fn restore_at(&self, worker: usize) -> Option<u64> {
        self.for_worker(worker)
            .filter_map(|f| match f.kind {
                FaultKind::Restore { at_update } => Some(at_update),
                _ => None,
            })
            .min()
    }

    /// Ranks with a pending restore, in declaration order.
    pub fn restore_targets(&self) -> impl Iterator<Item = usize> + '_ {
        self.faults.iter().filter_map(|f| match f.kind {
            FaultKind::Restore { .. } => Some(f.worker),
            _ => None,
        })
    }

    /// How late `worker` starts (sum of late-join delays; 0.0 on time).
    pub fn start_delay(&self, worker: usize) -> f64 {
        self.for_worker(worker)
            .filter_map(|f| match f.kind {
                FaultKind::LateJoin { seconds } => Some(seconds),
                _ => None,
            })
            .sum()
    }

    /// Parses the compact `--fault-plan` grammar: a comma-separated list
    /// of `crash:W@I`, `stall:WxF[@I]`, `delay:W+S`, `latejoin:W+S`,
    /// `restore:W@U` (W = worker rank, I = iteration, F = factor,
    /// S = seconds, U = global update count).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, rest) = token
                .split_once(':')
                .ok_or_else(|| format!("fault `{token}`: expected `kind:…`"))?;
            let spec = match kind {
                "crash" => {
                    let (w, i) = split2(rest, '@', token)?;
                    FaultSpec {
                        worker: parse_num(w, "worker", token)?,
                        kind: FaultKind::Crash {
                            at_iteration: parse_num(i, "iteration", token)?,
                        },
                    }
                }
                "restore" => {
                    let (w, u) = split2(rest, '@', token)?;
                    FaultSpec {
                        worker: parse_num(w, "worker", token)?,
                        kind: FaultKind::Restore {
                            at_update: parse_num(u, "update", token)?,
                        },
                    }
                }
                "stall" => {
                    let (w, rest) = split2(rest, 'x', token)?;
                    let (factor, from) = match rest.split_once('@') {
                        Some((f, i)) => (f, parse_num(i, "iteration", token)?),
                        None => (rest, 0u64),
                    };
                    FaultSpec {
                        worker: parse_num(w, "worker", token)?,
                        kind: FaultKind::Stall {
                            factor: parse_num(factor, "factor", token)?,
                            from_iteration: from,
                        },
                    }
                }
                "delay" | "latejoin" => {
                    let (w, s) = split2(rest, '+', token)?;
                    let worker = parse_num(w, "worker", token)?;
                    let seconds: f64 = parse_num(s, "seconds", token)?;
                    FaultSpec {
                        worker,
                        kind: if kind == "delay" {
                            FaultKind::DelaySignals { seconds }
                        } else {
                            FaultKind::LateJoin { seconds }
                        },
                    }
                }
                other => {
                    return Err(format!(
                        "fault `{token}`: unknown kind `{other}` \
                         (expected crash|stall|delay|latejoin|restore)"
                    ))
                }
            };
            plan.faults.push(spec);
        }
        Ok(plan)
    }
}

fn split2<'a>(s: &'a str, sep: char, token: &str) -> Result<(&'a str, &'a str), String> {
    s.split_once(sep)
        .ok_or_else(|| format!("fault `{token}`: expected `…{sep}…`"))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str, token: &str) -> Result<T, String> {
    s.trim()
        .parse()
        .map_err(|_| format!("fault `{token}`: bad {what} `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.crash_at(0), None);
        assert_eq!(p.stall_factor(0, 100), 1.0);
        assert_eq!(p.signal_delay(0), 0.0);
        assert_eq!(p.start_delay(0), 0.0);
    }

    #[test]
    fn builders_and_accessors_agree() {
        let p = FaultPlan::none()
            .crash(3, 40)
            .stall(5, 4.0, 10)
            .delay_signals(2, 0.05)
            .late_join(7, 2.0);
        assert_eq!(p.crash_at(3), Some(40));
        assert_eq!(p.crash_at(5), None);
        assert_eq!(p.stall_factor(5, 9), 1.0);
        assert_eq!(p.stall_factor(5, 10), 4.0);
        assert_eq!(p.signal_delay(2), 0.05);
        assert_eq!(p.start_delay(7), 2.0);
        assert_eq!(p.for_worker(3).count(), 1);
    }

    #[test]
    fn parse_accepts_the_full_grammar() {
        let p = FaultPlan::parse(
            "crash:3@40, stall:5x4@10, delay:2+0.05, latejoin:7+2.0, restore:3@60",
        )
        .expect("valid spec");
        assert_eq!(
            p,
            FaultPlan::none()
                .crash(3, 40)
                .stall(5, 4.0, 10)
                .delay_signals(2, 0.05)
                .late_join(7, 2.0)
                .restore(3, 60)
        );
    }

    #[test]
    fn restore_accessors() {
        let p = FaultPlan::none().crash(3, 40).restore(3, 60).restore(3, 90);
        assert_eq!(p.restore_at(3), Some(60), "earliest restore wins");
        assert_eq!(p.restore_at(0), None);
        assert_eq!(p.restore_targets().collect::<Vec<_>>(), vec![3, 3]);
        assert!(FaultPlan::parse("restore:3").is_err());
        assert!(FaultPlan::parse("restore:3@x").is_err());
    }

    #[test]
    fn parse_defaults_stall_start_to_zero() {
        let p = FaultPlan::parse("stall:1x2.5").expect("valid spec");
        assert_eq!(p.stall_factor(1, 0), 2.5);
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        assert!(FaultPlan::parse("crash:3").is_err());
        assert!(FaultPlan::parse("stall:ax2").is_err());
        assert!(FaultPlan::parse("explode:1@2").is_err());
        assert!(FaultPlan::parse("delay:1").is_err());
    }

    #[test]
    fn earliest_crash_wins_and_stalls_compound() {
        let p = FaultPlan::none()
            .crash(0, 50)
            .crash(0, 20)
            .stall(0, 2.0, 0)
            .stall(0, 3.0, 5);
        assert_eq!(p.crash_at(0), Some(20));
        assert_eq!(p.stall_factor(0, 4), 2.0);
        assert_eq!(p.stall_factor(0, 5), 6.0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = FaultPlan::none().crash(1, 7).stall(2, 1.5, 3);
        let json = serde_json::to_string(&p).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(p, back);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::Crash { at_iteration: 40 }.label(), "crash@40");
        assert_eq!(
            FaultKind::Stall {
                factor: 4.0,
                from_iteration: 10
            }
            .label(),
            "stall x4 from 10"
        );
        assert_eq!(
            FaultKind::DelaySignals { seconds: 0.05 }.label(),
            "delay +0.05s"
        );
        assert_eq!(FaultKind::LateJoin { seconds: 2.0 }.label(), "latejoin +2s");
        assert_eq!(FaultKind::Restore { at_update: 60 }.label(), "restore@60");
    }
}
