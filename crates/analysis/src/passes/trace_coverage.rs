//! Pass 4 — `trace-coverage`: every controller state-mutation path
//! emits a `TraceEvent`.
//!
//! PR 1's invariant checker replays the event stream; a `&mut self`
//! method on the controller that mutates state without recording (and
//! without reaching a recording method) is a blind spot the checker can
//! never see into. The pass collects every `&mut self` method in the
//! scoped file, marks those that textually emit (`TraceEvent::` or
//! `.record(`), propagates emission through `self.method(…)` calls to a
//! fixpoint, and flags the rest.

use crate::scan::{fn_spans, FnSpan, SourceFile};
use crate::Finding;

/// Pass name used in findings and allow directives.
pub const NAME: &str = "trace-coverage";

/// Runs the pass on one file (the caller scopes it to the controller).
pub fn run(file: &SourceFile) -> Vec<Finding> {
    let spans: Vec<FnSpan> = fn_spans(file)
        .into_iter()
        .filter(|s| !file.is_test[s.start])
        .collect();
    let mutating: Vec<&FnSpan> = spans
        .iter()
        .filter(|s| s.header.contains("&mut self"))
        .collect();

    // Seed: methods that record directly.
    let mut emits: Vec<String> = spans
        .iter()
        .filter(|s| {
            (s.start..=s.end)
                .any(|l| file.code[l].contains("TraceEvent::") || file.code[l].contains(".record("))
        })
        .map(|s| s.name.clone())
        .collect();

    // Fixpoint: calling an emitting method (on self or free) propagates.
    loop {
        let mut grew = false;
        for s in &spans {
            if emits.contains(&s.name) {
                continue;
            }
            let calls_emitter = (s.start..=s.end).any(|l| {
                let line = &file.code[l];
                emits.iter().any(|e| {
                    line.contains(&format!("self.{e}(")) || line.contains(&format!(" {e}("))
                })
            });
            if calls_emitter {
                emits.push(s.name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    mutating
        .iter()
        .filter(|s| !emits.contains(&s.name))
        .map(|s| Finding {
            pass: NAME.into(),
            file: file.path.clone(),
            line: s.start + 1,
            message: format!(
                "`{}` takes `&mut self` but no `TraceEvent` is emitted on this path; the replay checker cannot see this mutation",
                s.name
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_mutation_flagged() {
        let f = SourceFile::from_source(
            "crates/core/src/controller.rs",
            "impl C {\n    fn silent(&mut self) {\n        self.x += 1;\n    }\n}\n",
        );
        let got = run(&f);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("silent"));
    }

    #[test]
    fn direct_and_transitive_emission_clean() {
        let f = SourceFile::from_source(
            "crates/core/src/controller.rs",
            "impl C {\n    fn emitter(&mut self) {\n        self.sink.record(TraceEvent::RunStarted { n: 0 });\n    }\n    fn caller(&mut self) {\n        self.emitter();\n    }\n    fn reader(&self) -> u8 {\n        self.x\n    }\n}\n",
        );
        assert!(run(&f).is_empty());
    }
}
