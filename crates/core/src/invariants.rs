//! Trace-driven invariant checking for the P-Reduce control plane.
//!
//! The checker is **incremental**: [`StreamingChecker`] consumes one
//! [`TraceEvent`] at a time ([`StreamingChecker::feed`]) with
//! bounded-memory replay state — per-worker counters, a windowed
//! connectivity structure, never a retained event vector — so
//! million-signal traces check in O(state), not O(trace), memory.
//! [`InvariantChecker::check`] (batch) and
//! [`InvariantChecker::check_jsonl`] (line-streamed from disk, works on
//! dumps larger than RAM) are thin wrappers over the same state machine,
//! so their verdicts are identical by construction. [`CheckingSink`]
//! adapts the checker into a [`TraceSink`] for live, in-process checking
//! of a running controller.
//!
//! Replaying asserts the paper's contracts:
//!
//! * every formed group has exactly `P` distinct, in-range, still-active
//!   members, each holding exactly one consumed ready signal;
//! * weight vectors are non-negative and sum to 1 — uniform `1/P` in CON
//!   mode, the Eq. 9 staleness-aware weights (recomputed independently) in
//!   DYN mode;
//! * `new_iteration` is the group max, per-worker reported iterations
//!   never regress, and in DYN mode members fast-forward: a member's next
//!   signal is strictly beyond the adopted group max (§3.3.3);
//! * no worker sits in two in-flight groups (enforced when the trace
//!   carries [`TraceEvent::ReduceCompleted`] completions);
//! * a repair group only appears when the `T`-window sync graph is warm
//!   and disconnected, and its members bridge at least two components
//!   (§4 group-frozen avoidance);
//! * departed workers never appear in later groups, and their queued
//!   signals are purged on departure;
//! * elasticity events (DESIGN.md §14) are consistent: a snapshot
//!   ([`TraceEvent::SnapshotTaken`]) never captures a departed worker, a
//!   restore ([`TraceEvent::WorkerRestored`]) targets a rank that
//!   actually departed — resetting its iteration floor to the snapshot
//!   iteration, since durable state may legitimately predate the crash —
//!   and a reshard ([`TraceEvent::ShardsReassigned`]) moves fewer than
//!   5% of keys between surviving workers;
//! * an eviction ([`TraceEvent::WorkerEvicted`]) is *justified*: it is
//!   preceded by heartbeat silence ([`TraceEvent::HeartbeatMissed`]), an
//!   injected fault ([`TraceEvent::FaultInjected`]), or a dropped control
//!   connection ([`TraceEvent::ProcessDisconnected`]) for that worker, it
//!   carries the post-eviction active count, and it is resolved by the
//!   worker's ordinary departure event — never by silently vanishing;
//! * process lifecycle is consistent: at most one
//!   [`TraceEvent::ProcessJoined`] per rank, and a
//!   [`TraceEvent::ProcessDisconnected`] only for a rank that joined and
//!   has not yet departed;
//! * closing counters ([`TraceEvent::RunFinished`]) match the replayed
//!   tallies.
//!
//! The checker is deliberately tolerant of *truncated* traces (a crash
//! mid-run yields no `RunFinished`; that is not a violation) but strict
//! about *inconsistent* ones.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead};
use std::path::Path;
use std::sync::Mutex;

use crate::controller::{AggregationMode, ControllerConfig};
use crate::graph::WindowedConnectivity;
use crate::trace::{TraceEvent, TraceSink};
use crate::weights::dynamic_weights;

/// Weight-vector comparison tolerance. Weights travel as `f32` and
/// serde_json round-trips floats exactly, so this only needs to absorb
/// the checker recomputing DYN weights in a different summation order.
const WEIGHT_EPS: f32 = 1e-4;

/// One broken invariant, anchored to the offending event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending event in the replayed stream.
    pub index: usize,
    /// Human-readable description of the broken contract.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event {}: {}", self.index, self.message)
    }
}

/// The outcome of replaying a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantReport {
    /// Events replayed.
    pub events: usize,
    /// Groups formed in the trace.
    pub groups: u64,
    /// Frozen-schedule repairs observed.
    pub repairs: u64,
    /// Broken invariants, in event order.
    pub violations: Vec<Violation>,
}

impl InvariantReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} events, {} groups ({} repaired), {} violation(s)",
            self.events,
            self.groups,
            self.repairs,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Replays traces and validates the control-plane contracts. Both entry
/// points are thin wrappers over [`StreamingChecker`], the incremental
/// state machine — one feeds a slice, the other streams a file line by
/// line, so a dump larger than RAM checks in bounded memory.
pub struct InvariantChecker;

impl InvariantChecker {
    /// Replays `events` and reports every broken invariant.
    pub fn check(events: &[TraceEvent]) -> InvariantReport {
        let mut checker = StreamingChecker::new();
        for event in events {
            checker.feed(event);
        }
        checker.finish()
    }

    /// Streams a JSONL trace dump through the checker one line at a time
    /// — the file is never materialized, so traces larger than RAM check
    /// fine. Parse failures abort with the offending line number, same as
    /// [`crate::trace::read_jsonl`].
    pub fn check_jsonl<P: AsRef<Path>>(path: P) -> io::Result<InvariantReport> {
        let file = std::fs::File::open(path)?;
        let reader = io::BufReader::new(file);
        let mut checker = StreamingChecker::new();
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let event: TraceEvent = serde_json::from_str(&line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("trace line {}: {e}", idx + 1),
                )
            })?;
            checker.feed(&event);
        }
        Ok(checker.finish())
    }
}

/// A violation recorded during streaming, tagged with whether it only
/// stands under strict in-flight accounting (see
/// [`StreamingChecker::finish`]).
struct PendingViolation {
    violation: Violation,
    strict_only: bool,
}

/// The incremental invariant checker: feed events one at a time, read
/// the verdict at the end.
///
/// State is bounded by the fleet, not the trace: per-worker maps
/// (queue, floors, in-flight membership, lifecycle flags), a
/// [`WindowedConnectivity`] replica of the controller's `T`-window sync
/// graph, scalar counters, and the violation list — O(N + T·P +
/// violations) total, independent of how many events stream through.
///
/// One contract needs care in streaming form: in-flight accounting is
/// only *enforced* when the trace carries
/// [`TraceEvent::ReduceCompleted`] at all (controller-only traces
/// legitimately lack completions). The batch checker knew this upfront
/// by pre-scanning; a streaming checker cannot look ahead, so it always
/// *tracks* in-flight groups, tags the violations that depend on
/// strictness, and drops them at [`StreamingChecker::finish`] if no
/// completion ever arrived — bit-identical verdicts, single pass.
pub struct StreamingChecker {
    /// Events fed so far (also the index assigned to the next event).
    index: usize,
    /// Whether a [`TraceEvent::ReduceCompleted`] has been seen — flips
    /// strict in-flight accounting from "tracked" to "enforced".
    strict_inflight: bool,
    config: Option<ControllerConfig>,
    /// Queued ready signals: worker → reported iteration.
    pending: BTreeMap<usize, u64>,
    /// Departed workers.
    departed: BTreeMap<usize, ()>,
    /// Strictly-increasing floor on each worker's next reported iteration.
    min_next: BTreeMap<usize, u64>,
    /// Workers inside an unfinished group: worker → group members.
    in_flight: BTreeMap<usize, Vec<usize>>,
    /// Workers with an injected fault on record (justifies eviction).
    faulted: BTreeMap<usize, ()>,
    /// Workers whose heartbeat silence was narrated (justifies eviction).
    missed: BTreeMap<usize, ()>,
    /// Worker processes that completed the fleet handshake.
    joined: BTreeMap<usize, ()>,
    /// Workers whose control connection dropped (justifies eviction).
    disconnected: BTreeMap<usize, ()>,
    /// Evicted workers awaiting their departure event.
    evicted_pending: BTreeMap<usize, ()>,
    /// Incremental replica of the controller's `T`-window sync-graph
    /// connectivity (the batch checker's rebuild-and-DFS is the semantic
    /// reference; this matches it exactly, property-tested).
    conn: Option<WindowedConnectivity>,
    expected_sequence: u64,
    active: Option<usize>,
    groups: u64,
    repairs: u64,
    deferrals: u64,
    singletons: u64,
    missing_start_reported: bool,
    violations: Vec<PendingViolation>,
}

impl Default for StreamingChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingChecker {
    /// Creates a checker with no events fed.
    pub fn new() -> Self {
        StreamingChecker {
            index: 0,
            strict_inflight: false,
            config: None,
            pending: BTreeMap::new(),
            departed: BTreeMap::new(),
            min_next: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            faulted: BTreeMap::new(),
            missed: BTreeMap::new(),
            joined: BTreeMap::new(),
            disconnected: BTreeMap::new(),
            evicted_pending: BTreeMap::new(),
            conn: None,
            expected_sequence: 0,
            active: None,
            groups: 0,
            repairs: 0,
            deferrals: 0,
            singletons: 0,
            missing_start_reported: false,
            violations: Vec::new(),
        }
    }

    /// Events fed so far.
    pub fn events(&self) -> usize {
        self.index
    }

    /// Groups observed so far.
    pub fn groups(&self) -> u64 {
        self.groups
    }

    /// Violations recorded so far, counting strict-in-flight candidates
    /// that [`StreamingChecker::finish`] may yet drop.
    pub fn violations_so_far(&self) -> usize {
        self.violations.len()
    }

    fn fail(&mut self, index: usize, message: String) {
        self.violations.push(PendingViolation {
            violation: Violation { index, message },
            strict_only: false,
        });
    }

    /// Records a violation that only stands when the trace turns out to
    /// carry completions (strict in-flight accounting).
    fn fail_strict(&mut self, index: usize, message: String) {
        self.violations.push(PendingViolation {
            violation: Violation { index, message },
            strict_only: true,
        });
    }

    fn require_started(&mut self, index: usize) {
        if self.config.is_none() && !self.missing_start_reported {
            self.missing_start_reported = true;
            self.fail(index, "trace does not begin with RunStarted".to_string());
        }
    }

    /// Feeds one event into the state machine, recording any violations
    /// it exposes. Events are indexed in arrival order.
    pub fn feed(&mut self, event: &TraceEvent) {
        let i = self.index;
        self.index += 1;
        {
            match event {
                TraceEvent::RunStarted { config } => self.on_started(i, config),
                TraceEvent::SignalEnqueued {
                    worker,
                    iteration,
                    queued,
                } => self.on_enqueued(i, *worker, *iteration, *queued),
                TraceEvent::SignalRejected { worker, .. } => {
                    self.require_started(i);
                    if !self.departed.contains_key(worker) {
                        self.fail(
                            i,
                            format!(
                                "signal from worker {worker} rejected \
                                 though it never departed"
                            ),
                        );
                    }
                }
                TraceEvent::GroupDeferred { queued, .. } => {
                    self.require_started(i);
                    self.deferrals += 1;
                    if *queued != self.pending.len() {
                        self.fail(
                            i,
                            format!(
                                "deferral reports {queued} queued signals, \
                                 replay holds {}",
                                self.pending.len()
                            ),
                        );
                    }
                }
                TraceEvent::GroupFormed {
                    sequence,
                    members,
                    iterations,
                    weights,
                    new_iteration,
                    repaired,
                } => self.on_group(
                    i,
                    *sequence,
                    members,
                    iterations,
                    weights,
                    *new_iteration,
                    *repaired,
                ),
                TraceEvent::AssignmentSent {
                    worker, members, ..
                } => {
                    if !members.contains(worker) {
                        self.fail(
                            i,
                            format!(
                                "assignment for group {members:?} sent to \
                                 non-member worker {worker}"
                            ),
                        );
                    }
                }
                TraceEvent::ReduceCompleted {
                    worker, members, ..
                } => {
                    // The trace carries completions: in-flight accounting
                    // is enforced (tracked-but-tagged violations from
                    // earlier events stand — see `finish`).
                    self.strict_inflight = true;
                    self.on_completed(i, *worker, members)
                }
                TraceEvent::WorkerLeft {
                    worker,
                    active,
                    purged_signal,
                } => self.on_left(i, *worker, *active, *purged_signal),
                TraceEvent::PendingDrained { signals } => {
                    self.require_started(i);
                    for &(w, it) in signals {
                        match self.pending.remove(&w) {
                            None => self.fail(
                                i,
                                format!(
                                    "drained a signal for worker {w} that \
                                     was not queued"
                                ),
                            ),
                            Some(q) if q != it => self.fail(
                                i,
                                format!(
                                    "drained signal for worker {w} carries \
                                     iteration {it}, queued was {q}"
                                ),
                            ),
                            Some(_) => {}
                        }
                    }
                }
                TraceEvent::SingletonIssued { worker, iteration } => {
                    self.require_started(i);
                    self.singletons += 1;
                    if self.departed.contains_key(worker) {
                        self.fail(i, format!("singleton issued to departed worker {worker}"));
                    }
                    if self.pending.contains_key(worker) {
                        self.fail(
                            i,
                            format!(
                                "singleton issued to worker {worker} while \
                                 its signal is still queued"
                            ),
                        );
                    }
                    // A singleton releases the worker at its *own* reported
                    // iteration — no aggregation, no fast-forward — so the
                    // floor check is non-strict here.
                    if let Some(&floor) = self.min_next.get(worker) {
                        if *iteration < floor {
                            self.fail(
                                i,
                                format!(
                                    "singleton for worker {worker} \
                                     regresses to iteration {iteration} \
                                     (floor {floor})"
                                ),
                            );
                        }
                    }
                }
                TraceEvent::FaultInjected { worker, .. } => {
                    // Fault narration needs no prior state; it *creates*
                    // state: this worker's later eviction is justified.
                    if let Some(cfg) = &self.config {
                        if *worker >= cfg.num_workers {
                            self.fail(
                                i,
                                format!(
                                    "fault injected into out-of-range \
                                     worker {worker} (N = {})",
                                    cfg.num_workers
                                ),
                            );
                        }
                    }
                    self.faulted.insert(*worker, ());
                }
                TraceEvent::ProcessJoined { worker, .. } => {
                    self.require_started(i);
                    if let Some(cfg) = &self.config {
                        if *worker >= cfg.num_workers {
                            self.fail(
                                i,
                                format!(
                                    "out-of-range worker {worker} joined \
                                     the fleet (N = {})",
                                    cfg.num_workers
                                ),
                            );
                        }
                    }
                    if self.joined.insert(*worker, ()).is_some() {
                        self.fail(i, format!("worker {worker} joined the fleet twice"));
                    }
                }
                TraceEvent::ProcessDisconnected { worker } => {
                    self.require_started(i);
                    if !self.joined.contains_key(worker) {
                        self.fail(
                            i,
                            format!(
                                "disconnect reported for worker {worker} \
                                 that never joined the fleet"
                            ),
                        );
                    }
                    if self.departed.contains_key(worker) {
                        self.fail(
                            i,
                            format!(
                                "disconnect reported for worker {worker} \
                                 after it already departed"
                            ),
                        );
                    }
                    if self.disconnected.insert(*worker, ()).is_some() {
                        self.fail(i, format!("worker {worker} disconnected twice"));
                    }
                }
                TraceEvent::HeartbeatMissed { worker, misses } => {
                    self.require_started(i);
                    if *misses == 0 {
                        self.fail(
                            i,
                            format!("worker {worker} reported with zero missed heartbeats"),
                        );
                    }
                    if self.departed.contains_key(worker) {
                        self.fail(
                            i,
                            format!(
                                "heartbeat silence reported for worker \
                                 {worker} after it already departed"
                            ),
                        );
                    }
                    self.missed.insert(*worker, ());
                }
                TraceEvent::WorkerEvicted { worker, active } => {
                    self.on_evicted(i, *worker, *active)
                }
                TraceEvent::SnapshotTaken { worker, .. } => {
                    self.require_started(i);
                    if let Some(w) = worker {
                        if let Some(cfg) = &self.config {
                            if *w >= cfg.num_workers {
                                self.fail(
                                    i,
                                    format!(
                                        "snapshot of out-of-range worker \
                                         {w} (N = {})",
                                        cfg.num_workers
                                    ),
                                );
                            }
                        }
                        if self.departed.contains_key(w) {
                            self.fail(i, format!("snapshot taken of departed worker {w}"));
                        }
                    }
                }
                TraceEvent::WorkerRestored {
                    worker,
                    iteration,
                    active,
                } => self.on_restored(i, *worker, *iteration, *active),
                TraceEvent::ShardsReassigned { moved, total } => {
                    self.require_started(i);
                    if moved > total {
                        self.fail(
                            i,
                            format!(
                                "reassignment moved {moved} keys out of \
                                 only {total}"
                            ),
                        );
                    } else if *total > 0 && moved * 20 >= *total {
                        self.fail(
                            i,
                            format!(
                                "reassignment moved {moved} of {total} \
                                 survivor keys (≥5% gratuitous churn)"
                            ),
                        );
                    }
                }
                TraceEvent::RunFinished {
                    groups_formed,
                    repairs,
                    deferrals,
                    singletons,
                } => {
                    self.require_started(i);
                    for (label, reported, counted) in [
                        ("groups_formed", *groups_formed, self.groups),
                        ("repairs", *repairs, self.repairs),
                        ("deferrals", *deferrals, self.deferrals),
                        ("singletons", *singletons, self.singletons),
                    ] {
                        if reported != counted {
                            self.fail(
                                i,
                                format!(
                                    "RunFinished reports {label} = \
                                     {reported}, replay counted {counted}"
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Consumes the checker and renders the verdict. Strict-in-flight
    /// candidate violations are dropped here if the stream carried no
    /// [`TraceEvent::ReduceCompleted`] at all — the single-pass
    /// equivalent of the batch checker's pre-scan.
    pub fn finish(self) -> InvariantReport {
        let strict = self.strict_inflight;
        InvariantReport {
            events: self.index,
            groups: self.groups,
            repairs: self.repairs,
            violations: self
                .violations
                .into_iter()
                .filter(|p| strict || !p.strict_only)
                .map(|p| p.violation)
                .collect(),
        }
    }

    fn on_started(&mut self, index: usize, config: &ControllerConfig) {
        if self.config.is_some() {
            self.fail(index, "duplicate RunStarted".to_string());
            return;
        }
        if config.group_size < 2 || config.group_size > config.num_workers {
            self.fail(
                index,
                format!(
                    "invalid configuration: N = {}, P = {}",
                    config.num_workers, config.group_size
                ),
            );
        } else {
            self.conn = Some(WindowedConnectivity::new(
                config.num_workers,
                config.effective_window(),
            ));
        }
        self.active = Some(config.num_workers);
        self.config = Some(config.clone());
    }

    /// Enforces that `worker`'s reported iteration numbers strictly
    /// increase (monotonicity + DYN fast-forward adoption).
    fn bump_min_next(&mut self, index: usize, worker: usize, iteration: u64, what: &str) {
        if let Some(&floor) = self.min_next.get(&worker) {
            if iteration <= floor {
                self.fail(
                    index,
                    format!(
                        "worker {worker} {what} iteration {iteration} does \
                         not advance past {floor}"
                    ),
                );
            }
        }
        let entry = self.min_next.entry(worker).or_insert(iteration);
        *entry = (*entry).max(iteration);
    }

    fn on_enqueued(&mut self, index: usize, worker: usize, iteration: u64, queued: usize) {
        self.require_started(index);
        if let Some(cfg) = &self.config {
            if worker >= cfg.num_workers {
                self.fail(
                    index,
                    format!(
                        "signal from out-of-range worker {worker} \
                         (N = {})",
                        cfg.num_workers
                    ),
                );
                return;
            }
        }
        if self.departed.contains_key(&worker) {
            self.fail(
                index,
                format!("signal from departed worker {worker} was enqueued"),
            );
        }
        if self.in_flight.contains_key(&worker) {
            // Stands only under strict in-flight accounting — tagged, and
            // dropped at `finish` if the trace carries no completions.
            self.fail_strict(
                index,
                format!(
                    "worker {worker} signalled ready while still inside an \
                     in-flight group"
                ),
            );
        }
        self.bump_min_next(index, worker, iteration, "signalled");
        if self.pending.insert(worker, iteration).is_some() {
            self.fail(
                index,
                format!("worker {worker} signalled ready twice without reducing"),
            );
        }
        if queued != self.pending.len() {
            self.fail(
                index,
                format!(
                    "enqueue reports queue depth {queued}, replay holds {}",
                    self.pending.len()
                ),
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_group(
        &mut self,
        index: usize,
        sequence: u64,
        members: &[usize],
        iterations: &[u64],
        weights: &[f32],
        new_iteration: u64,
        repaired: bool,
    ) {
        self.require_started(index);
        self.groups += 1;
        if repaired {
            self.repairs += 1;
        }
        if sequence != self.expected_sequence {
            self.fail(
                index,
                format!(
                    "group sequence {sequence} out of order (expected {})",
                    self.expected_sequence
                ),
            );
        }
        self.expected_sequence = sequence + 1;

        // Exactly P distinct, in-range, still-active members.
        let shape = self.config.as_ref().map(|c| (c.group_size, c.num_workers));
        if let Some((group_size, num_workers)) = shape {
            if members.len() != group_size {
                self.fail(
                    index,
                    format!(
                        "group {sequence} has {} members, expected P = {group_size}",
                        members.len(),
                    ),
                );
            }
            if let Some(&bad) = members.iter().find(|&&m| m >= num_workers) {
                self.fail(
                    index,
                    format!("group {sequence} contains out-of-range worker {bad}"),
                );
            }
        }
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != members.len() {
            self.fail(
                index,
                format!("group {sequence} has duplicate members {members:?}"),
            );
        }
        for &m in members {
            if self.departed.contains_key(&m) {
                self.fail(
                    index,
                    format!("departed worker {m} appears in group {sequence}"),
                );
            }
            if self.evicted_pending.contains_key(&m) {
                self.fail(
                    index,
                    format!(
                        "evicted worker {m} appears in group {sequence} \
                         before its departure was recorded"
                    ),
                );
            }
            if self.in_flight.contains_key(&m) {
                self.fail_strict(
                    index,
                    format!(
                        "worker {m} sits in two in-flight groups \
                         (second is {sequence})"
                    ),
                );
            }
            self.in_flight.insert(m, members.to_vec());
        }

        // Each member consumes its queued signal, iterations aligned.
        if iterations.len() != members.len() {
            self.fail(
                index,
                format!(
                    "group {sequence}: {} iterations for {} members",
                    iterations.len(),
                    members.len()
                ),
            );
        }
        for (&m, &it) in members.iter().zip(iterations) {
            match self.pending.remove(&m) {
                None => self.fail(
                    index,
                    format!("group {sequence} member {m} had no queued signal"),
                ),
                Some(q) if q != it => self.fail(
                    index,
                    format!(
                        "group {sequence} member {m} recorded iteration \
                         {it}, its signal carried {q}"
                    ),
                ),
                Some(_) => {}
            }
        }

        // Fast-forward target is the group max; iterations never regress.
        if let Some(&max) = iterations.iter().max() {
            if new_iteration != max {
                self.fail(
                    index,
                    format!(
                        "group {sequence} fast-forwards to {new_iteration}, \
                         member max is {max}"
                    ),
                );
            }
        }
        let dynamic = matches!(
            self.config.as_ref().map(|c| c.mode),
            Some(AggregationMode::Dynamic { .. })
        );
        if dynamic {
            // §3.3.3: members adopt the group max, so their next report
            // must move strictly beyond it.
            for &m in members {
                let entry = self.min_next.entry(m).or_insert(new_iteration);
                *entry = (*entry).max(new_iteration);
            }
        }

        self.check_weights(index, sequence, iterations, weights, members);
        self.check_repair(index, sequence, members, repaired);
    }

    /// Weights must be a stochastic vector matching the configured mode.
    fn check_weights(
        &mut self,
        index: usize,
        sequence: u64,
        iterations: &[u64],
        weights: &[f32],
        members: &[usize],
    ) {
        if weights.len() != members.len() {
            self.fail(
                index,
                format!(
                    "group {sequence}: {} weights for {} members",
                    weights.len(),
                    members.len()
                ),
            );
            return;
        }
        if let Some(&w) = weights.iter().find(|&&w| w < -WEIGHT_EPS) {
            self.fail(index, format!("group {sequence} has negative weight {w}"));
        }
        let sum: f32 = weights.iter().sum();
        if (sum - 1.0).abs() > WEIGHT_EPS {
            self.fail(
                index,
                format!("group {sequence} weights sum to {sum}, not 1"),
            );
        }
        let expected: Option<Vec<f32>> = match self.config.as_ref().map(|c| c.mode) {
            Some(AggregationMode::Constant) if !weights.is_empty() => {
                Some(crate::weights::constant_weights(weights.len()))
            }
            Some(AggregationMode::Dynamic { alpha, gap_policy })
                if iterations.len() == weights.len() && !iterations.is_empty() =>
            {
                Some(dynamic_weights(iterations, alpha, gap_policy))
            }
            _ => None,
        };
        if let Some(expected) = expected {
            for (i, (&got, &want)) in weights.iter().zip(&expected).enumerate() {
                if (got - want).abs() > WEIGHT_EPS {
                    self.fail(
                        index,
                        format!(
                            "group {sequence} weight[{i}] = {got} deviates \
                             from the mode-prescribed {want}"
                        ),
                    );
                    break;
                }
            }
        }
    }

    /// A repair must happen on a warm, disconnected sync-graph and bridge
    /// at least two of its components (§4). The window is replayed
    /// through the incremental [`WindowedConnectivity`] structure; its
    /// components are exactly those of the batch rebuild-and-DFS
    /// (`GroupHistory::sync_graph(n).components()`), which remains the
    /// semantic reference the property tests compare against.
    fn check_repair(&mut self, index: usize, sequence: u64, members: &[usize], repaired: bool) {
        let Some(cfg) = self.config.clone() else {
            return;
        };
        if self.conn.is_none() {
            return;
        }
        if repaired {
            if !cfg.frozen_avoidance {
                self.fail(
                    index,
                    format!(
                        "group {sequence} repaired with frozen avoidance \
                         disabled"
                    ),
                );
            }
            let warm = self.conn.as_ref().map(|c| c.is_warm()).unwrap_or(false);
            if !warm {
                self.fail(
                    index,
                    format!(
                        "group {sequence} repaired before the history \
                         window warmed up"
                    ),
                );
            } else {
                let connected = match self.conn.as_mut() {
                    Some(c) => c.is_connected(),
                    None => true,
                };
                if connected {
                    self.fail(
                        index,
                        format!(
                            "group {sequence} repaired an already-connected \
                             sync-graph"
                        ),
                    );
                } else {
                    let mut spanned: Vec<usize> = Vec::with_capacity(members.len());
                    if let Some(conn) = self.conn.as_mut() {
                        for &m in members {
                            if m < cfg.num_workers {
                                spanned.push(conn.component_of(m));
                            }
                        }
                    }
                    spanned.sort_unstable();
                    spanned.dedup();
                    if spanned.len() < 2 {
                        self.fail(
                            index,
                            format!(
                                "repair group {sequence} does not bridge \
                                 sync-graph components"
                            ),
                        );
                    }
                }
            }
        }
        if members.iter().all(|&m| m < cfg.num_workers) {
            if let Some(conn) = self.conn.as_mut() {
                conn.record(members);
            }
        }
    }

    /// An eviction must be justified (prior silence, an injected fault,
    /// or a dropped control connection), must target a still-active
    /// worker, and must carry the post-eviction
    /// active count. The replayed `active` is *not* decremented here: the
    /// eviction routes through the ordinary departure path, so the
    /// worker's [`TraceEvent::WorkerLeft`] — carrying the same count —
    /// performs the decrement.
    fn on_evicted(&mut self, index: usize, worker: usize, active: usize) {
        self.require_started(index);
        if self.departed.contains_key(&worker) {
            self.fail(
                index,
                format!("worker {worker} evicted after it already departed"),
            );
        }
        if self.evicted_pending.insert(worker, ()).is_some() {
            self.fail(index, format!("worker {worker} evicted twice"));
        }
        if !self.missed.contains_key(&worker)
            && !self.faulted.contains_key(&worker)
            && !self.disconnected.contains_key(&worker)
        {
            self.fail(
                index,
                format!(
                    "worker {worker} evicted without prior HeartbeatMissed, \
                     FaultInjected, or ProcessDisconnected justification"
                ),
            );
        }
        match self.active {
            Some(prev) if prev == 0 => {
                self.fail(index, "more evictions than active workers".to_string());
            }
            Some(prev) => {
                if active != prev - 1 {
                    self.fail(
                        index,
                        format!(
                            "eviction reports {active} active workers, \
                             replay expects {}",
                            prev - 1
                        ),
                    );
                }
            }
            None => {}
        }
    }

    /// A restore must target a rank that actually departed, must carry
    /// the post-restore active count, and resets the worker's iteration
    /// floor to the snapshot iteration: durable state may predate the
    /// crash, so resuming *below* the last pre-crash report is
    /// legitimate — but the next report must still move past the
    /// snapshot (DESIGN.md §14).
    fn on_restored(&mut self, index: usize, worker: usize, iteration: u64, active: usize) {
        self.require_started(index);
        if let Some(cfg) = &self.config {
            if worker >= cfg.num_workers {
                self.fail(
                    index,
                    format!(
                        "restore of out-of-range worker {worker} (N = {})",
                        cfg.num_workers
                    ),
                );
                return;
            }
        }
        if self.departed.remove(&worker).is_none() {
            self.fail(
                index,
                format!("worker {worker} restored without having departed"),
            );
            return;
        }
        self.min_next.insert(worker, iteration);
        // The restored worker starts a fresh life: a later eviction needs
        // fresh justification, and its old control connection died with
        // the departure.
        self.faulted.remove(&worker);
        self.missed.remove(&worker);
        self.disconnected.remove(&worker);
        self.evicted_pending.remove(&worker);
        self.joined.remove(&worker);
        match self.active {
            Some(prev) => {
                let now = prev + 1;
                if let Some(cfg) = &self.config {
                    if now > cfg.num_workers {
                        self.fail(index, "more restores than fleet capacity".to_string());
                        return;
                    }
                }
                self.active = Some(now);
                if active != now {
                    self.fail(
                        index,
                        format!(
                            "restore reports {active} active workers, \
                             replay counted {now}"
                        ),
                    );
                }
            }
            None => {}
        }
    }

    fn on_left(&mut self, index: usize, worker: usize, active: usize, purged_signal: bool) {
        self.require_started(index);
        self.evicted_pending.remove(&worker);
        if self.departed.insert(worker, ()).is_some() {
            self.fail(index, format!("worker {worker} left twice"));
        }
        // The controller purges the departing worker's queued signal — the
        // event must agree with the replayed queue.
        let had_signal = self.pending.remove(&worker).is_some();
        if had_signal != purged_signal {
            self.fail(
                index,
                format!(
                    "departure of worker {worker} reports purged_signal = \
                     {purged_signal}, replayed queue says {had_signal}"
                ),
            );
        }
        match self.active {
            Some(prev) if prev == 0 => {
                self.fail(index, "more departures than workers".to_string());
            }
            Some(prev) => {
                let now = prev - 1;
                self.active = Some(now);
                if active != now {
                    self.fail(
                        index,
                        format!(
                            "departure reports {active} active workers, \
                             replay counted {now}"
                        ),
                    );
                }
            }
            None => {}
        }
    }

    fn on_completed(&mut self, index: usize, worker: usize, members: &[usize]) {
        if !members.contains(&worker) {
            self.fail(
                index,
                format!(
                    "worker {worker} completed a reduce for group \
                     {members:?} it is not a member of"
                ),
            );
            return;
        }
        if members.len() == 1 {
            // Singleton drain completions never pass through GroupFormed.
            return;
        }
        match self.in_flight.remove(&worker) {
            None => self.fail(
                index,
                format!(
                    "worker {worker} completed a reduce without an \
                     in-flight group"
                ),
            ),
            Some(assigned) if assigned != members => self.fail(
                index,
                format!(
                    "worker {worker} completed group {members:?} but was \
                     assigned {assigned:?}"
                ),
            ),
            Some(_) => {}
        }
    }
}

/// A [`TraceSink`] that checks invariants *live*: every event recorded by
/// the controller (or any other emitter) is fed straight into a
/// [`StreamingChecker`], so a violation is known the moment the run ends
/// — no trace file, no replay pass. Memory stays bounded by checker
/// state, making this the right sink for million-signal scale runs where
/// retaining the trace would dwarf the fleet itself.
pub struct CheckingSink {
    inner: Mutex<StreamingChecker>,
}

impl CheckingSink {
    /// Creates a sink wrapping a fresh checker.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(StreamingChecker::new()),
        }
    }

    /// Events fed so far.
    pub fn events(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .events()
    }

    /// Consumes the sink and renders the final verdict.
    pub fn into_report(self) -> InvariantReport {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .finish()
    }
}

impl Default for CheckingSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for CheckingSink {
    fn record(&self, event: TraceEvent) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .feed(&event);
    }

    fn flush(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Controller, ControllerConfig};
    use crate::trace::RingSink;
    use std::sync::Arc;

    /// Drives a traced controller through a few rounds and returns the
    /// events.
    fn healthy_trace(dynamic: bool) -> Vec<TraceEvent> {
        let cfg = if dynamic {
            ControllerConfig::dynamic(6, 3)
        } else {
            ControllerConfig::constant(6, 3)
        };
        let sink = Arc::new(RingSink::new(4096));
        let mut c = Controller::with_sink(cfg, sink.clone());
        let mut iter = [0u64; 6];
        let mut free = [true; 6];
        for _ in 0..12 {
            for w in 0..6 {
                if free[w] {
                    iter[w] += 1;
                    c.push_ready(w, iter[w]);
                    free[w] = false;
                }
            }
            while let Some(d) = c.try_form_group() {
                for &m in &d.group {
                    free[m] = true;
                    if dynamic {
                        iter[m] = d.new_iteration;
                    }
                }
            }
        }
        sink.snapshot()
    }

    #[test]
    fn healthy_constant_trace_is_clean() {
        let events = healthy_trace(false);
        let report = InvariantChecker::check(&events);
        assert!(report.is_clean(), "{report}");
        assert!(report.groups > 0);
    }

    #[test]
    fn healthy_dynamic_trace_is_clean() {
        let events = healthy_trace(true);
        let report = InvariantChecker::check(&events);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn duplicate_member_is_caught() {
        let mut events = healthy_trace(false);
        for e in &mut events {
            if let TraceEvent::GroupFormed { members, .. } = e {
                members[1] = members[0];
                break;
            }
        }
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("duplicate members")),
            "{report}"
        );
    }

    #[test]
    fn corrupted_weight_row_is_caught() {
        let mut events = healthy_trace(false);
        for e in &mut events {
            if let TraceEvent::GroupFormed { weights, .. } = e {
                weights[0] += 0.25;
                break;
            }
        }
        let report = InvariantChecker::check(&events);
        assert!(!report.is_clean(), "{report}");
    }

    #[test]
    fn iteration_regression_is_caught() {
        let mut events = healthy_trace(false);
        let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
        // Set a worker's *second* signal below its first.
        let mut target = None;
        for (i, e) in events.iter().enumerate() {
            if let TraceEvent::SignalEnqueued { worker, .. } = e {
                if seen.contains_key(worker) {
                    target = Some(i);
                    break;
                }
                seen.insert(*worker, i);
            }
        }
        let i = target.expect("trace has repeat signals");
        if let TraceEvent::SignalEnqueued { iteration, .. } = &mut events[i] {
            *iteration = 0;
        }
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("does not advance")),
            "{report}"
        );
    }

    #[test]
    fn bad_fast_forward_is_caught() {
        let mut events = healthy_trace(true);
        for e in &mut events {
            if let TraceEvent::GroupFormed { new_iteration, .. } = e {
                *new_iteration += 5;
                break;
            }
        }
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("fast-forwards")),
            "{report}"
        );
    }

    #[test]
    fn missing_run_started_is_reported_once() {
        let mut events = healthy_trace(false);
        events.remove(0);
        let report = InvariantChecker::check(&events);
        assert_eq!(
            report
                .violations
                .iter()
                .filter(|v| v.message.contains("RunStarted"))
                .count(),
            1,
            "{report}"
        );
    }

    #[test]
    fn departed_member_in_group_is_caught() {
        let events = vec![
            TraceEvent::RunStarted {
                config: ControllerConfig::constant(4, 2),
            },
            TraceEvent::SignalEnqueued {
                worker: 0,
                iteration: 1,
                queued: 1,
            },
            TraceEvent::WorkerLeft {
                worker: 1,
                active: 3,
                purged_signal: false,
            },
            TraceEvent::SignalEnqueued {
                worker: 1,
                iteration: 1,
                queued: 2,
            },
            TraceEvent::GroupFormed {
                sequence: 0,
                members: vec![0, 1],
                iterations: vec![1, 1],
                weights: vec![0.5, 0.5],
                new_iteration: 1,
                repaired: false,
            },
        ];
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("departed worker 1")),
            "{report}"
        );
    }

    /// A well-formed eviction narrative: silence, eviction with the
    /// post-eviction count, then the ordinary departure event.
    fn eviction_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStarted {
                config: ControllerConfig::constant(4, 2),
            },
            TraceEvent::HeartbeatMissed {
                worker: 2,
                misses: 3,
            },
            TraceEvent::WorkerEvicted {
                worker: 2,
                active: 3,
            },
            TraceEvent::WorkerLeft {
                worker: 2,
                active: 3,
                purged_signal: false,
            },
        ]
    }

    #[test]
    fn justified_eviction_is_clean() {
        let report = InvariantChecker::check(&eviction_trace());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn fault_injection_justifies_eviction() {
        let mut events = eviction_trace();
        events[1] = TraceEvent::FaultInjected {
            worker: 2,
            fault: "crash@40".to_string(),
            iteration: 40,
        };
        let report = InvariantChecker::check(&events);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn unjustified_eviction_is_caught() {
        let mut events = eviction_trace();
        events.remove(1); // drop the HeartbeatMissed
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("without prior")),
            "{report}"
        );
    }

    #[test]
    fn eviction_active_count_mismatch_is_caught() {
        let mut events = eviction_trace();
        if let TraceEvent::WorkerEvicted { active, .. } = &mut events[2] {
            *active = 4; // pre-eviction count smuggled in
        }
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("eviction reports 4 active")),
            "{report}"
        );
    }

    #[test]
    fn evicted_member_in_group_before_departure_is_caught() {
        let mut events = eviction_trace();
        events.pop(); // eviction never resolved by WorkerLeft
        events.extend([
            TraceEvent::SignalEnqueued {
                worker: 2,
                iteration: 1,
                queued: 1,
            },
            TraceEvent::SignalEnqueued {
                worker: 0,
                iteration: 1,
                queued: 2,
            },
            TraceEvent::GroupFormed {
                sequence: 0,
                members: vec![0, 2],
                iterations: vec![1, 1],
                weights: vec![0.5, 0.5],
                new_iteration: 1,
                repaired: false,
            },
        ]);
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("evicted worker 2 appears")),
            "{report}"
        );
    }

    /// A well-formed process-fleet narrative: join, disconnect, eviction
    /// justified by the dropped connection, then ordinary departure.
    fn fleet_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStarted {
                config: ControllerConfig::constant(4, 2),
            },
            TraceEvent::ProcessJoined {
                worker: 2,
                addr: "127.0.0.1:4242".to_string(),
            },
            TraceEvent::ProcessDisconnected { worker: 2 },
            TraceEvent::WorkerEvicted {
                worker: 2,
                active: 3,
            },
            TraceEvent::WorkerLeft {
                worker: 2,
                active: 3,
                purged_signal: false,
            },
        ]
    }

    #[test]
    fn disconnect_justifies_eviction() {
        let report = InvariantChecker::check(&fleet_trace());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn disconnect_without_join_is_caught() {
        let mut events = fleet_trace();
        events.remove(1); // drop the ProcessJoined
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("never joined")),
            "{report}"
        );
    }

    #[test]
    fn duplicate_join_is_caught() {
        let mut events = fleet_trace();
        events.insert(
            2,
            TraceEvent::ProcessJoined {
                worker: 2,
                addr: "127.0.0.1:4243".to_string(),
            },
        );
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("joined the fleet twice")),
            "{report}"
        );
    }

    #[test]
    fn disconnect_after_departure_is_caught() {
        let mut events = fleet_trace();
        events.push(TraceEvent::ProcessDisconnected { worker: 2 });
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("after it already departed")),
            "{report}"
        );
    }

    #[test]
    fn out_of_range_join_is_caught() {
        let mut events = fleet_trace();
        events.insert(
            1,
            TraceEvent::ProcessJoined {
                worker: 9,
                addr: "127.0.0.1:9999".to_string(),
            },
        );
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("out-of-range worker 9 joined")),
            "{report}"
        );
    }

    /// A well-formed elasticity narrative (DESIGN.md §14): snapshot,
    /// crash departure, restore from the snapshot, reshard, and the
    /// resumed signal one past the snapshot iteration.
    fn elastic_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStarted {
                config: ControllerConfig::constant(4, 2),
            },
            TraceEvent::SnapshotTaken {
                worker: Some(2),
                iteration: 5,
            },
            TraceEvent::SnapshotTaken {
                worker: None,
                iteration: 0,
            },
            TraceEvent::FaultInjected {
                worker: 2,
                fault: "crash@8".to_string(),
                iteration: 8,
            },
            TraceEvent::WorkerEvicted {
                worker: 2,
                active: 3,
            },
            TraceEvent::WorkerLeft {
                worker: 2,
                active: 3,
                purged_signal: false,
            },
            TraceEvent::WorkerRestored {
                worker: 2,
                iteration: 5,
                active: 4,
            },
            TraceEvent::ShardsReassigned {
                moved: 3,
                total: 100,
            },
            TraceEvent::SignalEnqueued {
                worker: 2,
                iteration: 6,
                queued: 1,
            },
        ]
    }

    #[test]
    fn elastic_restore_narrative_is_clean() {
        let report = InvariantChecker::check(&elastic_trace());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn restore_rewinds_the_iteration_floor() {
        // The worker reported iteration 8 before crashing; resuming at 6
        // after a restore from the iteration-5 snapshot is legitimate
        // time-travel back to durable state.
        let events = vec![
            TraceEvent::RunStarted {
                config: ControllerConfig::constant(4, 2),
            },
            TraceEvent::SignalEnqueued {
                worker: 2,
                iteration: 8,
                queued: 1,
            },
            TraceEvent::SnapshotTaken {
                worker: Some(2),
                iteration: 5,
            },
            TraceEvent::FaultInjected {
                worker: 2,
                fault: "crash@8".to_string(),
                iteration: 8,
            },
            TraceEvent::WorkerLeft {
                worker: 2,
                active: 3,
                purged_signal: true,
            },
            TraceEvent::WorkerRestored {
                worker: 2,
                iteration: 5,
                active: 4,
            },
            TraceEvent::SignalEnqueued {
                worker: 2,
                iteration: 6,
                queued: 1,
            },
        ];
        let report = InvariantChecker::check(&events);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn restored_worker_must_advance_past_the_snapshot() {
        let mut events = elastic_trace();
        let last = events.len() - 1;
        if let TraceEvent::SignalEnqueued { iteration, .. } = &mut events[last] {
            *iteration = 5; // stuck at the snapshot, not past it
        }
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("does not advance")),
            "{report}"
        );
    }

    #[test]
    fn restore_without_departure_is_caught() {
        let events = vec![
            TraceEvent::RunStarted {
                config: ControllerConfig::constant(4, 2),
            },
            TraceEvent::WorkerRestored {
                worker: 1,
                iteration: 3,
                active: 5,
            },
        ];
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("without having departed")),
            "{report}"
        );
    }

    #[test]
    fn restore_active_count_mismatch_is_caught() {
        let mut events = elastic_trace();
        for e in &mut events {
            if let TraceEvent::WorkerRestored { active, .. } = e {
                *active = 3; // pre-restore count smuggled in
            }
        }
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("restore reports 3 active")),
            "{report}"
        );
    }

    #[test]
    fn snapshot_of_departed_worker_is_caught() {
        let mut events = elastic_trace();
        let restore_at = events
            .iter()
            .position(|e| matches!(e, TraceEvent::WorkerRestored { .. }))
            .unwrap();
        events.insert(
            restore_at,
            TraceEvent::SnapshotTaken {
                worker: Some(2),
                iteration: 8,
            },
        );
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("snapshot taken of departed worker 2")),
            "{report}"
        );
    }

    #[test]
    fn excessive_reshard_churn_is_caught() {
        let mut events = elastic_trace();
        for e in &mut events {
            if let TraceEvent::ShardsReassigned { moved, .. } = e {
                *moved = 5; // exactly the 5% boundary — still too much
            }
        }
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("gratuitous churn")),
            "{report}"
        );
    }

    #[test]
    fn counter_mismatch_at_run_finished_is_caught() {
        let mut events = healthy_trace(false);
        events.push(TraceEvent::RunFinished {
            groups_formed: 10_000,
            repairs: 0,
            deferrals: 0,
            singletons: 0,
        });
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("groups_formed")),
            "{report}"
        );
    }

    /// Every golden trace this module builds, healthy and corrupted,
    /// used to pin streaming/batch/sink equivalence.
    fn golden_traces() -> Vec<(&'static str, Vec<TraceEvent>)> {
        let mut traces = vec![
            ("healthy_con", healthy_trace(false)),
            ("healthy_dyn", healthy_trace(true)),
            ("eviction", eviction_trace()),
            ("fleet", fleet_trace()),
            ("elastic", elastic_trace()),
        ];
        // Corrupted variants so equivalence also covers violation paths.
        let mut dup = healthy_trace(false);
        for e in &mut dup {
            if let TraceEvent::GroupFormed { members, .. } = e {
                members[1] = members[0];
                break;
            }
        }
        traces.push(("dup_member", dup));
        let mut churn = elastic_trace();
        for e in &mut churn {
            if let TraceEvent::ShardsReassigned { moved, .. } = e {
                *moved = 5;
            }
        }
        traces.push(("reshard_churn", churn));
        traces
    }

    #[test]
    fn streaming_feed_matches_batch_on_golden_traces() {
        for (name, events) in golden_traces() {
            let batch = InvariantChecker::check(&events);
            let mut streaming = StreamingChecker::new();
            for e in &events {
                streaming.feed(e);
            }
            assert_eq!(streaming.finish(), batch, "trace {name}");
        }
    }

    #[test]
    fn checking_sink_matches_batch_on_golden_traces() {
        for (name, events) in golden_traces() {
            let batch = InvariantChecker::check(&events);
            let sink = CheckingSink::new();
            for e in &events {
                sink.record(e.clone());
            }
            assert_eq!(sink.events(), events.len(), "trace {name}");
            assert_eq!(sink.into_report(), batch, "trace {name}");
        }
    }

    #[test]
    fn streaming_jsonl_matches_batch() {
        let events = healthy_trace(true);
        let batch = InvariantChecker::check(&events);
        let dir = std::env::temp_dir().join(format!(
            "preduce-inv-{}-{}",
            std::process::id(),
            events.len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("golden.jsonl");
        let mut body = String::new();
        for e in &events {
            body.push_str(&serde_json::to_string(e).unwrap());
            body.push('\n');
        }
        std::fs::write(&path, body).unwrap();
        let streamed = InvariantChecker::check_jsonl(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(streamed, batch);
    }

    /// A ready signal from a worker still inside an in-flight group is
    /// only a violation when the trace carries completions at all — the
    /// strict tag must make a single streaming pass reproduce the batch
    /// checker's old pre-scan semantics.
    #[test]
    fn inflight_signal_ignored_without_completions() {
        let mut events = healthy_trace(false);
        let pos = events
            .iter()
            .position(|e| matches!(e, TraceEvent::GroupFormed { .. }))
            .unwrap();
        let (member, consumed) = match &events[pos] {
            TraceEvent::GroupFormed { members, .. } => (members[0], members.len()),
            _ => unreachable!(),
        };
        let enqueued = events[..pos]
            .iter()
            .filter(|e| matches!(e, TraceEvent::SignalEnqueued { .. }))
            .count();
        events.truncate(pos + 1);
        events.push(TraceEvent::SignalEnqueued {
            worker: member,
            iteration: 1_000,
            queued: enqueued - consumed + 1,
        });
        let report = InvariantChecker::check(&events);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn inflight_signal_caught_once_completions_appear() {
        let mut events = healthy_trace(false);
        let pos = events
            .iter()
            .position(|e| matches!(e, TraceEvent::GroupFormed { .. }))
            .unwrap();
        let (member, members, new_iteration) = match &events[pos] {
            TraceEvent::GroupFormed {
                members,
                new_iteration,
                ..
            } => (members[0], members.clone(), *new_iteration),
            _ => unreachable!(),
        };
        let enqueued = events[..pos]
            .iter()
            .filter(|e| matches!(e, TraceEvent::SignalEnqueued { .. }))
            .count();
        events.truncate(pos + 1);
        events.push(TraceEvent::SignalEnqueued {
            worker: member,
            iteration: 1_000,
            queued: enqueued - members.len() + 1,
        });
        // A completion anywhere in the stream — even after the offending
        // signal — retroactively enforces in-flight accounting.
        events.push(TraceEvent::ReduceCompleted {
            worker: member,
            members,
            new_iteration,
        });
        let report = InvariantChecker::check(&events);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.message.contains("still inside an in-flight group")),
            "{report}"
        );
        // And the streaming path agrees event for event.
        let mut streaming = StreamingChecker::new();
        for e in &events {
            streaming.feed(e);
        }
        assert_eq!(streaming.finish(), report);
    }
}
