//! Golden trajectory tests for the simulator projections of the engine.
//!
//! The engine refactor moved every sim strategy loop verbatim into
//! [`preduce_trainer::engine::drivers`]; these tests pin the resulting
//! trajectories bit-for-bit so future refactors cannot silently change
//! simulated results. Goldens are self-bootstrapping: the first run on a
//! machine records `tests/goldens/<strategy>.json`; every later run (and
//! every run on CI, where the recorded files are committed) asserts exact
//! equality. Within one test run each strategy also executes twice, so
//! same-seed determinism is checked even before a golden file exists.

use preduce_data::cifar10_like;
use preduce_models::zoo;
use preduce_trainer::{run_experiment, ExperimentConfig, RunResult, Strategy};
use serde::{Deserialize, Serialize};

/// The pinned slice of a [`RunResult`]: everything the simulator computes
/// deterministically. (`per_update_samples` is capped by the driver and
/// redundant with `run_time`/`updates`, so it is left out.)
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Golden {
    run_time: f64,
    updates: u64,
    final_accuracy: f64,
    trace: Vec<(f64, u64, f64)>,
}

impl Golden {
    fn of(r: &RunResult) -> Self {
        Golden {
            run_time: r.run_time,
            updates: r.updates,
            final_accuracy: r.final_accuracy,
            trace: r
                .trace
                .iter()
                .map(|p| (p.time, p.updates, p.accuracy))
                .collect(),
        }
    }
}

/// N = 8 with a moderate heterogeneity level: large enough that group
/// formation, fast-forwarding, and backup/staleness paths all exercise,
/// small enough for test latency.
fn config() -> ExperimentConfig {
    let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 2);
    c.num_workers = 8;
    c.max_updates = 48;
    c.eval_every = 16;
    c.threshold = 0.999; // unreachable: full-length, cap-bounded runs
    c
}

/// `"P-Reduce CON (P=3)"` → `"p-reduce-con-p-3"`.
fn slug(label: &str) -> String {
    let mut s = String::new();
    for ch in label.chars() {
        if ch.is_ascii_alphanumeric() {
            s.push(ch.to_ascii_lowercase());
        } else if !s.ends_with('-') && !s.is_empty() {
            s.push('-');
        }
    }
    s.trim_end_matches('-').to_string()
}

#[test]
fn sim_trajectories_are_deterministic_and_match_goldens() {
    let c = config();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    std::fs::create_dir_all(&dir).expect("create goldens directory");

    for s in Strategy::table1_lineup(c.num_workers) {
        let first = run_experiment(s, &c);
        let again = run_experiment(s, &c);
        let golden = Golden::of(&first);
        assert_eq!(
            golden,
            Golden::of(&again),
            "{}: two same-seed runs diverged",
            first.strategy
        );

        let path = dir.join(format!("{}.json", slug(&first.strategy)));
        if path.exists() {
            let text = std::fs::read_to_string(&path).expect("read golden");
            let recorded: Golden = serde_json::from_str(&text).expect("parse golden");
            assert_eq!(
                golden,
                recorded,
                "{}: trajectory drifted from recorded golden {}",
                first.strategy,
                path.display()
            );
        } else {
            // First run on this machine: record the golden.
            let json = serde_json::to_string_pretty(&golden).expect("serialize golden");
            std::fs::write(&path, json).expect("write golden");
            eprintln!("recorded new golden {}", path.display());
        }
    }
}
