//! Analytic communication cost model (α–β model: per-message latency α plus
//! bytes/bandwidth β).
//!
//! Collective costs follow the standard algorithm analyses the paper's
//! systems use: ring all-reduce (Gloo/NCCL), sharded parameter-server
//! push/pull (co-located shards, all-to-all), and pairwise gossip (AD-PSGD).

use serde::{Deserialize, Serialize};

/// Cluster network parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Per-link bandwidth in bytes/second (paper cluster: 10 GbE ⇒ 1.25e9).
    pub bandwidth: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
    /// Incast/congestion multiplier applied to parameter-server traffic
    /// (star topologies suffer incast that rings avoid; ≥ 1).
    pub ps_incast_factor: f64,
}

impl NetworkModel {
    /// 10 GbE with 50 µs latency — the calibration used against the paper's
    /// cluster (see EXPERIMENTS.md).
    pub fn ten_gbe() -> Self {
        NetworkModel {
            bandwidth: 1.25e9,
            latency: 50e-6,
            // Calibrated against the paper's PS per-update times: its
            // star-pattern traffic pays roughly 2x the ring's effective
            // cost (incast + unsynchronized transfers).
            ps_incast_factor: 2.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics if bandwidth/latency are not positive/non-negative or the
    /// incast factor is below 1.
    pub fn validate(&self) {
        assert!(
            self.bandwidth > 0.0 && self.bandwidth.is_finite(),
            "bandwidth must be positive"
        );
        assert!(
            self.latency >= 0.0 && self.latency.is_finite(),
            "latency must be non-negative"
        );
        assert!(self.ps_incast_factor >= 1.0, "incast factor must be ≥ 1");
    }

    /// Point-to-point transfer time for `bytes`.
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Ring all-reduce among `p` participants moving a `bytes`-sized model:
    /// reduce-scatter plus all-gather, `2(p−1)` steps of `bytes/p` each, so
    /// `2(p−1)/p · bytes/BW + 2(p−1)·α`. `p = 1` costs nothing.
    ///
    /// This is the cost of one All-Reduce *and* of one partial-reduce among
    /// a group of size `p` — the primitive "preserves the communication
    /// bandwidth utilization" (§3.1.1) precisely because it runs the same
    /// ring algorithm on a smaller group.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn ring_allreduce_time(&self, p: usize, bytes: u64) -> f64 {
        assert!(p > 0, "ring of zero participants");
        if p == 1 {
            return 0.0;
        }
        let steps = 2 * (p - 1);
        steps as f64 * (self.latency + bytes as f64 / p as f64 / self.bandwidth)
    }

    /// One worker's parameter-server round trip (push gradients + pull
    /// model) against a PS sharded across `n` nodes: the worker exchanges
    /// `(n−1)/n` of the model with remote shards in each direction, scaled
    /// by the incast factor.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn ps_push_pull_time(&self, n: usize, bytes: u64) -> f64 {
        assert!(n > 0, "parameter server with zero shards");
        if n == 1 {
            return 0.0;
        }
        let remote_fraction = (n - 1) as f64 / n as f64;
        2.0 * (self.latency
            + remote_fraction * bytes as f64 / self.bandwidth * self.ps_incast_factor)
    }

    /// Pairwise model exchange-and-average (AD-PSGD gossip): both models
    /// cross the link once.
    pub fn gossip_pair_time(&self, bytes: u64) -> f64 {
        2.0 * self.latency + bytes as f64 / self.bandwidth
    }

    /// Controller signaling time: a ready signal or group notification is a
    /// few bytes, so this is one network latency (§4: "each message from the
    /// workers is only a few bytes so that it will not involve any
    /// communication overheads").
    pub fn signal_time(&self) -> f64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel {
            bandwidth: 1e9,
            latency: 1e-4,
            ps_incast_factor: 1.2,
        }
    }

    #[test]
    fn p2p_is_alpha_beta() {
        let n = net();
        assert!((n.p2p_time(1_000_000) - (1e-4 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn ring_allreduce_formula() {
        let n = net();
        // p=4, bytes=4e6: 6 steps of (1e-4 + 1e6/1e9) = 6 * 1.1e-3
        let t = n.ring_allreduce_time(4, 4_000_000);
        assert!((t - 6.0 * (1e-4 + 1e-3)).abs() < 1e-12);
        assert_eq!(n.ring_allreduce_time(1, 4_000_000), 0.0);
    }

    #[test]
    fn smaller_groups_are_cheaper() {
        let n = net();
        let bytes = 80_000_000;
        let t2 = n.ring_allreduce_time(2, bytes);
        let t4 = n.ring_allreduce_time(4, bytes);
        let t8 = n.ring_allreduce_time(8, bytes);
        assert!(t2 < t4 && t4 < t8);
        // But the bandwidth term saturates at 2·bytes/BW: large-p cost is
        // dominated by latency growth, not bandwidth.
        let bw_only = 2.0 * bytes as f64 / n.bandwidth;
        assert!(t8 < bw_only + 14.0 * n.latency + 1e-9);
    }

    #[test]
    fn ps_round_trip_scales_with_remote_fraction() {
        let n = net();
        let t1 = n.ps_push_pull_time(1, 1_000_000);
        assert_eq!(t1, 0.0); // single node: everything is local
        let t2 = n.ps_push_pull_time(2, 1_000_000);
        let t8 = n.ps_push_pull_time(8, 1_000_000);
        assert!(t2 < t8);
        // Check the exact n=2 value: 2·(α + 0.5·bytes/BW·1.2)
        assert!((t2 - 2.0 * (1e-4 + 0.5 * 1e-3 * 1.2)).abs() < 1e-12);
    }

    #[test]
    fn gossip_costs_one_crossing_each_way() {
        let n = net();
        assert!((n.gossip_pair_time(1_000_000) - (2e-4 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn signal_is_latency_only() {
        assert_eq!(net().signal_time(), 1e-4);
    }

    #[test]
    #[should_panic(expected = "zero participants")]
    fn ring_rejects_zero() {
        net().ring_allreduce_time(0, 1);
    }

    #[test]
    fn ten_gbe_preset_validates() {
        let n = NetworkModel::ten_gbe();
        n.validate();
        assert_eq!(n.bandwidth, 1.25e9);
        assert_eq!(n.ps_incast_factor, 2.0);
    }
}
