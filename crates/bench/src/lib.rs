//! Shared support for the experiment binaries (one per paper table/figure)
//! and the criterion micro-benches.
//!
//! Every binary honors the `PREDUCE_QUICK` environment variable: set it to
//! any value to run a reduced-scale version (fewer strategies / smaller
//! caps) for smoke-testing; leave it unset for the full reproduction used
//! in EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod configs;
pub mod output;

pub use configs::{quick_mode, table1_config};
pub use output::{fmt_seconds, print_run_row, TableWriter};
