//! The substrate-agnostic execution engine.
//!
//! Each strategy is written **once** as a state machine
//! ([`drivers::StrategyDriver`]); the deterministic virtual-time simulator
//! and the real-thread runtime are two interchangeable substrates that
//! drive it ([`SimSubstrate`], [`ThreadedSubstrate`]). [`run`] is the one
//! entry point: pick a [`Strategy`], a config, and a [`Backend`], and get
//! a [`RunResult`] either way — with the same trace vocabulary flowing to
//! the given [`TraceSink`] from both substrates.

pub mod drivers;
pub mod process;
pub mod scale;
pub mod setup;
pub mod substrate;

use std::collections::BTreeMap;
use std::sync::Arc;

use partial_reduce::TraceSink;
use preduce_simnet::FaultPlan;

pub use drivers::{driver_for, StrategyDriver};
pub use scale::{run_scale, ScaleConfig, ScaleReport};
pub use substrate::{Backend, SimSubstrate, Substrate, ThreadedSubstrate};

use crate::config::ExperimentConfig;
use crate::elastic::ElasticOptions;
use crate::metrics::RunResult;
use crate::strategy::Strategy;
use partial_reduce::runtime::ControllerStats;

/// Iteration budget per worker for threaded runs when the config leaves
/// [`ExperimentConfig::threaded_iters`] unset: enough rounds for group
/// formation, fast-forwarding, and drain to all exercise, small enough to
/// stay sub-second per strategy on one machine.
pub const DEFAULT_THREADED_ITERS: u64 = 40;

/// What an engine run produced: the cross-substrate [`RunResult`] plus the
/// threaded-only observables (per-rank iteration counts, controller
/// stats) when the backend provides them.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The run's result in the common vocabulary of both substrates.
    pub result: RunResult,
    /// Per-rank final iteration counts (threaded backend only).
    pub iterations: Option<Vec<u64>>,
    /// Controller statistics (threaded P-Reduce/gossip runs only).
    pub controller: Option<ControllerStats>,
}

/// Runs `strategy` under `config` on the chosen backend, narrating the
/// control plane to `sink`.
///
/// On [`Backend::Sim`] the run finishes at the accuracy threshold or the
/// update cap and the result carries the full convergence trace. On
/// [`Backend::Threaded`] every worker runs its iteration budget
/// ([`ExperimentConfig::threaded_iters`] or [`DEFAULT_THREADED_ITERS`]) on
/// a real OS thread; timing is wall-clock, the trace is empty (real runs
/// are observed through `sink`, not virtual checkpoints), and `converged`
/// is always `false` because no threshold gates the loop.
///
/// # Panics
/// Panics if the config is invalid or a worker/controller thread panics.
pub fn run(
    strategy: Strategy,
    config: &ExperimentConfig,
    backend: Backend,
    sink: Arc<dyn TraceSink>,
) -> EngineRun {
    run_with_faults(strategy, config, backend, sink, FaultPlan::none())
}

/// Like [`run`], but the run executes under a [`FaultPlan`] (DESIGN.md
/// §11): crashes, stalls, delayed signals, and late joins, applied with
/// the same semantics by both substrates. The empty plan is exactly
/// [`run`]. Fault plans are honored by the P-Reduce drivers — the
/// strategy whose controller is built to absorb them; the synchronous
/// baselines would simply deadlock on a crashed member, so they ignore
/// the plan (documented in EXPERIMENTS.md).
///
/// # Panics
/// Panics if the config is invalid or a worker/controller thread panics.
pub fn run_with_faults(
    strategy: Strategy,
    config: &ExperimentConfig,
    backend: Backend,
    sink: Arc<dyn TraceSink>,
    faults: FaultPlan,
) -> EngineRun {
    run_elastic(
        strategy,
        config,
        backend,
        sink,
        faults,
        ElasticOptions::none(),
    )
}

/// Like [`run_with_faults`], but additionally under [`ElasticOptions`]
/// (DESIGN.md §14): periodic worker/controller snapshots, a warm start
/// from an earlier checkpoint directory, and — on the simulator — the
/// `restore:W@U` fault verb that re-admits a crashed worker from its
/// snapshot mid-run. Inert options make this exactly
/// [`run_with_faults`], bit for bit.
///
/// # Panics
/// Panics if the config is invalid, a worker/controller thread panics, or
/// the elasticity options name an unreadable/corrupt checkpoint (a
/// configuration error, surfaced loudly rather than trained through).
pub fn run_elastic(
    strategy: Strategy,
    config: &ExperimentConfig,
    backend: Backend,
    sink: Arc<dyn TraceSink>,
    faults: FaultPlan,
    elastic: ElasticOptions,
) -> EngineRun {
    let driver = driver_for(strategy);
    match backend {
        Backend::Sim => {
            let substrate = SimSubstrate::new(config)
                .with_sink(sink)
                .with_faults(faults)
                .with_elastic(elastic);
            EngineRun {
                result: driver.drive_sim(substrate),
                iterations: None,
                controller: None,
            }
        }
        Backend::Threaded => {
            let iters = config.threaded_iters.unwrap_or(DEFAULT_THREADED_ITERS);
            let substrate = ThreadedSubstrate::new(config, iters)
                .with_sink(sink)
                .with_faults(faults)
                .with_elastic(elastic);
            let report = driver.drive_threaded(&substrate);
            let updates: u64 = report.iterations.iter().sum();
            let mut stats = BTreeMap::new();
            if let Some(c) = report.controller {
                stats.insert("groups".into(), c.groups_formed as f64);
                stats.insert("repairs".into(), c.repairs as f64);
                stats.insert("singletons".into(), c.singletons as f64);
                stats.insert("evictions".into(), c.evictions as f64);
            }
            EngineRun {
                result: RunResult {
                    strategy: strategy.label(),
                    run_time: report.wall_seconds,
                    updates,
                    converged: false,
                    final_accuracy: report.accuracy,
                    trace: Vec::new(),
                    per_update_samples: Vec::new(),
                    stats,
                },
                iterations: Some(report.iterations),
                controller: report.controller,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partial_reduce::NullSink;
    use preduce_data::cifar10_like;
    use preduce_models::zoo;

    #[test]
    fn threaded_run_reports_in_common_vocabulary() {
        let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
        c.num_workers = 2;
        c.threaded_iters = Some(3);
        let run = run(
            Strategy::AllReduce,
            &c,
            Backend::Threaded,
            Arc::new(NullSink),
        );
        assert_eq!(run.result.strategy, "All-Reduce");
        assert_eq!(run.result.updates, 6); // 2 workers × 3 iterations
        assert_eq!(run.iterations.as_deref(), Some(&[3, 3][..]));
        assert!(run.result.trace.is_empty());
        assert!(!run.result.converged);
    }

    #[test]
    fn sim_run_matches_legacy_dispatch() {
        let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
        c.num_workers = 4;
        c.max_updates = 48;
        c.eval_every = 16;
        let engine = run(Strategy::AllReduce, &c, Backend::Sim, Arc::new(NullSink));
        let legacy = crate::experiment::run_experiment(Strategy::AllReduce, &c);
        assert_eq!(engine.result.run_time, legacy.run_time);
        assert_eq!(engine.result.updates, legacy.updates);
        assert_eq!(engine.result.final_accuracy, legacy.final_accuracy);
        assert!(engine.iterations.is_none());
    }
}
