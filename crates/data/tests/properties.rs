//! Property-based tests for dataset generation, sharding, and sampling.

use preduce_data::{
    shard_dataset, BatchSampler, Dataset, GaussianMixture, ShardStrategy, SynthConfig,
};
use preduce_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;

fn indexed_dataset(n: usize) -> Dataset {
    // Feature value encodes the example index — lets properties check
    // coverage exactly.
    let features = Tensor::from_vec((0..n).map(|i| i as f32).collect(), [n, 1]).unwrap();
    Dataset::new(features, (0..n).map(|i| i % 3).collect(), 3)
}

proptest! {
    #[test]
    fn sharding_partitions_exactly(
        n in 4usize..200,
        shards in 1usize..8,
        seed in any::<u64>(),
        strategy_pick in 0u8..3,
    ) {
        prop_assume!(shards <= n);
        let strategy = match strategy_pick {
            0 => ShardStrategy::Contiguous,
            1 => ShardStrategy::RoundRobin,
            _ => ShardStrategy::Shuffled { seed },
        };
        let ds = indexed_dataset(n);
        let parts = shard_dataset(&ds, shards, strategy);
        prop_assert_eq!(parts.len(), shards);
        let mut seen: Vec<i64> = parts
            .iter()
            .flat_map(|s| {
                (0..s.len()).map(|i| s.features().row(i)[0] as i64)
            })
            .collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as i64).collect::<Vec<_>>());
        // Near-equal sizes.
        let sizes: Vec<usize> = parts.iter().map(|s| s.len()).collect();
        prop_assert!(
            sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1
        );
    }

    #[test]
    fn batches_never_repeat_within(
        n in 8usize..100,
        batch in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut s = BatchSampler::new(indexed_dataset(n), batch, seed);
        for _ in 0..5 {
            let b = s.next_batch();
            let mut vals: Vec<i64> = (0..b.len())
                .map(|i| b.features.row(i)[0] as i64)
                .collect();
            vals.sort_unstable();
            let before = vals.len();
            vals.dedup();
            prop_assert_eq!(vals.len(), before, "duplicate inside batch");
        }
    }

    #[test]
    fn mixture_generation_is_seed_pure(
        seed in any::<u64>(),
        classes in 2usize..8,
    ) {
        let cfg = SynthConfig {
            num_classes: classes,
            num_samples: 64,
            seed,
            ..SynthConfig::default()
        };
        let a = GaussianMixture::new(cfg.clone()).generate();
        let b = GaussianMixture::new(cfg).generate();
        prop_assert_eq!(a.features(), b.features());
        prop_assert_eq!(a.labels(), b.labels());
        prop_assert!(a.labels().iter().all(|&y| y < classes));
    }

    #[test]
    fn label_noise_fraction_is_respected(
        noise_pct in 0u8..=100,
    ) {
        let frac = noise_pct as f64 / 100.0;
        let n = 4000;
        let ds = indexed_dataset(n);
        let before = ds.labels().to_vec();
        let noisy = ds.with_label_noise(
            frac,
            &mut rand::rngs::StdRng::seed_from_u64(1),
        );
        let changed = noisy
            .labels()
            .iter()
            .zip(&before)
            .filter(|(a, b)| a != b)
            .count() as f64
            / n as f64;
        // A resampled label matches the old one 1/3 of the time, so the
        // observed change rate is ≈ frac·(2/3).
        let expected = frac * 2.0 / 3.0;
        prop_assert!(
            (changed - expected).abs() < 0.06,
            "noise {frac}: changed {changed}, expected {expected}"
        );
        prop_assert!(noisy.labels().iter().all(|&y| y < 3));
    }

    #[test]
    fn split_test_is_a_partition(
        n in 10usize..100,
        test in 1usize..9,
    ) {
        prop_assume!(test < n);
        let (train, held) = indexed_dataset(n).split_test(test);
        prop_assert_eq!(train.len() + held.len(), n);
        prop_assert_eq!(held.len(), test);
        // Held-out examples are exactly the tail.
        prop_assert_eq!(held.features().row(0)[0], (n - test) as f32);
    }
}
