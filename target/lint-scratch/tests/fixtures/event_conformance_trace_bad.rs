// Fixture: the protocol enum, with one variant (`Retired`) that nothing
// emits or checks — defined-but-dead.
// Scanned as crates/core/src/trace.rs (never compiled).

/// The trace-event vocabulary.
pub enum TraceEvent {
    RunStarted { workers: usize },
    GroupFormed { id: u64, size: usize },
    Retired { id: u64 },
    Phantom { id: u64 },
}
