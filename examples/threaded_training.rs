//! The prototype system live: real worker threads, a real controller
//! thread, and the partial-reduce primitive over the in-process
//! message-passing fabric — the same architecture as the paper's
//! PyTorch + Gloo prototype (§4), rebuilt in Rust.
//!
//! Run: `cargo run --release --example threaded_training`

use preduce::data::cifar10_like;
use preduce::models::zoo;
use preduce::partial_reduce::runtime::spawn_tcp;
use preduce::partial_reduce::ControllerConfig;
use preduce::trainer::threaded::{train_threaded_allreduce, train_threaded_preduce};
use preduce::trainer::ExperimentConfig;

fn main() {
    let mut config = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
    config.num_workers = 6;
    config.sgd.lr = 0.05;
    let iters = 150;

    println!("6 worker threads x {iters} local updates each, resnet18 analog on cifar10-like\n");

    let ar = train_threaded_allreduce(&config, iters);
    println!(
        "threaded All-Reduce : wall {:>6.2}s  accuracy {:.3}  iterations {:?}",
        ar.wall_seconds, ar.accuracy, ar.iterations
    );

    for (label, ctl) in [
        ("P-Reduce CON (P=3)", ControllerConfig::constant(6, 3)),
        ("P-Reduce DYN (P=3)", ControllerConfig::dynamic(6, 3)),
    ] {
        let r = train_threaded_preduce(&config, ctl, iters);
        let stats = r.controller.expect("controller stats");
        println!(
            "threaded {label}: wall {:>6.2}s  accuracy {:.3}  groups {}  repairs {}  drain singletons {}",
            r.wall_seconds,
            r.accuracy,
            stats.groups_formed,
            stats.repairs,
            stats.singletons
        );
    }

    // The paper prototype's control plane: the same primitive over a real
    // TCP message queue on loopback (only the few-byte signals cross
    // sockets; model data stays on the in-process collectives).
    let (handle, reducers) = spawn_tcp(ControllerConfig::constant(6, 3));
    let t0 = std::time::Instant::now();
    let threads: Vec<_> = reducers
        .into_iter()
        .enumerate()
        .map(|(rank, mut r)| {
            std::thread::spawn(move || {
                let mut params = vec![rank as f32; 1024];
                for k in 1..=100u64 {
                    for v in &mut params {
                        *v += 0.01;
                    }
                    r.reduce(&mut params, k).expect("reduce over TCP");
                }
                r.finish().expect("finish");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("worker");
    }
    let stats = handle.join();
    println!(
        "\nTCP control plane: 6 workers x 100 reduces in {:.2}s ({} groups, {} repairs)",
        t0.elapsed().as_secs_f64(),
        stats.groups_formed,
        stats.repairs
    );

    println!("\nEvery run trains to comparable accuracy; the partial-reduce");
    println!("runs never take a global barrier, so a slow thread (CPU");
    println!("scheduling noise) delays only its own group.");
}
