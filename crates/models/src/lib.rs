//! A minimal-but-real deep-learning framework: the substrate the paper gets
//! from PyTorch and we must build ourselves (repro note: "DL bindings thin").
//!
//! Provides:
//!
//! * trainable layers with exact backprop — [`Dense`], [`Conv2d`],
//!   [`MaxPool2d`], [`GlobalAvgPool`], ReLU/Tanh activations;
//! * a [`Network`] container built from a serializable [`NetworkSpec`], so
//!   every worker can construct an *identical* initial replica from a shared
//!   seed (Algorithm 2 requires all local models to start at the same point);
//! * flat parameter/gradient vectors ([`Network::param_vector`] /
//!   [`Network::set_param_vector`]) — the unit of communication for
//!   all-reduce, parameter-server, and partial-reduce traffic;
//! * [`SgdOptimizer`] with momentum and weight decay plus the paper's
//!   learning-rate schedules (§5.1: lr 0.1, momentum 0.9, wd 1e-4, ImageNet
//!   step decay ×0.1 every 20 epochs);
//! * a model zoo ([`zoo`]) of *analogs* of the paper's CNNs, each paired
//!   with a [`CostProfile`] preserving the original's relative compute
//!   intensity and communication volume (used by the cluster simulator).

#![forbid(unsafe_code)]

mod activation;
mod conv;
mod dense;
mod layer;
mod loss;
mod metrics;
mod network;
mod norm;
mod optimizer;
mod pool;
mod residual;
mod spec;
pub mod zoo;

pub use activation::{Relu, Tanh};
pub use conv::Conv2d;
pub use dense::Dense;
pub use layer::Layer;
pub use loss::{mse_loss, softmax_cross_entropy, LossOutput};
pub use metrics::{accuracy, evaluate_accuracy, evaluate_accuracy_parallel, topk_accuracy};
pub use network::Network;
pub use norm::{Dropout, LayerNorm};
pub use optimizer::{LrSchedule, SgdConfig, SgdOptimizer};
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use residual::Residual;
pub use spec::{LayerSpec, NetworkSpec};
pub use zoo::{CostProfile, ModelZooEntry};
