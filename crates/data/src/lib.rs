//! Synthetic datasets, data sharding, and minibatch sampling.
//!
//! The paper evaluates on CIFAR10, CIFAR100 and ImageNet. Those corpora (and
//! the GPU pipelines that make them tractable) are unavailable here, so this
//! crate provides seeded synthetic classification tasks with matching class
//! counts and tunable difficulty — see DESIGN.md §3 for why this preserves
//! the behaviour the experiments measure. The distributed-training algorithms
//! never inspect the data; they only need a learnable task on which
//! "#updates until a fixed test-accuracy threshold" is well defined.
//!
//! The crate also implements the paper's data-parallel plumbing: every worker
//! owns a *shard* of the training set (§4 "data sharding approach") and draws
//! i.i.d. minibatches from its shard (Algorithm 2, line 2).

#![forbid(unsafe_code)]

mod batch;
pub mod consistent_hash;
mod dataset;
mod presets;
mod shard;
mod synth;

pub use batch::BatchSampler;
pub use consistent_hash::{assignment_churn, ring_churn, HashRing, RingChurn};
pub use dataset::{Batch, Dataset};
pub use presets::{cifar100_like, cifar10_like, imagenet_like, DatasetPreset};
pub use shard::{shard_dataset, ShardStrategy};
pub use synth::{GaussianMixture, SynthConfig};
