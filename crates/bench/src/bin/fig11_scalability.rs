//! Figure 11: scalability on the ImageNet-scale analogs — run-time speedup
//! vs worker count for All-Reduce, PS BK (a quarter of the fleet as
//! backups), and P-Reduce (P = 4).
//!
//! Speedup is training throughput (useful examples/second) relative to a
//! single worker, measured over a fixed update budget under production
//! heterogeneity (which grows no easier as N rises — the paper's point:
//! more workers ⇒ more exposure to stragglers for synchronous methods).
//!
//! Run: `cargo run --release -p preduce-bench --bin fig11_scalability`

use preduce_bench::configs::imagenet_config;
use preduce_bench::output::TableWriter;
use preduce_models::zoo::{self, ModelZooEntry};
use preduce_trainer::{run_experiment, ExperimentConfig, Strategy};

/// Useful local SGD steps contributing to training for one run.
fn useful_samples(s: Strategy, n: usize, updates: u64) -> f64 {
    match s {
        // One AR/BSP round = N batches.
        Strategy::AllReduce | Strategy::PsBsp => (updates * n as u64) as f64,
        // BK drops the backups' work.
        Strategy::PsBackup { backups } => (updates * (n - backups) as u64) as f64,
        // One P-Reduce group = P members' local updates.
        Strategy::PReduce { p, .. } => (updates * p as u64) as f64,
        // One PS push / gossip exchange = one batch.
        _ => updates as f64,
    }
}

fn throughput(s: Strategy, config: &ExperimentConfig) -> f64 {
    let r = run_experiment(s, config);
    useful_samples(s, config.num_workers, r.updates) / r.run_time
}

fn single_worker_rate(model: &ModelZooEntry, budget: u64) -> f64 {
    let mut c = imagenet_config(model.clone(), 1);
    c.threshold = 0.999;
    c.max_updates = budget;
    c.eval_every = budget; // a single evaluation at the end
                           // A lone worker: All-Reduce degenerates to sequential SGD (no comm).
    throughput(Strategy::AllReduce, &c)
}

fn main() {
    let budget: u64 = if preduce_bench::quick_mode() {
        300
    } else {
        1_500
    };
    let worker_counts = [4usize, 8, 16, 32];

    for model in [zoo::resnet18(), zoo::vgg16()] {
        println!("== Fig 11: {} analog speedup ==\n", model.name);
        let base = single_worker_rate(&model, budget);

        let t = TableWriter::new(
            &["N", "All-Reduce", "PS BK (N/4)", "P-Reduce (P=4)"],
            &[4, 12, 12, 15],
        );
        t.row(&["1", "1.00", "1.00", "1.00"]);
        for &n in &worker_counts {
            let mut c = imagenet_config(model.clone(), n);
            c.threshold = 0.999;
            c.max_updates = budget;
            c.eval_every = budget;
            let ar = throughput(Strategy::AllReduce, &c) / base;
            let bk = throughput(
                Strategy::PsBackup {
                    backups: (n / 4).max(1),
                },
                &c,
            ) / base;
            let pr = throughput(
                Strategy::PReduce {
                    p: 4,
                    dynamic: false,
                },
                &c,
            ) / base;
            t.row(&[
                &n.to_string(),
                &format!("{ar:.2}"),
                &format!("{bk:.2}"),
                &format!("{pr:.2}"),
            ]);
        }
        println!();
    }
    println!("(paper: AR and BK flatten with N; P-Reduce keeps scaling, and");
    println!(" the compute-bound resnet18 scales better than the");
    println!(" communication-bound vgg16.)");
}
