//! Library half of the `preduce` command-line interface: a dependency-free
//! argument parser plus the command implementations, kept out of `main.rs`
//! so they are unit-testable.

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{run_command, CliError, Command};
