//! Ablation studies for the design choices called out in DESIGN.md §5:
//!
//! 1. **Model averaging vs gradient aggregation** — P-Reduce CON vs
//!    Eager-Reduce under identical conditions (the paper's §5.2.2
//!    explanation of why ER fails).
//! 2. **Dynamic vs constant weights** across rising heterogeneity.
//! 3. **Group-frozen avoidance on/off** under an adversarial arrival
//!    pattern (two deterministic speed classes that FIFO-pair forever).
//! 4. **EMA decay α sensitivity** for dynamic partial reduce.
//!
//! Run: `cargo run --release -p preduce-bench --bin ablations`

use partial_reduce::{
    expected_sync_matrix, spectral_gap, AggregationMode, ControllerConfig, GapPolicy,
};
use preduce_bench::configs::table1_config;
use preduce_bench::output::{print_run_row, TableWriter};
use preduce_models::zoo;
use preduce_trainer::sim::{run_preduce, SimHarness};
use preduce_trainer::{run_experiment, HeteroSpec, Strategy};

fn main() {
    ablation_model_vs_gradient();
    ablation_dynamic_weights();
    ablation_frozen_avoidance();
    ablation_alpha();
    ablation_overlap();
}

/// The paper's future-work discussion (§4): DDP-style overlap needs a
/// fixed communication world, so All-Reduce gets it and partial reduce
/// does not. Does P-Reduce's advantage survive a fully-overlapped AR?
fn ablation_overlap() {
    println!("== Ablation 5: granting All-Reduce comm/compute overlap (HL = 3) ==\n");
    let t = TableWriter::new(
        &["AR overlap", "AR run time", "P-Reduce CON (P=3)"],
        &[10, 12, 18],
    );
    for overlap in [0.0f64, 0.5, 1.0] {
        let mut config = table1_config(zoo::resnet34(), 3);
        config.overlap_fraction = overlap;
        let ar = run_experiment(Strategy::AllReduce, &config);
        let pr = run_experiment(
            Strategy::PReduce {
                p: 3,
                dynamic: false,
            },
            &config,
        );
        t.row(&[
            &format!("{:.0}%", overlap * 100.0),
            &format!("{:.1}s", ar.run_time),
            &format!("{:.1}s", pr.run_time),
        ]);
    }
    println!("\n(Even a perfectly-overlapped AR still pays the straggler barrier:");
    println!(" the advantage of partial reduce is waiting, not wire time.)\n");
}

fn ablation_model_vs_gradient() {
    println!("== Ablation 1: model averaging (P-Reduce) vs gradient aggregation (Eager-Reduce), HL = 3 ==\n");
    let config = table1_config(zoo::resnet34(), 3);
    for s in [
        Strategy::PReduce {
            p: 3,
            dynamic: false,
        },
        Strategy::EagerReduce,
    ] {
        let r = run_experiment(s, &config);
        print_run_row(&r);
    }
    println!();
}

fn ablation_dynamic_weights() {
    println!("== Ablation 2: constant vs dynamic weights as heterogeneity rises ==\n");
    let t = TableWriter::new(
        &["HL", "CON #updates", "DYN #updates", "CON time", "DYN time"],
        &[4, 13, 13, 10, 10],
    );
    for hl in [1usize, 2, 3, 4] {
        let config = table1_config(zoo::resnet34(), hl);
        let con = run_experiment(
            Strategy::PReduce {
                p: 3,
                dynamic: false,
            },
            &config,
        );
        let dyn_ = run_experiment(
            Strategy::PReduce {
                p: 3,
                dynamic: true,
            },
            &config,
        );
        t.row(&[
            &hl.to_string(),
            &con.updates.to_string(),
            &dyn_.updates.to_string(),
            &format!("{:.1}s", con.run_time),
            &format!("{:.1}s", dyn_.run_time),
        ]);
    }
    println!();
}

fn ablation_frozen_avoidance() {
    println!("== Ablation 3: group-frozen avoidance on/off ==\n");
    println!("Adversarial fleet: two deterministic speed classes (workers 0-1 fast, 2-3 at 1.7x),");
    println!("no jitter, P = 2: FIFO pairing freezes into (0,1)/(2,3) without the filter.\n");

    for frozen_avoidance in [false, true] {
        let mut config = table1_config(zoo::resnet34(), 1);
        config.num_workers = 4;
        config.jitter = preduce_simnet::Jitter::None;
        config.hetero = HeteroSpec::Speed {
            multipliers: vec![1.0, 1.0, 1.7, 1.7],
        };
        config.max_updates = config.max_updates.min(20_000);

        let harness = SimHarness::new(&config);
        let ctl = ControllerConfig {
            num_workers: 4,
            group_size: 2,
            mode: AggregationMode::Constant,
            history_window: None,
            frozen_avoidance,
        };
        let r = run_preduce(harness, ctl);
        // Recover the schedule's spectral gap by re-simulating the groups
        // is overkill here; report convergence + updates instead.
        println!(
            "frozen_avoidance={frozen_avoidance}: converged={} updates={} time={:.1}s acc={:.3}",
            r.converged, r.updates, r.run_time, r.final_accuracy
        );
    }

    // The spectral view of the same phenomenon.
    let frozen = expected_sync_matrix(4, &[vec![0, 1], vec![2, 3]]);
    let repaired = expected_sync_matrix(4, &[vec![0, 1], vec![2, 3], vec![0, 2], vec![1, 3]]);
    let rf = spectral_gap(&frozen).expect("symmetric");
    let rr = spectral_gap(&repaired).expect("symmetric");
    println!(
        "\nspectral view: frozen schedule rho = {:.3} (no gap: updates never spread);",
        rf.rho
    );
    println!(
        "               repaired schedule rho = {:.3} (rho_bar = {:.2})\n",
        rr.rho, rr.rho_bar
    );
}

fn ablation_alpha() {
    println!("== Ablation 4: EMA decay alpha for dynamic partial reduce (HL = 3) ==\n");
    let t = TableWriter::new(
        &["alpha", "#updates", "run time", "converged"],
        &[6, 9, 10, 9],
    );
    for alpha in [0.2f64, 0.5, 0.8] {
        let config = table1_config(zoo::resnet34(), 3);
        let harness = SimHarness::new(&config);
        let ctl = ControllerConfig {
            num_workers: config.num_workers,
            group_size: 3,
            mode: AggregationMode::Dynamic {
                alpha,
                gap_policy: GapPolicy::Initial,
            },
            history_window: None,
            frozen_avoidance: true,
        };
        let r = run_preduce(harness, ctl);
        t.row(&[
            &format!("{alpha:.1}"),
            &r.updates.to_string(),
            &format!("{:.1}s", r.run_time),
            &r.converged.to_string(),
        ]);
    }
    println!();
}
