//! Pass 7 — `reactor-blocking`: poll paths stay non-blocking.
//!
//! PR 5's control plane is a sharded non-blocking reactor: each shard
//! thread multiplexes many sockets, so *one* blocking call on a poll
//! path stalls every connection on the shard — the exact failure the
//! reactor exists to avoid. `runtime::serve_fleet` batch-ingests from
//! the reactor with timeout-bounded receives and has the same contract.
//!
//! The pass finds the poll-path roots in a file — fns referenced inside
//! a `spawn(…)` argument list (the shard loops) plus any fn named
//! `serve_fleet` — closes them over same-file calls, and flags blocking
//! constructs inside the closure: indefinite channel receives, sleeps,
//! joins, condvar/barrier waits, blocking socket setup, unbounded
//! write/flush, and lock acquisitions (a poll path contending on a lock
//! is blocked by whoever holds it). Timeout-bounded variants
//! (`recv_timeout`, `wait_timeout`) and reads/writes *with* buffers
//! into nonblocking sockets (`.read(buf)`) are allowed.
//!
//! Scope (see [`crate::scope::reactor_blocking`]): `*/reactor.rs` by
//! filename, plus any file defining `serve_fleet`.

use crate::scan::{SourceFile, TokenKind};
use crate::Finding;

/// Pass name used in findings and allow directives.
pub const NAME: &str = "reactor-blocking";

/// Runs the pass on one in-scope file.
pub fn run(file: &SourceFile) -> Vec<Finding> {
    let fns: Vec<(String, (usize, usize), usize)> = file
        .items
        .fns
        .iter()
        .filter(|f| !file.is_test[f.start] && f.body.is_some())
        .map(|f| (f.name.clone(), f.body.unwrap_or((0, 0)), f.start))
        .collect();

    // Roots: fns named inside spawn(…) argument lists, plus serve_fleet.
    let mut reachable: Vec<usize> = fns
        .iter()
        .enumerate()
        .filter(|(_, (name, _, _))| name == "serve_fleet")
        .map(|(i, _)| i)
        .collect();
    for name in spawned_fn_names(file) {
        if let Some(i) = fns.iter().position(|(n, _, _)| *n == name) {
            if !reachable.contains(&i) {
                reachable.push(i);
            }
        }
    }

    // Close over same-file calls.
    loop {
        let mut grew = false;
        for i in reachable.clone() {
            let (_, (open, close), _) = fns[i];
            for k in open..=close {
                let tok = file.ct(k);
                if tok.kind != TokenKind::Ident || k + 1 > close || file.ct(k + 1).text != "(" {
                    continue;
                }
                if let Some(j) = fns.iter().position(|(n, _, _)| *n == tok.text) {
                    if !reachable.contains(&j) {
                        reachable.push(j);
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }

    let spawn_groups = spawn_arg_ranges(file);
    let mut findings = Vec::new();
    for &i in &reachable {
        let (name, (open, close), _) = &fns[i];
        // Skip nested fn bodies (their own entries) and `spawn(…)`
        // argument lists — a spawned closure runs on a dedicated thread,
        // not this poll path (spawned *named* fns are covered as roots).
        let mut skips: Vec<(usize, usize)> = fns
            .iter()
            .map(|&(_, b, _)| b)
            .filter(|&(o, c)| o > *open && c < *close)
            .chain(
                spawn_groups
                    .iter()
                    .copied()
                    .filter(|&(o, c)| o > *open && c < *close),
            )
            .collect();
        skips.sort_unstable();
        let mut k = *open;
        while k <= *close {
            if let Some(&(_, sc)) = skips.iter().find(|&&(so, _)| so == k) {
                k = sc + 1;
                continue;
            }
            if let Some(display) = blocking_at(file, k, *close) {
                findings.push(Finding {
                    pass: NAME.into(),
                    file: file.path.clone(),
                    line: file.ct(k).line + 1,
                    message: format!(
                        "blocking `{display}` inside reactor poll path `{name}`; poll paths must use non-blocking or timeout-bounded operations"
                    ),
                });
            }
            k += 1;
        }
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Code-token ranges `(open_paren, close_paren)` of `spawn(…)` argument
/// lists.
fn spawn_arg_ranges(file: &SourceFile) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let n = file.ct_len();
    for k in 0..n {
        let tok = file.ct(k);
        if tok.kind != TokenKind::Ident || tok.text != "spawn" || k + 1 >= n {
            continue;
        }
        if file.ct(k + 1).text != "(" {
            continue;
        }
        let mut depth = 0usize;
        let mut p = k + 1;
        while p < n {
            match file.ct(p).text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        out.push((k + 1, p));
                        break;
                    }
                }
                _ => {}
            }
            p += 1;
        }
    }
    out
}

/// Fn names referenced inside any `spawn(…)` argument list.
fn spawned_fn_names(file: &SourceFile) -> Vec<String> {
    let mut out = Vec::new();
    for (open, close) in spawn_arg_ranges(file) {
        for p in open..=close {
            if file.ct(p).kind == TokenKind::Ident && !out.contains(&file.ct(p).text) {
                out.push(file.ct(p).text.clone());
            }
        }
    }
    out
}

/// A blocking construct whose name token sits at `k`; returns the
/// display string used in the finding.
fn blocking_at(file: &SourceFile, k: usize, close: usize) -> Option<&'static str> {
    let tok = file.ct(k);
    if tok.kind != TokenKind::Ident {
        return None;
    }
    let next_is = |off: usize, s: &str| k + off <= close && file.ct(k + off).text == s;
    let prev_dot = k > 0 && file.ct(k - 1).text == ".";
    let empty_args = next_is(1, "(") && next_is(2, ")");
    let any_args = next_is(1, "(");
    match tok.text.as_str() {
        "recv" if prev_dot && empty_args => Some(".recv()"),
        "join" if prev_dot && empty_args => Some(".join()"),
        "wait" | "wait_while" if prev_dot && any_args => Some(".wait("),
        "accept" if prev_dot && empty_args => Some(".accept()"),
        "connect" if prev_dot && any_args => Some(".connect("),
        "read_exact" if prev_dot && any_args => Some(".read_exact("),
        "write_all" if prev_dot && any_args => Some(".write_all("),
        "flush" if prev_dot && empty_args => Some(".flush()"),
        "lock" if prev_dot && empty_args => Some(".lock()"),
        "read" | "write" if prev_dot && empty_args => Some(".read()/.write() lock acquisition"),
        "sleep" if any_args && k > 0 && matches!(file.ct(k - 1).text.as_str(), "::" | ".") => {
            Some("thread::sleep")
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(path: &str, src: &str) -> Vec<Finding> {
        run(&SourceFile::from_source(path, src))
    }

    #[test]
    fn blocking_in_spawned_shard_loop_flagged() {
        let got = run_on(
            "crates/comm/src/reactor.rs",
            "fn start(rx: Receiver<u8>) {\n    thread::Builder::new().spawn(move || run_shard(rx)).ok();\n}\nfn run_shard(rx: Receiver<u8>) {\n    loop {\n        let cmd = rx.recv();\n        thread::sleep(Duration::from_millis(1));\n        pump();\n    }\n}\nfn pump() {\n    let g = STATE.lock();\n}\n",
        );
        assert_eq!(got.len(), 3, "{got:?}");
        assert!(got[0].message.contains(".recv()"));
        assert!(got[1].message.contains("thread::sleep"));
        assert!(got[2].message.contains(".lock()"));
    }

    #[test]
    fn timeout_bounded_and_buffered_ops_are_clean() {
        let got = run_on(
            "crates/core/src/runtime.rs",
            "pub fn serve_fleet(h: &Handle) {\n    loop {\n        let batch = h.recv_events(Duration::from_millis(5));\n        let n = sock.read(scratch);\n        let woke = cv.wait_timeout(g, d);\n    }\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn spawned_closure_runs_on_its_own_thread_not_the_poll_path() {
        // A heartbeat closure spawned from serve_fleet sleeps on its own
        // dedicated thread; that is pacing, not poll-path blocking.
        let got = run_on(
            "crates/core/src/runtime.rs",
            "pub fn serve_fleet(h: &Handle) {\n    thread::Builder::new().spawn(move || {\n        loop {\n            beat();\n            thread::sleep(interval);\n        }\n    }).ok();\n    loop {\n        let batch = h.recv_events(Duration::from_millis(5));\n    }\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn helper_threads_outside_poll_paths_may_block() {
        // A fn neither spawned from this file nor named serve_fleet is
        // a caller-side API (e.g. recv_events) and may block.
        let got = run_on(
            "crates/comm/src/reactor.rs",
            "pub fn recv_events(rx: &Receiver<Event>) -> Event {\n    rx.recv().unwrap_or(Event::None)\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }
}
