//! Table 1 lineup on the *threaded* backend: every strategy executed on
//! real OS threads over the message-passing runtime instead of the
//! virtual-time simulator.
//!
//! Wall-clock numbers here are smoke-level (one machine, tiny models) —
//! the point is that the same [`engine::drivers`] state machines run on a
//! second substrate, not that the absolute times mirror the paper. Run
//! time is real seconds, `#updates` is the sum of per-worker local
//! iterations, and there is no convergence trace (the threaded backend
//! runs a fixed `--iters` budget).
//!
//! Run: `cargo run --release -p preduce-bench --bin table1_threaded`
//! (set `PREDUCE_QUICK=1` for fewer local iterations)

use std::sync::Arc;

use partial_reduce::NullSink;
use preduce_bench::configs::{quick_mode, table1_config};
use preduce_bench::output::{maybe_dump_json, print_run_row};
use preduce_models::zoo;
use preduce_trainer::{engine, Backend, Strategy};

fn main() {
    let quick = quick_mode();
    let iters: u64 = if quick { 8 } else { 40 };

    let mut config = table1_config(zoo::resnet18(), 1);
    config.threaded_iters = Some(iters);

    println!(
        "Table 1 lineup on the threaded backend (N = {}, {iters} local updates per worker)",
        config.num_workers
    );
    println!("quick mode = {quick}\n");

    let mut results = Vec::new();
    for s in Strategy::table1_lineup(config.num_workers) {
        let run = engine::run(s, &config, Backend::Threaded, Arc::new(NullSink));
        print_run_row(&run.result);
        results.push(run.result);
    }
    maybe_dump_json("table1_threaded", &results);
}
