//! Classification metrics used by the convergence experiments.

use preduce_data::Dataset;
use preduce_tensor::{argmax_rows, Tensor};

use crate::network::Network;

/// Fraction of rows whose argmax matches the label.
///
/// # Panics
/// Panics if `logits` is not rank-2 or the label count differs.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(
        logits.shape().dim(0),
        labels.len(),
        "batch/label count mismatch"
    );
    if labels.is_empty() {
        return 0.0;
    }
    let preds = argmax_rows(logits);
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, y)| p == y)
        .count();
    correct as f64 / labels.len() as f64
}

/// Evaluates test accuracy of `net` over `dataset`, batching to bound the
/// activation memory.
///
/// # Panics
/// Panics if `eval_batch == 0`.
pub fn evaluate_accuracy(net: &mut Network, dataset: &Dataset, eval_batch: usize) -> f64 {
    assert!(eval_batch > 0, "evaluation batch size must be positive");
    if dataset.is_empty() {
        return 0.0;
    }
    net.set_training(false);
    let mut correct = 0usize;
    let n = dataset.len();
    let mut start = 0;
    while start < n {
        let end = (start + eval_batch).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let batch = dataset.gather(&idx);
        let logits = net.forward(&batch.features);
        let preds = argmax_rows(&logits);
        correct += preds
            .iter()
            .zip(batch.labels.iter())
            .filter(|(p, y)| p == y)
            .count();
        start = end;
    }
    net.set_training(true);
    correct as f64 / n as f64
}

/// Data-parallel [`evaluate_accuracy`]: splits the dataset's evaluation
/// batches across `threads` OS threads, each driving its own clone of
/// `net`, and sums the per-thread *integer* correct counts. Integer
/// addition is associative, so the result is exactly
/// `evaluate_accuracy(&mut net.clone(), ..)` for any thread count — safe
/// for golden-pinned trajectories.
///
/// (The roadmap names rayon for this; the workspace is dependency-frozen,
/// so scoped `std::thread` does the same fork-join without a new crate.)
///
/// # Panics
/// Panics if `eval_batch == 0` or `threads == 0`.
pub fn evaluate_accuracy_parallel(
    net: &Network,
    dataset: &Dataset,
    eval_batch: usize,
    threads: usize,
) -> f64 {
    assert!(eval_batch > 0, "evaluation batch size must be positive");
    assert!(threads > 0, "thread count must be positive");
    let n = dataset.len();
    if n == 0 {
        return 0.0;
    }
    let num_batches = n.div_ceil(eval_batch);
    let threads = threads.min(num_batches);
    if threads == 1 {
        let mut local = net.clone();
        return evaluate_accuracy(&mut local, dataset, eval_batch);
    }
    // Contiguous runs of whole eval batches per thread, so each thread
    // gathers the same windows the sequential loop would.
    let per_thread = num_batches.div_ceil(threads);
    let correct: usize = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let first = t * per_thread;
            let last = ((t + 1) * per_thread).min(num_batches);
            if first >= last {
                break;
            }
            let mut local = net.clone();
            handles.push(scope.spawn(move || {
                local.set_training(false);
                let mut correct = 0usize;
                for b in first..last {
                    let start = b * eval_batch;
                    let end = (start + eval_batch).min(n);
                    let idx: Vec<usize> = (start..end).collect();
                    let batch = dataset.gather(&idx);
                    let logits = local.forward(&batch.features);
                    let preds = argmax_rows(&logits);
                    correct += preds
                        .iter()
                        .zip(batch.labels.iter())
                        .filter(|(p, y)| p == y)
                        .count();
                }
                correct
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("evaluation worker panicked"))
            .sum()
    });
    correct as f64 / n as f64
}

/// Fraction of rows whose label appears among the `k` highest logits —
/// the top-k accuracy ImageNet evaluations report alongside top-1.
///
/// # Panics
/// Panics if `k == 0`, `logits` is not rank-2, or the label count differs.
pub fn topk_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    assert_eq!(logits.shape().rank(), 2, "logits must be [batch, classes]");
    assert_eq!(
        logits.shape().dim(0),
        labels.len(),
        "batch/label count mismatch"
    );
    if labels.is_empty() {
        return 0.0;
    }
    let classes = logits.shape().dim(1);
    let k = k.min(classes);
    let mut correct = 0usize;
    for (r, &y) in labels.iter().enumerate() {
        let row = logits.row(r);
        let target = row[y];
        // Label is in the top k iff fewer than k entries strictly beat it
        // (ties resolve in the label's favor, matching argmax's
        // lowest-index rule only approximately; exact ties are measure-
        // zero for real logits).
        let beaten_by = row.iter().filter(|&&v| v > target).count();
        if beaten_by < k {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NetworkSpec;

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(
            vec![
                1.0, 0.0, // -> 0
                0.0, 1.0, // -> 1
                1.0, 0.0, // -> 0
            ],
            [3, 2],
        )
        .unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_of_empty_is_zero() {
        let logits = Tensor::zeros([0, 3]);
        assert_eq!(accuracy(&logits, &[]), 0.0);
    }

    #[test]
    fn topk_contains_top1() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let logits = Tensor::from_vec(
            (0..60).map(|_| rng.gen_range(-3.0f32..3.0)).collect(),
            [6, 10],
        )
        .unwrap();
        let labels: Vec<usize> = (0..6).map(|i| i % 10).collect();
        let top1 = topk_accuracy(&logits, &labels, 1);
        let top5 = topk_accuracy(&logits, &labels, 5);
        let top10 = topk_accuracy(&logits, &labels, 10);
        assert!((top1 - accuracy(&logits, &labels)).abs() < 1e-12);
        assert!(top1 <= top5);
        assert!(top5 <= top10);
        assert_eq!(top10, 1.0); // k = classes covers everything
    }

    #[test]
    fn topk_known_values() {
        let logits = Tensor::from_vec(
            vec![
                5.0, 4.0, 3.0, 2.0, // label 2 is 3rd-best
            ],
            [1, 4],
        )
        .unwrap();
        assert_eq!(topk_accuracy(&logits, &[2], 2), 0.0);
        assert_eq!(topk_accuracy(&logits, &[2], 3), 1.0);
        // k larger than classes clamps.
        assert_eq!(topk_accuracy(&logits, &[3], 99), 1.0);
    }

    #[test]
    fn parallel_evaluation_is_exactly_sequential() {
        let net = NetworkSpec::mlp(4, &[8], 3).build(5);
        let features =
            Tensor::from_vec((0..168).map(|i| (i % 11) as f32 - 5.0).collect(), [42, 4]).unwrap();
        let labels = (0..42).map(|i| i % 3).collect::<Vec<_>>();
        let ds = Dataset::new(features, labels, 3);
        let sequential = evaluate_accuracy(&mut net.clone(), &ds, 5);
        for threads in [1, 2, 3, 8, 64] {
            let parallel = evaluate_accuracy_parallel(&net, &ds, 5, threads);
            assert_eq!(
                sequential.to_bits(),
                parallel.to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn evaluate_accuracy_batches_consistently() {
        // Accuracy must not depend on the evaluation batch size.
        let mut net = NetworkSpec::mlp(4, &[8], 3).build(5);
        let features =
            Tensor::from_vec((0..40).map(|i| (i % 7) as f32 - 3.0).collect(), [10, 4]).unwrap();
        let labels = (0..10).map(|i| i % 3).collect::<Vec<_>>();
        let ds = Dataset::new(features, labels, 3);
        let a1 = evaluate_accuracy(&mut net, &ds, 3);
        let a2 = evaluate_accuracy(&mut net, &ds, 10);
        let a3 = evaluate_accuracy(&mut net, &ds, 1);
        assert!((a1 - a2).abs() < 1e-12);
        assert!((a1 - a3).abs() < 1e-12);
    }
}
