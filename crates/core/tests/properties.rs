//! Property-based tests for the partial-reduce core: weight generation,
//! synchronization matrices, controller behaviour, sync-graph invariants.

use std::sync::Arc;

use partial_reduce::{
    constant_weights, dynamic_weights, min_history_window, spectral_gap, sync_matrix,
    weighted_sync_matrix, AggregationMode, Controller, ControllerConfig, GapPolicy, GroupHistory,
    InvariantChecker, RingSink, StreamingChecker, SyncGraph, WindowedConnectivity,
};
use proptest::prelude::*;

fn group_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
    // A random subset of 2..=n workers out of n.
    prop::collection::btree_set(0..n, 2..=n).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn constant_weights_sum_to_one(p in 1usize..64) {
        let w = constant_weights(p);
        prop_assert_eq!(w.len(), p);
        let s: f32 = w.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn dynamic_weights_normalized_for_arbitrary_iterations(
        iterations in prop::collection::vec(1u64..10_000, 1..12),
        alpha in 0.05f64..0.95,
        nearest in any::<bool>(),
    ) {
        let policy = if nearest { GapPolicy::Nearest } else { GapPolicy::Initial };
        let w = dynamic_weights(&iterations, alpha, policy);
        prop_assert_eq!(w.len(), iterations.len());
        let s: f32 = w.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-4, "sum = {s}");
        prop_assert!(w.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    }

    #[test]
    fn all_tied_iterations_degenerate_to_uniform(
        p in 1usize..16,
        iteration in 1u64..100_000,
        alpha in 0.05f64..0.95,
        nearest in any::<bool>(),
    ) {
        // Every member at the same iteration: no staleness to penalize, so
        // both gap policies must return exactly constant 1/P weights.
        let policy = if nearest { GapPolicy::Nearest } else { GapPolicy::Initial };
        let w = dynamic_weights(&vec![iteration; p], alpha, policy);
        for &x in &w {
            prop_assert!(
                (x - 1.0 / p as f32).abs() < 1e-6,
                "tied weights not uniform: {w:?}"
            );
        }
    }

    #[test]
    fn single_member_gets_full_weight(
        iteration in 1u64..100_000,
        alpha in 0.05f64..0.95,
        nearest in any::<bool>(),
    ) {
        let policy = if nearest { GapPolicy::Nearest } else { GapPolicy::Initial };
        let w = dynamic_weights(&[iteration], alpha, policy);
        prop_assert_eq!(w, vec![1.0f32]);
    }

    #[test]
    fn both_gap_policies_normalize_identical_inputs(
        iterations in prop::collection::vec(1u64..10_000, 1..12),
        alpha in 0.05f64..0.95,
    ) {
        // The gap policy redistributes mass between members but never
        // creates or destroys it: both variants stay stochastic vectors
        // over the same input.
        for policy in [GapPolicy::Initial, GapPolicy::Nearest] {
            let w = dynamic_weights(&iterations, alpha, policy);
            let s: f32 = w.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "{policy:?}: sum = {s}");
            prop_assert!(
                w.iter().all(|&x| x >= 0.0),
                "{policy:?}: negative weight in {w:?}"
            );
        }
    }

    #[test]
    fn dynamic_weights_freshest_unique_member_beats_constant(
        stale_count in 1usize..6,
        gap in 1u64..50,
        alpha in 0.05f64..0.5,
    ) {
        // One member strictly fresher than all others (who tie): for
        // α ≤ 0.5 the fresh member's weight (1−α)/(1−α^k̂max) ≥ 1−α ≥ 1/2
        // ≥ 1/P, so it always beats the uniform share. (Above α ≈ 0.55
        // the conservative gap policy can push enough mass to the stalest
        // member to break this — the reason `dynamic_default` uses 0.3.)
        let p = stale_count + 1;
        let mut iterations = vec![100u64; 1];
        iterations.extend(std::iter::repeat_n(100 - gap, stale_count));
        let w = dynamic_weights(&iterations, alpha, GapPolicy::Initial);
        prop_assert!(
            w[0] >= 1.0 / p as f32 - 1e-6,
            "fresh weight {} below uniform {}",
            w[0],
            1.0 / p as f32
        );
    }

    #[test]
    fn sync_matrix_doubly_stochastic_for_any_group(
        group in group_strategy(10),
    ) {
        let w = sync_matrix(10, &group);
        // Row and column sums are 1, entries non-negative, symmetric.
        for i in 0..10 {
            let mut row = 0.0f32;
            let mut col = 0.0f32;
            for j in 0..10 {
                let x = w.at(&[i, j]);
                prop_assert!(x >= 0.0);
                prop_assert!((x - w.at(&[j, i])).abs() < 1e-7);
                row += x;
                col += w.at(&[j, i]);
            }
            prop_assert!((row - 1.0).abs() < 1e-5);
            prop_assert!((col - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn weighted_sync_matrix_column_stochastic(
        group in group_strategy(8),
        seed in any::<u64>(),
    ) {
        // Random normalized weights.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut weights: Vec<f32> =
            (0..group.len()).map(|_| rng.gen_range(0.01f32..1.0)).collect();
        let total: f32 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        let m = weighted_sync_matrix(8, &group, &weights);
        for j in 0..8 {
            let col: f32 = (0..8).map(|i| m.at(&[i, j])).sum();
            prop_assert!((col - 1.0).abs() < 1e-4, "column {j} sums to {col}");
        }
    }

    #[test]
    fn spectral_gap_of_any_schedule_is_in_unit_interval(
        groups in prop::collection::vec(group_strategy(6), 1..20),
    ) {
        let e_w = partial_reduce::expected_sync_matrix(6, &groups);
        let r = spectral_gap(&e_w).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.rho), "rho = {}", r.rho);
        prop_assert!((r.eigenvalues[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn controller_fifo_without_avoidance(
        seed in any::<u64>(),
    ) {
        // Push workers in a seeded random order; with frozen avoidance off
        // the first P queued always form the group, in queue order.
        use rand::{seq::SliceRandom, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut workers: Vec<usize> = (0..8).collect();
        workers.shuffle(&mut rng);
        let mut c = Controller::new(ControllerConfig {
            num_workers: 8,
            group_size: 3,
            mode: AggregationMode::Constant,
            history_window: Some(3),
            frozen_avoidance: false,
        });
        for &w in &workers {
            c.push_ready(w, 0);
        }
        let mut formed = Vec::new();
        while let Some(d) = c.try_form_group() {
            prop_assert!(!d.repaired);
            formed.extend(d.group);
        }
        // 8 workers, P = 3 ⇒ two groups of 3 in FIFO order; 2 left queued.
        prop_assert_eq!(formed.as_slice(), &workers[..6]);
        prop_assert_eq!(c.pending(), 2);
    }

    #[test]
    fn controller_groups_always_valid_under_random_traffic(
        seed in any::<u64>(),
        p in 2usize..5,
        rounds in 1usize..30,
    ) {
        use rand::{Rng, SeedableRng};
        let n = 8;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut c = Controller::new(ControllerConfig {
            num_workers: n,
            group_size: p,
            mode: AggregationMode::dynamic_default(),
            history_window: None,
            frozen_avoidance: true,
        });
        let mut queued = vec![false; n];
        let mut iter = vec![0u64; n];
        for _ in 0..rounds {
            // Random subset of free workers signal ready.
            for w in 0..n {
                if !queued[w] && rng.gen_bool(0.6) {
                    iter[w] += rng.gen_range(1..4);
                    c.push_ready(w, iter[w]);
                    queued[w] = true;
                }
            }
            while let Some(d) = c.try_form_group() {
                prop_assert_eq!(d.group.len(), p);
                let mut g = d.group.clone();
                g.sort_unstable();
                g.dedup();
                prop_assert_eq!(g.len(), p, "duplicates");
                let ws: f32 = d.weights.iter().sum();
                prop_assert!((ws - 1.0).abs() < 1e-4);
                let max_iter = d.group.iter().map(|&m| iter[m]).max().unwrap();
                prop_assert_eq!(d.new_iteration, max_iter);
                for &m in &d.group {
                    queued[m] = false;
                    iter[m] = d.new_iteration;
                }
            }
        }
    }

    #[test]
    fn traced_random_traffic_satisfies_invariants(
        seed in any::<u64>(),
        p in 2usize..5,
        rounds in 1usize..30,
        dynamic in any::<bool>(),
    ) {
        // Whatever the controller does under random traffic — including
        // random worker departures — the emitted trace must replay clean
        // through the invariant checker.
        use rand::{Rng, SeedableRng};
        let n = 8;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sink = Arc::new(RingSink::new(8192));
        let mut c = Controller::with_sink(
            ControllerConfig {
                num_workers: n,
                group_size: p,
                mode: if dynamic {
                    AggregationMode::dynamic_default()
                } else {
                    AggregationMode::Constant
                },
                history_window: None,
                frozen_avoidance: true,
            },
            sink.clone(),
        );
        let mut queued = vec![false; n];
        let mut iter = vec![0u64; n];
        for _ in 0..rounds {
            for w in 0..n {
                if c.has_left(w) {
                    continue;
                }
                // Rare departure, possibly with a signal still queued.
                if rng.gen_bool(0.02) {
                    c.mark_left(w);
                    queued[w] = false;
                    continue;
                }
                if !queued[w] && rng.gen_bool(0.6) {
                    iter[w] += rng.gen_range(1..4);
                    prop_assert!(c.push_ready(w, iter[w]));
                    queued[w] = true;
                }
            }
            while let Some(d) = c.try_form_group() {
                for &m in &d.group {
                    queued[m] = false;
                    if dynamic {
                        // §3.3.3 adoption, as the threaded trainer does.
                        iter[m] = d.new_iteration;
                    }
                }
            }
        }
        prop_assert_eq!(sink.dropped(), 0);
        let report = InvariantChecker::check(&sink.snapshot());
        prop_assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn history_graph_edges_only_from_recent_groups(
        groups in prop::collection::vec(group_strategy(6), 1..30),
        window in 1usize..6,
    ) {
        let mut h = GroupHistory::new(window);
        for g in &groups {
            h.record(g.clone());
        }
        let graph = h.sync_graph(6);
        // Every edge must be witnessed by one of the last `window` groups.
        let recent: Vec<&Vec<usize>> =
            groups.iter().rev().take(window).collect();
        for a in 0..6 {
            for b in 0..6 {
                if a != b && graph.has_edge(a, b) {
                    let witnessed = recent.iter().any(|g| {
                        g.contains(&a) && g.contains(&b)
                    });
                    prop_assert!(witnessed, "stale edge {a}-{b}");
                }
            }
        }
    }

    #[test]
    fn chained_groups_connect_iff_enough_links(
        n in 3usize..10,
        p in 2usize..4,
    ) {
        prop_assume!(p < n);
        // A chain of minimal groups: exactly T = ⌈(N−1)/(P−1)⌉ groups can
        // connect N workers.
        let t = min_history_window(n, p);
        let mut g = SyncGraph::new(n);
        let mut covered = 1usize; // worker 0
        let mut added = 0;
        while covered < n {
            let start = covered - 1;
            let members: Vec<usize> =
                (start..(start + p).min(n)).collect();
            g.add_group(&members);
            covered = (start + p).min(n);
            added += 1;
        }
        prop_assert!(g.is_connected());
        prop_assert!(added <= t, "needed {added} groups, bound was {t}");
    }

    #[test]
    fn windowed_connectivity_matches_dfs_components(
        groups in prop::collection::vec(group_strategy(7), 1..40),
        window in 1usize..8,
        probe_every in 1usize..4,
    ) {
        // The amortized union-find must agree with the reference DFS over
        // the same window after every record — connectivity verdict,
        // component labels, and warm-up state alike. Probing at a random
        // stride exercises interleavings of deferred rebuilds, clean
        // evictions, and the stale fast path.
        let n = 7;
        let mut h = GroupHistory::new(window);
        let mut c = WindowedConnectivity::new(n, window);
        for (i, g) in groups.iter().enumerate() {
            h.record(g.clone());
            c.record(g);
            prop_assert_eq!(c.len(), h.len());
            prop_assert_eq!(c.is_warm(), h.is_warm());
            prop_assert_eq!(c.total_recorded(), h.total_recorded());
            if i % probe_every == 0 {
                let reference = h.sync_graph(n);
                prop_assert_eq!(
                    c.is_connected(),
                    reference.is_connected(),
                    "verdict diverged after group {}", i
                );
                prop_assert_eq!(
                    c.components(),
                    reference.components(),
                    "labels diverged after group {}", i
                );
            }
        }
        // Final state always agrees, whatever the probe stride skipped.
        let reference = h.sync_graph(n);
        prop_assert_eq!(c.components(), reference.components());
    }

    #[test]
    fn streaming_checker_matches_batch_on_random_traces(
        seed in any::<u64>(),
        p in 2usize..5,
        rounds in 1usize..30,
        dynamic in any::<bool>(),
    ) {
        // Feed the trace of a random controller run through the streaming
        // checker one event at a time: the verdict must be identical to
        // the batch wrapper's (same counters, same violations, in order).
        use rand::{Rng, SeedableRng};
        let n = 8;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sink = Arc::new(RingSink::new(8192));
        let mut c = Controller::with_sink(
            ControllerConfig {
                num_workers: n,
                group_size: p,
                mode: if dynamic {
                    AggregationMode::dynamic_default()
                } else {
                    AggregationMode::Constant
                },
                history_window: None,
                frozen_avoidance: true,
            },
            sink.clone(),
        );
        let mut queued = vec![false; n];
        let mut iter = vec![0u64; n];
        for _ in 0..rounds {
            for w in 0..n {
                if !queued[w] && rng.gen_bool(0.6) {
                    iter[w] += rng.gen_range(1..4);
                    c.push_ready(w, iter[w]);
                    queued[w] = true;
                }
            }
            while let Some(d) = c.try_form_group() {
                for &m in &d.group {
                    queued[m] = false;
                    if dynamic {
                        iter[m] = d.new_iteration;
                    }
                }
            }
        }
        let events = sink.snapshot();
        let batch = InvariantChecker::check(&events);
        let mut streaming = StreamingChecker::new();
        for e in &events {
            streaming.feed(e);
        }
        prop_assert_eq!(streaming.finish(), batch);
    }
}
