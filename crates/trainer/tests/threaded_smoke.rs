//! Smoke tests for the threaded projections of every strategy family.
//!
//! These are behavioral checks, not trajectory goldens (real threads are
//! scheduled by the OS, so wall times and interleavings vary): every
//! worker must complete its iteration budget, the averaged model must
//! evaluate to a finite accuracy, and controller-backed strategies must
//! actually form groups. CI runs this file single-threaded per test
//! (`--test-threads=1`) so each strategy gets the whole machine.

use std::sync::Arc;

use partial_reduce::NullSink;
use preduce_data::cifar10_like;
use preduce_models::zoo;
use preduce_trainer::{engine, Backend, EngineRun, ExperimentConfig, Strategy};

fn cfg(n: usize, iters: u64) -> ExperimentConfig {
    let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
    c.num_workers = n;
    c.threaded_iters = Some(iters);
    c
}

fn run_threaded(s: Strategy, c: &ExperimentConfig) -> EngineRun {
    engine::run(s, c, Backend::Threaded, Arc::new(NullSink))
}

#[test]
fn collective_allreduce_runs_lockstep() {
    let run = run_threaded(Strategy::AllReduce, &cfg(4, 6));
    assert_eq!(run.result.updates, 24); // 4 workers × 6 rounds
    assert_eq!(run.iterations.as_deref(), Some(&[6, 6, 6, 6][..]));
    assert!(run.result.run_time > 0.0);
    assert!(run.result.final_accuracy.is_finite());
}

#[test]
fn collective_eager_reduce_runs() {
    let run = run_threaded(Strategy::EagerReduce, &cfg(4, 6));
    assert_eq!(run.result.updates, 24);
    assert!(run.result.final_accuracy.is_finite());
}

#[test]
fn ps_family_smoke() {
    let c = cfg(4, 6);
    for s in [
        Strategy::PsBsp,
        Strategy::PsAsp,
        Strategy::PsHete,
        Strategy::PsSsp { bound: 2 },
        Strategy::PsBackup { backups: 1 },
    ] {
        let run = run_threaded(s, &c);
        assert_eq!(run.result.strategy, s.label());
        assert_eq!(run.result.updates, 24, "{}", s.label());
        assert!(
            run.result.final_accuracy.is_finite(),
            "{}: accuracy {}",
            s.label(),
            run.result.final_accuracy
        );
    }
}

#[test]
fn gossip_ad_psgd_pairs_through_controller() {
    let run = run_threaded(Strategy::AdPsgd, &cfg(4, 8));
    assert_eq!(run.result.updates, 32);
    let stats = run.controller.expect("gossip runs report controller stats");
    assert!(stats.groups_formed > 0, "no gossip pairings formed");
    assert!(run.result.stats.get("groups").copied().unwrap_or(0.0) > 0.0);
}

#[test]
fn gossip_d_psgd_ring_runs() {
    let run = run_threaded(Strategy::DPsgd, &cfg(4, 6));
    assert_eq!(run.result.updates, 24);
    assert!(run.result.final_accuracy.is_finite());
}

#[test]
fn preduce_forms_groups_and_terminates() {
    for dynamic in [false, true] {
        let run = run_threaded(Strategy::PReduce { p: 2, dynamic }, &cfg(4, 8));
        // Fast-forwarding can lift local iteration counters past the
        // per-worker budget, never below it.
        assert!(run.result.updates >= 32, "updates {}", run.result.updates);
        let stats = run.controller.expect("p-reduce reports controller stats");
        assert!(stats.groups_formed > 0, "dynamic={dynamic}: no groups");
        assert!(run.result.final_accuracy.is_finite());
    }
}

#[test]
fn full_lineup_runs_threaded() {
    // N = 8 so the lineup's P-Reduce (P=5) variants fit the fleet.
    let c = cfg(8, 3);
    for s in Strategy::table1_lineup(c.num_workers) {
        let run = run_threaded(s, &c);
        assert_eq!(run.result.strategy, s.label());
        assert!(
            run.result.updates >= 24,
            "{}: {} updates",
            s.label(),
            run.result.updates
        );
        assert!(run.result.run_time > 0.0, "{}", s.label());
        assert!(
            run.result.final_accuracy.is_finite(),
            "{}: accuracy {}",
            s.label(),
            run.result.final_accuracy
        );
        assert!(run.result.trace.is_empty(), "{}", s.label());
    }
}
