//! Plain-text table/series output for the experiment binaries.

use preduce_trainer::RunResult;

/// Formats seconds compactly (`532.1s`).
pub fn fmt_seconds(s: f64) -> String {
    format!("{s:.1}s")
}

/// Prints one run as an aligned row: strategy, run time, #updates,
/// per-update time, convergence marker.
pub fn print_run_row(r: &RunResult) {
    let mark = if r.converged { "" } else { "  (N/A: hit cap)" };
    println!(
        "{:<22} {:>10} {:>9} {:>12.3}s  acc={:.3}{}",
        r.strategy,
        fmt_seconds(r.run_time),
        r.updates,
        r.per_update_time(),
        r.final_accuracy,
        mark
    );
}

/// A minimal fixed-width table writer for multi-column reports.
#[derive(Debug)]
pub struct TableWriter {
    widths: Vec<usize>,
}

impl TableWriter {
    /// Creates a writer and prints the header row.
    pub fn new(headers: &[&str], widths: &[usize]) -> Self {
        assert_eq!(headers.len(), widths.len(), "one width per header");
        let w = TableWriter {
            widths: widths.to_vec(),
        };
        w.row(headers);
        w.rule();
        w
    }

    /// Prints one row of cells.
    pub fn row(&self, cells: &[&str]) {
        let mut line = String::new();
        for (cell, &w) in cells.iter().zip(self.widths.iter()) {
            line.push_str(&format!("{cell:<w$} "));
        }
        println!("{}", line.trim_end());
    }

    /// Prints a horizontal rule.
    pub fn rule(&self) {
        let total: usize = self.widths.iter().sum::<usize>() + self.widths.len().saturating_sub(1);
        println!("{}", "-".repeat(total));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_seconds_one_decimal() {
        assert_eq!(fmt_seconds(12.345), "12.3s");
    }

    #[test]
    fn table_writer_accepts_rows() {
        let t = TableWriter::new(&["a", "b"], &[5, 5]);
        t.row(&["x", "y"]);
        t.rule();
    }

    #[test]
    #[should_panic(expected = "one width per header")]
    fn table_writer_checks_widths() {
        TableWriter::new(&["a"], &[1, 2]);
    }
}

/// If `PREDUCE_JSON` is set to a directory, serializes `results` to
/// `<dir>/<name>.json` (creating the directory if needed) so plots can be
/// regenerated without re-running experiments. Silent no-op otherwise.
///
/// # Panics
/// Panics if the directory or file cannot be written once requested.
pub fn maybe_dump_json(name: &str, results: &[RunResult]) {
    let Some(dir) = std::env::var_os("PREDUCE_JSON") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("create PREDUCE_JSON directory");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(results).expect("RunResult serializes");
    std::fs::write(&path, json).expect("write experiment JSON");
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod json_tests {
    use super::*;

    #[test]
    fn json_dump_writes_when_requested() {
        let dir = std::env::temp_dir().join("preduce-json-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("PREDUCE_JSON", &dir);
        let r = RunResult {
            strategy: "t".into(),
            run_time: 1.0,
            updates: 2,
            converged: true,
            final_accuracy: 0.5,
            trace: vec![],
            per_update_samples: vec![],
            stats: Default::default(),
        };
        maybe_dump_json("unit", &[r]);
        std::env::remove_var("PREDUCE_JSON");
        let written = std::fs::read_to_string(dir.join("unit.json")).unwrap();
        assert!(written.contains("\"updates\": 2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_dump_noop_without_env() {
        std::env::remove_var("PREDUCE_JSON");
        maybe_dump_json("never", &[]);
    }
}
