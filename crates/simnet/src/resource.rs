//! A serially-shared resource timeline (capacity-1 FIFO server).
//!
//! Used to model a genuinely centralized bottleneck — e.g. an *unsharded*
//! parameter server's NIC — where requests queue behind each other. The
//! sharded-PS cost model in [`crate::NetworkModel`] covers the common case;
//! this resource exists for the ablation that shows what happens without
//! sharding.

use crate::time::SimTime;

/// A capacity-1 resource that serves requests in arrival order.
#[derive(Debug, Clone)]
pub struct FifoResource {
    free_at: SimTime,
    served: u64,
    busy_seconds: f64,
}

impl FifoResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        FifoResource {
            free_at: SimTime::ZERO,
            served: 0,
            busy_seconds: 0.0,
        }
    }

    /// Requests `duration` seconds of exclusive service starting no earlier
    /// than `now`; returns the completion time.
    ///
    /// # Panics
    /// Panics if `duration` is negative or not finite.
    pub fn acquire(&mut self, now: SimTime, duration: f64) -> SimTime {
        assert!(
            duration >= 0.0 && duration.is_finite(),
            "service duration must be non-negative and finite"
        );
        let start = self.free_at.max(now);
        let done = start + duration;
        self.free_at = done;
        self.served += 1;
        self.busy_seconds += duration;
        done
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Total busy time accumulated (for utilization reporting).
    pub fn busy_seconds(&self) -> f64 {
        self.busy_seconds
    }
}

impl Default for FifoResource {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = FifoResource::new();
        let done = r.acquire(SimTime::new(5.0), 2.0);
        assert_eq!(done.seconds(), 7.0);
    }

    #[test]
    fn busy_resource_queues() {
        let mut r = FifoResource::new();
        let d1 = r.acquire(SimTime::ZERO, 3.0);
        assert_eq!(d1.seconds(), 3.0);
        // Arrives at t=1 but must wait until t=3.
        let d2 = r.acquire(SimTime::new(1.0), 2.0);
        assert_eq!(d2.seconds(), 5.0);
        assert_eq!(r.served(), 2);
        assert_eq!(r.busy_seconds(), 5.0);
    }

    #[test]
    fn gap_leaves_resource_idle() {
        let mut r = FifoResource::new();
        let _ = r.acquire(SimTime::ZERO, 1.0);
        let d = r.acquire(SimTime::new(10.0), 1.0);
        assert_eq!(d.seconds(), 11.0);
        assert_eq!(r.busy_seconds(), 2.0);
    }

    #[test]
    fn zero_duration_is_allowed() {
        let mut r = FifoResource::new();
        assert_eq!(r.acquire(SimTime::new(4.0), 0.0).seconds(), 4.0);
    }
}
