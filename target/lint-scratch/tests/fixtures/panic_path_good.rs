//! Known-good twin of `panic_path_bad.rs`: the same shapes written
//! without panic paths, plus one documented allow.

pub fn signals(queue: &mut Vec<u64>, idx: Option<usize>) -> Option<u64> {
    let i = idx?;
    queue.get(i).copied()
}

pub fn pick(xs: &[u64], i: usize) -> u64 {
    assert!(i < xs.len(), "index validated at entry");
    xs[i]
}

pub fn seeded(x: Option<u64>) -> u64 {
    x.unwrap() // lint: allow(panic-path) fixture: startup-only, documented contract panic
}
