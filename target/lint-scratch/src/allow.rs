//! The inline escape hatch: `// lint: allow(<pass>) <reason>`.
//!
//! An allow comment suppresses findings of the named pass on the line it
//! trails, or — when the comment stands alone — on the next line that
//! carries code. The reason is mandatory: an allow without one (or
//! naming an unknown pass) is itself a finding, so every exemption in
//! the tree documents why the contract does not apply.

use crate::scan::SourceFile;
use crate::Finding;

/// Marker the parser looks for inside comments.
const MARKER: &str = "lint: allow(";

/// A parsed, well-formed allow directive.
pub struct Allow {
    /// 0-based line the directive suppresses findings on.
    pub covers: usize,
    /// Pass name inside the parentheses.
    pub pass: String,
}

/// Extracts the allow directives of a file. Malformed directives
/// (missing reason, unknown pass) come back as `allow-syntax` findings.
pub fn collect_allows(file: &SourceFile, known_passes: &[&str]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for (i, raw) in file.raw.iter().enumerate() {
        // Test code gets no findings, so its allows (and strings that
        // merely mention the grammar) are not directives.
        if file.is_test[i] {
            continue;
        }
        // Directives live in comments: only look at the stripped-out part
        // of the line (present in raw, blanked in code).
        let Some(comment_start) = raw.find("//") else {
            continue;
        };
        // A `//` surviving in the code view is not a comment.
        if file.code[i].get(comment_start..comment_start + 2) == Some("//") {
            continue;
        }
        let comment = &raw[comment_start..];
        // Doc comments describe the grammar; they cannot invoke it.
        if comment.starts_with("///") || comment.starts_with("//!") {
            continue;
        }
        let Some(m) = comment.find(MARKER) else {
            continue;
        };
        let after = &comment[m + MARKER.len()..];
        // `<pass>`/`{pass}`-style placeholders are documentation (or
        // this crate's own messages), not directives.
        if after.starts_with('<') || after.starts_with('{') {
            continue;
        }
        let Some(close) = after.find(')') else {
            findings.push(Finding {
                pass: "allow-syntax".into(),
                file: file.path.clone(),
                line: i + 1,
                message: "unclosed `lint: allow(<pass>)` directive".into(),
            });
            continue;
        };
        let pass = after[..close].trim().to_string();
        let reason = after[close + 1..].trim();
        if !known_passes.contains(&pass.as_str()) {
            findings.push(Finding {
                pass: "allow-syntax".into(),
                file: file.path.clone(),
                line: i + 1,
                message: format!(
                    "`lint: allow({pass})` names an unknown pass (known: {})",
                    known_passes.join(", ")
                ),
            });
            continue;
        }
        if reason.is_empty() {
            findings.push(Finding {
                pass: "allow-syntax".into(),
                file: file.path.clone(),
                line: i + 1,
                message: format!(
                    "`lint: allow({pass})` needs a reason: `// lint: allow({pass}) <why>`"
                ),
            });
            continue;
        }
        let covers = if file.code[i].trim().is_empty() {
            // Standalone comment: covers the next line carrying code.
            match (i + 1..file.len()).find(|&j| !file.code[j].trim().is_empty()) {
                Some(j) => j,
                None => continue,
            }
        } else {
            i
        };
        allows.push(Allow { covers, pass });
    }
    (allows, findings)
}

/// Drops findings covered by an allow of the matching pass and line.
pub fn apply_allows(findings: Vec<Finding>, file: &SourceFile, allows: &[Allow]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            !allows
                .iter()
                .any(|a| f.file == file.path && f.line == a.covers + 1 && f.pass == a.pass)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PASSES: &[&str] = &["panic-path", "lock-discipline"];

    fn finding(file: &SourceFile, line: usize) -> Finding {
        Finding {
            pass: "panic-path".into(),
            file: file.path.clone(),
            line,
            message: "x".into(),
        }
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let f = SourceFile::from_source(
            "t.rs",
            "let x = y.unwrap(); // lint: allow(panic-path) seeded in main\n",
        );
        let (allows, bad) = collect_allows(&f, PASSES);
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].covers, 0);
        let kept = apply_allows(vec![finding(&f, 1)], &f, &allows);
        assert!(kept.is_empty());
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let f = SourceFile::from_source(
            "t.rs",
            "// lint: allow(panic-path) startup-only path\n\nlet x = y.unwrap();\n",
        );
        let (allows, bad) = collect_allows(&f, PASSES);
        assert!(bad.is_empty());
        assert_eq!(allows[0].covers, 2);
        assert!(apply_allows(vec![finding(&f, 3)], &f, &allows).is_empty());
    }

    #[test]
    fn reason_is_mandatory() {
        let f = SourceFile::from_source("t.rs", "let x = y.unwrap(); // lint: allow(panic-path)\n");
        let (allows, bad) = collect_allows(&f, PASSES);
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].pass, "allow-syntax");
        // And the original finding is NOT suppressed.
        assert_eq!(apply_allows(vec![finding(&f, 1)], &f, &allows).len(), 1);
    }

    #[test]
    fn unknown_pass_rejected() {
        let f = SourceFile::from_source("t.rs", "x(); // lint: allow(made-up) because\n");
        let (allows, bad) = collect_allows(&f, PASSES);
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn allow_of_other_pass_does_not_suppress() {
        let f = SourceFile::from_source(
            "t.rs",
            "let x = y.unwrap(); // lint: allow(lock-discipline) wrong pass\n",
        );
        let (allows, _) = collect_allows(&f, PASSES);
        assert_eq!(apply_allows(vec![finding(&f, 1)], &f, &allows).len(), 1);
    }
}
