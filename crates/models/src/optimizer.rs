//! SGD with momentum and weight decay, operating on flat parameter vectors.
//!
//! The paper's setup (§5.1): SGD, lr 0.1, momentum 0.9, weight decay 1e-4;
//! for ImageNet, step decay ×0.1 every 20 epochs (following the standard
//! PyTorch recipe they cite).

use preduce_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply the learning rate by `factor` every `every_updates` updates
    /// (the per-iteration analog of "decay by 10 every 20 epochs").
    Step {
        /// Updates between decays.
        every_updates: usize,
        /// Multiplicative decay factor.
        factor: f32,
    },
}

/// SGD hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Base learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
}

impl Default for SgdConfig {
    /// The paper's hyperparameters: lr 0.1, momentum 0.9, wd 1e-4.
    fn default() -> Self {
        SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            schedule: LrSchedule::Constant,
        }
    }
}

/// SGD optimizer state for one model replica.
///
/// Holds the momentum buffer (same layout as the flat parameter vector) and
/// the update counter driving the schedule.
#[derive(Debug, Clone)]
pub struct SgdOptimizer {
    config: SgdConfig,
    velocity: Tensor,
    steps: usize,
}

impl SgdOptimizer {
    /// Creates optimizer state for a `param_count`-dimensional model.
    ///
    /// # Panics
    /// Panics if `param_count == 0`.
    pub fn new(config: SgdConfig, param_count: usize) -> Self {
        assert!(param_count > 0, "optimizer over an empty model");
        SgdOptimizer {
            config,
            velocity: Tensor::zeros([param_count]),
            steps: 0,
        }
    }

    /// Rebuilds optimizer state from checkpointed parts (DESIGN.md §14):
    /// the momentum buffer and the step counter a snapshot carried. With
    /// the same config, the rebuilt optimizer is indistinguishable from
    /// the one that was snapshotted — `current_lr` resumes mid-schedule.
    ///
    /// # Panics
    /// Panics if `velocity` is empty.
    pub fn from_state(config: SgdConfig, velocity: Tensor, steps: usize) -> Self {
        assert!(!velocity.is_empty(), "optimizer over an empty model");
        SgdOptimizer {
            config,
            velocity,
            steps,
        }
    }

    /// The momentum buffer (flat, same layout as the parameter vector).
    pub fn velocity(&self) -> &Tensor {
        &self.velocity
    }

    /// The learning rate that the *next* step will use.
    pub fn current_lr(&self) -> f32 {
        match self.config.schedule {
            LrSchedule::Constant => self.config.lr,
            LrSchedule::Step {
                every_updates,
                factor,
            } => {
                let decays = self.steps.checked_div(every_updates).unwrap_or(0) as i32;
                self.config.lr * factor.powi(decays)
            }
        }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The configuration.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Applies one SGD step: `v ← m·v + (g + wd·θ)`, `θ ← θ − lr·v`,
    /// with an optional external learning-rate scale (used by
    /// staleness-aware baselines like PS HETE that modulate the rate per
    /// update).
    ///
    /// # Panics
    /// Panics if the vector lengths disagree with the optimizer state.
    pub fn step_scaled(&mut self, params: &mut Tensor, grads: &Tensor, lr_scale: f32) {
        assert_eq!(
            params.len(),
            self.velocity.len(),
            "param length {} does not match optimizer state {}",
            params.len(),
            self.velocity.len()
        );
        assert_eq!(
            grads.len(),
            self.velocity.len(),
            "grad length {} does not match optimizer state {}",
            grads.len(),
            self.velocity.len()
        );
        let lr = self.current_lr() * lr_scale;
        let m = self.config.momentum;
        let wd = self.config.weight_decay;
        let (v, p, g) = (
            self.velocity.as_mut_slice(),
            params.as_mut_slice(),
            grads.as_slice(),
        );
        for i in 0..v.len() {
            let eff_grad = g[i] + wd * p[i];
            v[i] = m * v[i] + eff_grad;
            p[i] -= lr * v[i];
        }
        self.steps += 1;
    }

    /// Applies one SGD step with no external scaling.
    pub fn step(&mut self, params: &mut Tensor, grads: &Tensor) {
        self.step_scaled(params, grads, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(lr: f32) -> SgdConfig {
        SgdConfig {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            schedule: LrSchedule::Constant,
        }
    }

    #[test]
    fn vanilla_sgd_descends_quadratic() {
        // f(x) = x², grad = 2x, from x=1 with lr 0.1: x ← 0.8x.
        let mut opt = SgdOptimizer::new(plain(0.1), 1);
        let mut x = Tensor::from_vec(vec![1.0], [1]).unwrap();
        for _ in 0..50 {
            let g = Tensor::from_vec(vec![2.0 * x.as_slice()[0]], [1]).unwrap();
            opt.step(&mut x, &g);
        }
        assert!(x.as_slice()[0].abs() < 1e-4);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let cfg = SgdConfig {
            lr: 1.0,
            momentum: 0.5,
            weight_decay: 0.0,
            schedule: LrSchedule::Constant,
        };
        let mut opt = SgdOptimizer::new(cfg, 1);
        let mut x = Tensor::zeros([1]);
        let g = Tensor::from_vec(vec![1.0], [1]).unwrap();
        opt.step(&mut x, &g); // v=1,   x=-1
        assert_eq!(x.as_slice()[0], -1.0);
        opt.step(&mut x, &g); // v=1.5, x=-2.5
        assert_eq!(x.as_slice()[0], -2.5);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let cfg = SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.1,
            schedule: LrSchedule::Constant,
        };
        let mut opt = SgdOptimizer::new(cfg, 1);
        let mut x = Tensor::from_vec(vec![1.0], [1]).unwrap();
        opt.step(&mut x, &Tensor::zeros([1]));
        assert!((x.as_slice()[0] - 0.99).abs() < 1e-6);
    }

    #[test]
    fn step_schedule_decays() {
        let cfg = SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            schedule: LrSchedule::Step {
                every_updates: 10,
                factor: 0.1,
            },
        };
        let mut opt = SgdOptimizer::new(cfg, 1);
        assert!((opt.current_lr() - 0.1).abs() < 1e-9);
        let mut x = Tensor::zeros([1]);
        let g = Tensor::zeros([1]);
        for _ in 0..10 {
            opt.step(&mut x, &g);
        }
        assert!((opt.current_lr() - 0.01).abs() < 1e-9);
        for _ in 0..10 {
            opt.step(&mut x, &g);
        }
        assert!((opt.current_lr() - 0.001).abs() < 1e-9);
    }

    #[test]
    fn lr_scale_modulates_step() {
        let mut opt = SgdOptimizer::new(plain(0.1), 1);
        let mut x = Tensor::from_vec(vec![1.0], [1]).unwrap();
        let g = Tensor::from_vec(vec![1.0], [1]).unwrap();
        opt.step_scaled(&mut x, &g, 0.5);
        assert!((x.as_slice()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "does not match optimizer state")]
    fn rejects_mismatched_lengths() {
        let mut opt = SgdOptimizer::new(plain(0.1), 2);
        let mut x = Tensor::zeros([3]);
        opt.step(&mut x, &Tensor::zeros([3]));
    }
}
