//! Regression guarantees for the kernel-layer refactor (DESIGN.md §13).
//!
//! The sim goldens in `engine_goldens.rs` pin full trajectories against
//! files recorded per machine; these tests pin the *reason* those goldens
//! survived the kernel refactor — every hot-path rewrite is bit-identical
//! to the scalar code it replaced:
//!
//! * `weighted_model_average` (now the fused multi-accumulator kernel)
//!   must equal the old per-model axpy chain bit-for-bit;
//! * parallel test evaluation must equal the sequential score exactly;
//! * an end-to-end P-Reduce sim run must be reproducible across calls
//!   within this binary (the cross-refactor pin lives in the goldens).

use preduce_data::cifar10_like;
use preduce_models::zoo;
use preduce_tensor::Tensor;
use preduce_trainer::worker::weighted_model_average;
use preduce_trainer::{run_experiment, ExperimentConfig, Strategy};

fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// The pre-kernel-layer implementation of `weighted_model_average`,
/// kept verbatim as the reference accumulation order.
fn axpy_chain_average(models: &[&Tensor], weights: &[f32]) -> Tensor {
    let mut out = Tensor::zeros([models[0].len()]);
    for (m, &w) in models.iter().zip(weights.iter()) {
        out.axpy(w, m);
    }
    out
}

#[test]
fn weighted_model_average_is_bitwise_stable_across_refactor() {
    // Lengths straddle the kernel's VEC_BLOCK (4096) and a realistic
    // model size; group sizes cover singleton through N=8.
    for &(p, len) in &[
        (1usize, 5usize),
        (2, 4096),
        (3, 4097),
        (4, 70_000),
        (8, 10_001),
    ] {
        let tensors: Vec<Tensor> = (0..p)
            .map(|j| Tensor::from_vec(fill(j as u64 + 1, len), [len]).expect("build model"))
            .collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let weights = partial_reduce::constant_weights(p);
        let fused = weighted_model_average(&refs, &weights);
        let chain = axpy_chain_average(&refs, &weights);
        for (i, (a, b)) in fused
            .as_slice()
            .iter()
            .zip(chain.as_slice().iter())
            .enumerate()
        {
            assert!(
                a.to_bits() == b.to_bits(),
                "P={p} len={len}: element {i} differs bitwise: {a} vs {b}"
            );
        }
    }
}

#[test]
fn preduce_sim_run_is_reproducible_after_kernel_refactor() {
    let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 2);
    c.num_workers = 4;
    c.max_updates = 12;
    c.eval_every = 6;
    c.threshold = 0.999;

    let strategy = Strategy::PReduce {
        p: 2,
        dynamic: false,
    };
    let first = run_experiment(strategy, &c);
    let again = run_experiment(strategy, &c);
    assert_eq!(first.run_time, again.run_time);
    assert_eq!(first.updates, again.updates);
    assert_eq!(
        first.final_accuracy.to_bits(),
        again.final_accuracy.to_bits(),
        "final accuracy must be bit-identical across same-seed runs"
    );
    for (a, b) in first.trace.iter().zip(again.trace.iter()) {
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        assert_eq!(a.updates, b.updates);
    }
}
