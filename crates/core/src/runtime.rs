//! The threaded partial-reduce runtime: the paper's prototype (§4) rebuilt
//! over the in-process message-passing fabric.
//!
//! [`spawn`] starts a controller thread and hands back one
//! [`PartialReducer`] per worker. A training thread calls
//! [`PartialReducer::reduce`] where All-Reduce training would call
//! `all_reduce`: the call sends the ready signal, blocks for the
//! controller's group assignment, runs the weighted ring average among
//! exactly the assigned group, and returns — without ever synchronizing
//! with workers outside the group. Groups formed from disjoint workers
//! proceed fully in parallel.
//!
//! Termination follows the cooperative protocol the paper's prototype
//! needs but leaves implicit: a finished worker announces
//! [`PartialReducer::finish`]; once fewer than `P` workers remain active the
//! controller answers every subsequent ready signal with a singleton group
//! (a local no-op), so stragglers drain without deadlock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use preduce_comm::collectives::TAG_STRIDE;
use preduce_comm::control::{
    control_links, BatchControlPlane, ControlEvent, ControlPlane, GroupAssignment,
    ObservedControlPlane, WorkerControlPlane, WorkerSignal,
};
use preduce_comm::mesh::GroupAverager;
use preduce_comm::{CommError, CommWorld};

use crate::controller::{Controller, ControllerConfig};
use crate::trace::{NullSink, SinkObserver, TraceEvent, TraceSink};

/// Statistics returned by the controller thread at shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerStats {
    /// Total partial-reduce groups formed.
    pub groups_formed: u64,
    /// Groups adjusted by the frozen-schedule repair.
    pub repairs: u64,
    /// Singleton assignments issued during drain-out.
    pub singletons: u64,
    /// Workers evicted by the liveness monitor (heartbeat silence).
    pub evictions: u64,
}

/// When to declare a silent worker dead (DESIGN.md §11).
///
/// A worker is *heard from* whenever any of its signals arrives — ready,
/// leaving, or heartbeat. Once a worker has been silent for
/// `heartbeat_interval × miss_threshold`, the controller evicts it:
/// [`TraceEvent::WorkerEvicted`] then the ordinary departure path
/// ([`crate::Controller::mark_left`]), so queued signals purge and
/// scheduling repair proceeds exactly as for a voluntary departure.
///
/// Liveness assumes workers actually heartbeat
/// ([`PartialReducer::start_heartbeat`]); enabling it for a fleet that
/// never beats evicts anyone whose compute phase outlasts the silence
/// budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessPolicy {
    /// Expected heartbeat period; also the controller's poll granularity.
    pub heartbeat_interval: Duration,
    /// Full silent windows tolerated before eviction (≥ 1).
    pub miss_threshold: u64,
}

impl LivenessPolicy {
    /// Creates a policy.
    ///
    /// # Panics
    /// Panics if `heartbeat_interval` is zero or `miss_threshold == 0`.
    pub fn new(heartbeat_interval: Duration, miss_threshold: u64) -> Self {
        assert!(
            !heartbeat_interval.is_zero(),
            "heartbeat interval must be positive"
        );
        assert!(miss_threshold > 0, "miss threshold must be at least 1");
        LivenessPolicy {
            heartbeat_interval,
            miss_threshold,
        }
    }

    /// Total silence tolerated before eviction.
    pub fn eviction_after(&self) -> Duration {
        self.heartbeat_interval
            .saturating_mul(u32::try_from(self.miss_threshold).unwrap_or(u32::MAX))
    }
}

impl Default for LivenessPolicy {
    fn default() -> Self {
        LivenessPolicy::new(Duration::from_millis(100), 3)
    }
}

/// Observer invoked with the live [`Controller`] after every serving-loop
/// pass in which at least one new group formed. The elastic layer hooks
/// controller snapshots (DESIGN.md §14) through this without the runtime
/// knowing anything about checkpoint formats.
pub type GroupHook = Box<dyn FnMut(&Controller) + Send>;

/// Spawn-time options shared by every transport.
pub struct RuntimeOptions {
    /// Trace sink receiving every control-plane decision.
    pub sink: Arc<dyn TraceSink>,
    /// Heartbeat-based failure detection; `None` disables it (the
    /// controller then only learns of departures via `Leaving`).
    pub liveness: Option<LivenessPolicy>,
    /// Called after each loop pass that formed new groups; `None` (the
    /// default) costs nothing.
    pub on_groups: Option<GroupHook>,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            sink: Arc::new(NullSink),
            liveness: None,
            on_groups: None,
        }
    }
}

/// Handle to the running controller thread.
#[derive(Debug)]
pub struct ControllerHandle {
    join: JoinHandle<ControllerStats>,
}

impl ControllerHandle {
    /// Waits for the controller to finish (after every worker called
    /// [`PartialReducer::finish`]) and returns its statistics.
    ///
    /// # Panics
    /// Panics if the controller thread panicked.
    pub fn join(self) -> ControllerStats {
        match self.join.join() {
            Ok(stats) => stats,
            // Re-raise the controller's own panic rather than minting a
            // fresh one: the original message and backtrace survive.
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// The outcome of one partial reduce as seen by a member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReduceOutcome {
    /// The group this worker was averaged with (singleton during drain).
    pub group: Vec<usize>,
    /// The iteration number this worker must adopt (§3.3.3 fast-forward).
    pub new_iteration: u64,
}

/// A worker's handle to the partial-reduce service. Transport-agnostic:
/// the control plane may be in-process channels ([`spawn`]) or the paper
/// prototype's TCP message queue ([`spawn_tcp`]).
pub struct PartialReducer {
    link: Box<dyn WorkerControlPlane>,
    averager: Box<dyn GroupAverager>,
    timeout: Duration,
    finished: bool,
    sink: Arc<dyn TraceSink>,
    /// Set to stop the background heartbeat thread, if one was started.
    stop_heartbeat: Option<Arc<AtomicBool>>,
}

impl std::fmt::Debug for PartialReducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PartialReducer(rank={})", self.link.rank())
    }
}

impl PartialReducer {
    /// Assembles a reducer from an explicit control link and data-plane
    /// averager — the multi-process deployment path, where both halves
    /// dial remote addresses instead of being minted by a `spawn_*`
    /// constructor in the controller's own process.
    pub fn from_parts(
        link: Box<dyn WorkerControlPlane>,
        averager: Box<dyn GroupAverager>,
        sink: Arc<dyn TraceSink>,
    ) -> Self {
        PartialReducer {
            link,
            averager,
            timeout: Duration::from_secs(30),
            finished: false,
            sink,
            stop_heartbeat: None,
        }
    }

    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.link.rank()
    }

    /// Overrides the blocking timeout (default 30 s).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Executes one partial reduce: `params` is averaged (with the
    /// controller's weights) across the assigned group, in place.
    ///
    /// `iteration` is this worker's current iteration count; the returned
    /// [`ReduceOutcome::new_iteration`] is the group maximum, which the
    /// caller must adopt.
    ///
    /// # Panics
    /// Panics if called after [`PartialReducer::finish`].
    pub fn reduce(
        &mut self,
        params: &mut [f32],
        iteration: u64,
    ) -> preduce_comm::Result<ReduceOutcome> {
        assert!(!self.finished, "reduce() after finish()");
        self.link.send_ready(iteration)?;
        let GroupAssignment {
            group,
            weights,
            base_tag,
            new_iteration,
        } = self.link.recv_assignment(self.timeout)?;
        if group.len() > 1 {
            self.averager
                .group_weighted_average(&group, base_tag, params, &weights)?;
        }
        if self.sink.enabled() {
            self.sink.record(TraceEvent::ReduceCompleted {
                worker: self.link.rank(),
                members: group.clone(),
                new_iteration,
            });
        }
        Ok(ReduceOutcome {
            group,
            new_iteration,
        })
    }

    /// Announces that this worker will issue no further reduces.
    pub fn finish(&mut self) -> preduce_comm::Result<()> {
        self.stop_beating();
        if !self.finished {
            self.finished = true;
            self.link.send_leaving()?;
        }
        Ok(())
    }

    /// Starts a background thread sending [`WorkerSignal::Heartbeat`]
    /// every `interval` so the controller's [`LivenessPolicy`] sees this
    /// worker as alive while it computes. Returns `false` when the
    /// transport cannot split a send-only handle (no heartbeat runs).
    /// The thread stops at [`PartialReducer::finish`], on drop, or when
    /// the control link dies.
    pub fn start_heartbeat(&mut self, interval: Duration) -> bool {
        if self.stop_heartbeat.is_some() {
            return true;
        }
        let Some(mut beat) = self.link.heartbeat_sender() else {
            return false;
        };
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let spawned = thread::Builder::new()
            .name(format!("preduce-heartbeat-{}", self.link.rank()))
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    if beat().is_err() {
                        break;
                    }
                    thread::sleep(interval);
                }
            })
            .is_ok();
        if spawned {
            self.stop_heartbeat = Some(stop);
        }
        spawned
    }

    /// Simulates a fail-stop (chaos-testing hook): the heartbeat stops
    /// and the handle drops **without** announcing departure, so the
    /// controller only learns of the death through heartbeat silence and
    /// the liveness eviction path.
    pub fn crash(mut self) {
        self.stop_beating();
        self.finished = true;
    }

    fn stop_beating(&mut self) {
        if let Some(stop) = self.stop_heartbeat.take() {
            stop.store(true, Ordering::Relaxed);
        }
    }
}

impl Drop for PartialReducer {
    fn drop(&mut self) {
        self.stop_beating();
    }
}

/// Spawns the controller thread for `config` and returns its handle plus
/// one [`PartialReducer`] per worker.
///
/// # Panics
/// Panics if the config is invalid.
pub fn spawn(config: ControllerConfig) -> (ControllerHandle, Vec<PartialReducer>) {
    spawn_with_sink(config, Arc::new(NullSink))
}

/// Like [`spawn`], but every control-plane decision — including each
/// assignment delivery and each worker's reduce completion — is narrated
/// to `sink`.
///
/// # Panics
/// Panics if the config is invalid.
pub fn spawn_with_sink(
    config: ControllerConfig,
    sink: Arc<dyn TraceSink>,
) -> (ControllerHandle, Vec<PartialReducer>) {
    spawn_with_options(
        config,
        RuntimeOptions {
            sink,
            liveness: None,
            on_groups: None,
        },
    )
}

/// Like [`spawn_with_sink`], but with full [`RuntimeOptions`] — in
/// particular a [`LivenessPolicy`] that turns heartbeat silence into
/// eviction through the ordinary departure path.
///
/// # Panics
/// Panics if the config is invalid.
pub fn spawn_with_options(
    config: ControllerConfig,
    opts: RuntimeOptions,
) -> (ControllerHandle, Vec<PartialReducer>) {
    config.validate();
    let RuntimeOptions {
        sink,
        liveness,
        on_groups,
    } = opts;
    let n = config.num_workers;
    let (ctl_link, worker_links) = control_links(n);
    let ctl_link = ObservedControlPlane::new(ctl_link, Arc::new(SinkObserver::new(sink.clone())));
    let endpoints = CommWorld::new(n).into_endpoints();

    let ctl_sink = sink.clone();
    let join = thread::Builder::new()
        .name("preduce-controller".into())
        .spawn(move || controller_loop(config, ctl_link, ctl_sink, liveness, on_groups))
        .unwrap_or_else(|e| panic!("failed to spawn controller thread: {e}")); // lint: allow(panic-path) startup-only: OS refusing to spawn the controller thread is unrecoverable before training begins

    let reducers = worker_links
        .into_iter()
        .zip(endpoints)
        .map(|(link, endpoint)| {
            PartialReducer::from_parts(Box::new(link), Box::new(endpoint), sink.clone())
        })
        .collect();

    (ControllerHandle { join }, reducers)
}

/// Spawns a controller configured as a *gossip coordinator*: pairwise
/// groups (`P = 2`), constant 1/2 weights, first-come pairing. A pairwise
/// model average **is** a partial reduce with group size two, so AD-PSGD
/// style gossip runs on the same runtime — workers call `reduce` after
/// each local step and get matched with whichever peer signals next.
///
/// # Panics
/// Panics if `num_workers < 2`.
pub fn spawn_gossip(
    num_workers: usize,
    sink: Arc<dyn TraceSink>,
) -> (ControllerHandle, Vec<PartialReducer>) {
    assert!(num_workers >= 2, "gossip needs at least two workers");
    spawn_with_sink(ControllerConfig::constant(num_workers, 2), sink)
}

/// Like [`spawn`], but the control plane runs over a real TCP message
/// queue on loopback — the paper prototype's architecture (§4). The model
/// collectives remain in-process; only the few-bytes signaling crosses
/// sockets, exactly as in the paper (Gloo for data, TCP MQ for control).
///
/// # Panics
/// Panics if the loopback listener cannot be bound or the handshake fails.
pub fn spawn_tcp(config: ControllerConfig) -> (ControllerHandle, Vec<PartialReducer>) {
    spawn_tcp_with_sink(config, Arc::new(NullSink))
}

/// Like [`spawn_tcp`], but traced: the observer sits directly on the TCP
/// message queue, so [`TraceEvent::AssignmentSent`] records what actually
/// crossed the socket.
///
/// # Panics
/// Panics if the loopback listener cannot be bound or the handshake fails.
pub fn spawn_tcp_with_sink(
    config: ControllerConfig,
    sink: Arc<dyn TraceSink>,
) -> (ControllerHandle, Vec<PartialReducer>) {
    spawn_tcp_with_options(
        config,
        RuntimeOptions {
            sink,
            liveness: None,
            on_groups: None,
        },
    )
}

/// Like [`spawn_tcp_with_sink`], but with full [`RuntimeOptions`]. Over
/// TCP, heartbeats are real frames on the control socket, so eviction
/// detects genuine network silence.
///
/// # Panics
/// Panics if the loopback listener cannot be bound or the handshake fails.
pub fn spawn_tcp_with_options(
    config: ControllerConfig,
    opts: RuntimeOptions,
) -> (ControllerHandle, Vec<PartialReducer>) {
    config.validate();
    let RuntimeOptions {
        sink,
        liveness,
        on_groups,
    } = opts;
    let n = config.num_workers;
    let (listener, addr) = preduce_comm::tcp::bind_controller("127.0.0.1:0");

    // Dial all workers first (the listener backlog holds them), then
    // accept; avoids needing a connector thread per worker.
    let worker_links: Vec<preduce_comm::tcp::TcpWorkerLink> = (0..n)
        .map(|rank| {
            preduce_comm::tcp::TcpWorkerLink::connect(addr, rank)
                .unwrap_or_else(|e| panic!("loopback connect: {e}")) // lint: allow(panic-path) startup-only: the documented contract is to panic if the loopback handshake fails before training begins
        })
        .collect();
    let ctl_link = preduce_comm::tcp::accept_workers(&listener, n)
        .unwrap_or_else(|e| panic!("worker handshake: {e}")); // lint: allow(panic-path) startup-only: the documented contract is to panic if the loopback handshake fails before training begins
    let ctl_link = ObservedControlPlane::new(ctl_link, Arc::new(SinkObserver::new(sink.clone())));

    let endpoints = CommWorld::new(n).into_endpoints();
    let ctl_sink = sink.clone();
    let join = thread::Builder::new()
        .name("preduce-controller-tcp".into())
        .spawn(move || controller_loop(config, ctl_link, ctl_sink, liveness, on_groups))
        .unwrap_or_else(|e| panic!("failed to spawn controller thread: {e}")); // lint: allow(panic-path) startup-only: OS refusing to spawn the controller thread is unrecoverable before training begins

    let reducers = worker_links
        .into_iter()
        .zip(endpoints)
        .map(|(link, endpoint)| {
            PartialReducer::from_parts(Box::new(link), Box::new(endpoint), sink.clone())
        })
        .collect();

    (ControllerHandle { join }, reducers)
}

/// Controller shutdown deadline: total control-plane silence tolerated
/// before the loop assumes every worker handle is gone.
const IDLE_DEADLINE: Duration = Duration::from_secs(60);

fn controller_loop<C: ControlPlane>(
    config: ControllerConfig,
    mut link: C,
    sink: Arc<dyn TraceSink>,
    liveness: Option<LivenessPolicy>,
    mut on_groups: Option<GroupHook>,
) -> ControllerStats {
    let n = config.num_workers;
    let p = config.group_size;
    let mut controller = Controller::with_sink(config, sink);
    let mut active = n;
    let mut singletons = 0u64;
    let mut evictions = 0u64;
    let mut observed_groups = 0u64;
    // Worker iterations seen in pending singleton-drain signals.
    let mut pending_drain: Vec<(usize, u64)> = Vec::new();

    // Liveness bookkeeping: when each worker was last heard from (any
    // signal counts) and how many silent windows were already narrated.
    let mut last_seen: Vec<Instant> = vec![Instant::now(); n];
    let mut reported_misses: Vec<u64> = vec![0; n];
    let mut last_activity = Instant::now();
    // With liveness on, wake at the heartbeat period so silence is
    // noticed even while other workers keep the queue busy elsewhere.
    let recv_timeout = match liveness {
        Some(policy) => policy.heartbeat_interval.min(IDLE_DEADLINE),
        None => IDLE_DEADLINE,
    };

    while active > 0 {
        let signal = match link.recv_signal(recv_timeout) {
            Ok(s) => {
                last_activity = Instant::now();
                Some(s)
            }
            // An idle poll tick: fall through to the liveness sweep.
            Err(CommError::Timeout { .. }) if last_activity.elapsed() < IDLE_DEADLINE => None,
            // All worker handles dropped (or terminal silence): shut down.
            Err(_) => break,
        };
        if let Some(signal) = signal {
            let from = match &signal {
                WorkerSignal::Ready { worker, .. }
                | WorkerSignal::Leaving { worker }
                | WorkerSignal::Heartbeat { worker } => *worker,
            };
            if let Some(seen) = last_seen.get_mut(from) {
                *seen = Instant::now();
            }
            if let Some(misses) = reported_misses.get_mut(from) {
                *misses = 0;
            }
            match signal {
                WorkerSignal::Ready { worker, iteration } => {
                    if worker >= n {
                        // Malformed rank from a remote peer: drop it.
                    } else if active < p {
                        // Too few workers remain to ever fill a group:
                        // answer with a singleton so the caller proceeds
                        // alone (unless the sender was already evicted).
                        if !controller.has_left(worker) {
                            pending_drain.push((worker, iteration));
                        }
                    } else if controller.push_ready(worker, iteration)
                        && drain_groups(&mut controller, &mut link).is_err()
                    {
                        return stats(&controller, singletons, evictions);
                    }
                }
                WorkerSignal::Leaving { worker } => {
                    // An evicted worker may still announce departure
                    // (e.g. a stall misjudged as a crash); it already
                    // left, so the announcement is a no-op.
                    if worker < n && !controller.has_left(worker) {
                        active -= 1;
                        controller.mark_left(worker);
                        // A departure can unblock a frozen-avoidance
                        // deferral (the queue may now cover every
                        // remaining worker).
                        if active >= p && drain_groups(&mut controller, &mut link).is_err() {
                            return stats(&controller, singletons, evictions);
                        }
                    }
                }
                WorkerSignal::Heartbeat { .. } => {
                    // Liveness bookkeeping above is the whole effect.
                }
            }
        }
        // Liveness sweep: evict workers whose silence exceeded the
        // policy's budget, routing them through the ordinary departure
        // path (queue purge + repair).
        if let Some(policy) = liveness {
            let now = Instant::now();
            for worker in 0..n {
                if controller.has_left(worker) {
                    continue;
                }
                let silent = match last_seen.get(worker) {
                    Some(seen) => now.duration_since(*seen),
                    None => continue,
                };
                let misses =
                    (silent.as_micros() / policy.heartbeat_interval.as_micros().max(1)) as u64;
                if misses == 0 {
                    continue;
                }
                let reported = match reported_misses.get_mut(worker) {
                    Some(r) => r,
                    None => continue,
                };
                if misses > *reported {
                    *reported = misses;
                    if controller.sink().enabled() {
                        controller
                            .sink()
                            .record(TraceEvent::HeartbeatMissed { worker, misses });
                    }
                }
                if misses >= policy.miss_threshold {
                    evictions += 1;
                    active -= 1;
                    if controller.sink().enabled() {
                        controller
                            .sink()
                            .record(TraceEvent::WorkerEvicted { worker, active });
                    }
                    controller.mark_left(worker);
                }
            }
            if active >= p && drain_groups(&mut controller, &mut link).is_err() {
                return stats(&controller, singletons, evictions);
            }
        }
        // If the fleet shrank below P, flush everyone still queued or
        // drain-pending as singletons.
        if active < p {
            let mut flush: Vec<(usize, u64)> = controller.drain_pending();
            flush.append(&mut pending_drain);
            for (worker, iteration) in flush.drain(..) {
                // Evicted after queueing for drain: no receiver anymore.
                if controller.has_left(worker) {
                    continue;
                }
                singletons += 1;
                if controller.sink().enabled() {
                    controller
                        .sink()
                        .record(TraceEvent::SingletonIssued { worker, iteration });
                }
                let assignment = GroupAssignment {
                    group: vec![worker],
                    weights: crate::weights::singleton_weights(),
                    base_tag: 0,
                    new_iteration: iteration,
                };
                if link.send_assignment(worker, assignment).is_err() {
                    return stats(&controller, singletons, evictions);
                }
            }
        }
        // Group observer: one call per pass that formed new groups, after
        // every assignment for the pass went out.
        if let Some(hook) = on_groups.as_mut() {
            if controller.groups_formed() != observed_groups {
                observed_groups = controller.groups_formed();
                hook(&controller);
            }
        }
    }
    stats(&controller, singletons, evictions)
}

/// Largest ready-signal batch ingested per reactor scan. Bounds the time
/// the serving loop spends away from the liveness sweep during a storm.
const INGEST_BATCH: usize = 1024;

/// Runs the controller *serving loop* for a fleet of remote worker
/// processes — the multi-process counterpart of the private loop behind
/// [`spawn`]. The caller owns process bring-up (bind, accept, handshake;
/// see `preduce_comm::reactor::accept_fleet`) and hands over the batch
/// control plane plus the fleet membership established at accept time.
///
/// Differences from the in-process loop:
/// - one [`TraceEvent::ProcessJoined`] is narrated per `joined` entry
///   before any signal is consumed, so a replayed trace proves the
///   handshake preceded participation;
/// - ready signals are ingested in batches ([`BatchControlPlane`] +
///   [`Controller::ingest_ready`]) so a signal storm costs one queue-scan
///   per reactor wakeup instead of one per signal;
/// - a transport-reported [`ControlEvent::Disconnected`] (socket EOF or
///   error — proof of death, unlike mere silence) narrates
///   [`TraceEvent::ProcessDisconnected`] and evicts immediately through
///   the ordinary departure path.
///
/// Returns once every worker departed (voluntarily or by eviction), or
/// on terminal transport failure. Unlike the in-process loop, a failed
/// *send* is not terminal here: writing to a freshly dead socket races
/// the reactor's [`ControlEvent::Disconnected`] for the same worker, so
/// the loop keeps serving and lets the disconnect event evict through
/// the ordinary path (live members of an unannounced group time out,
/// degrade, and re-signal). Total control-plane silence past the idle
/// deadline remains the terminal backstop.
///
/// # Panics
/// Panics if the config is invalid.
pub fn serve_fleet<C: BatchControlPlane>(
    config: ControllerConfig,
    mut link: C,
    joined: &[(usize, String)],
    opts: RuntimeOptions,
) -> ControllerStats {
    config.validate();
    let RuntimeOptions {
        sink,
        liveness,
        mut on_groups,
    } = opts;
    let n = config.num_workers;
    let p = config.group_size;
    let mut controller = Controller::with_sink(config, sink);
    if controller.sink().enabled() {
        for (worker, addr) in joined {
            controller.sink().record(TraceEvent::ProcessJoined {
                worker: *worker,
                addr: addr.clone(),
            });
        }
    }
    let mut active = n;
    let mut singletons = 0u64;
    let mut evictions = 0u64;
    let mut observed_groups = 0u64;
    let mut pending_drain: Vec<(usize, u64)> = Vec::new();
    let mut ready_batch: Vec<(usize, u64)> = Vec::new();

    let mut last_seen: Vec<Instant> = vec![Instant::now(); n];
    let mut reported_misses: Vec<u64> = vec![0; n];
    let mut last_activity = Instant::now();
    let recv_timeout = match liveness {
        Some(policy) => policy.heartbeat_interval.min(IDLE_DEADLINE),
        None => IDLE_DEADLINE,
    };

    while active > 0 {
        let events = match link.recv_events(INGEST_BATCH, recv_timeout) {
            Ok(events) => {
                last_activity = Instant::now();
                events
            }
            Err(CommError::Timeout { .. }) if last_activity.elapsed() < IDLE_DEADLINE => Vec::new(),
            Err(_) => break,
        };
        for event in events {
            match event {
                ControlEvent::Signal(WorkerSignal::Ready { worker, iteration }) => {
                    note_heard(&mut last_seen, &mut reported_misses, worker);
                    if active < p {
                        if worker < n && !controller.has_left(worker) {
                            pending_drain.push((worker, iteration));
                        }
                    } else {
                        ready_batch.push((worker, iteration));
                    }
                }
                ControlEvent::Signal(WorkerSignal::Leaving { worker }) => {
                    // Flush queued readys first: they arrived before the
                    // departure and must be scheduled under the old fleet.
                    let _ = ingest_and_drain(&mut controller, &mut link, &mut ready_batch);
                    note_heard(&mut last_seen, &mut reported_misses, worker);
                    if worker < n && !controller.has_left(worker) {
                        active -= 1;
                        controller.mark_left(worker);
                        if active >= p {
                            let _ = drain_groups(&mut controller, &mut link);
                        }
                    }
                }
                ControlEvent::Signal(WorkerSignal::Heartbeat { worker }) => {
                    note_heard(&mut last_seen, &mut reported_misses, worker);
                }
                ControlEvent::Disconnected { worker } => {
                    let _ = ingest_and_drain(&mut controller, &mut link, &mut ready_batch);
                    // A socket closing after the worker already departed
                    // is the normal teardown of a finished peer — only a
                    // *live* worker's disconnect is a death.
                    if worker < n && !controller.has_left(worker) {
                        evictions += 1;
                        active -= 1;
                        if controller.sink().enabled() {
                            controller
                                .sink()
                                .record(TraceEvent::ProcessDisconnected { worker });
                            controller
                                .sink()
                                .record(TraceEvent::WorkerEvicted { worker, active });
                        }
                        controller.mark_left(worker);
                        if active >= p {
                            let _ = drain_groups(&mut controller, &mut link);
                        }
                    }
                }
            }
        }
        let _ = ingest_and_drain(&mut controller, &mut link, &mut ready_batch);
        // Liveness sweep: identical policy to the in-process loop —
        // disconnects catch dead sockets, the sweep catches hung-but-
        // connected workers whose kernel still answers keepalives.
        if let Some(policy) = liveness {
            let now = Instant::now();
            for worker in 0..n {
                if controller.has_left(worker) {
                    continue;
                }
                let silent = match last_seen.get(worker) {
                    Some(seen) => now.duration_since(*seen),
                    None => continue,
                };
                let misses =
                    (silent.as_micros() / policy.heartbeat_interval.as_micros().max(1)) as u64;
                if misses == 0 {
                    continue;
                }
                let reported = match reported_misses.get_mut(worker) {
                    Some(r) => r,
                    None => continue,
                };
                if misses > *reported {
                    *reported = misses;
                    if controller.sink().enabled() {
                        controller
                            .sink()
                            .record(TraceEvent::HeartbeatMissed { worker, misses });
                    }
                }
                if misses >= policy.miss_threshold {
                    evictions += 1;
                    active -= 1;
                    if controller.sink().enabled() {
                        controller
                            .sink()
                            .record(TraceEvent::WorkerEvicted { worker, active });
                    }
                    controller.mark_left(worker);
                }
            }
            if active >= p {
                let _ = drain_groups(&mut controller, &mut link);
            }
        }
        // Fleet below P: flush queued and drain-pending workers as
        // singletons so stragglers keep making progress alone.
        if active < p {
            let mut flush: Vec<(usize, u64)> = controller.drain_pending();
            flush.append(&mut pending_drain);
            for (worker, iteration) in flush.drain(..) {
                if controller.has_left(worker) {
                    continue;
                }
                singletons += 1;
                if controller.sink().enabled() {
                    controller
                        .sink()
                        .record(TraceEvent::SingletonIssued { worker, iteration });
                }
                let assignment = GroupAssignment {
                    group: vec![worker],
                    weights: crate::weights::singleton_weights(),
                    base_tag: 0,
                    new_iteration: iteration,
                };
                // A failed singleton send means this socket just died;
                // its Disconnected event will follow and evict.
                let _ = link.send_assignment(worker, assignment);
            }
        }
        // Group observer: same contract as the in-process loop — one call
        // per reactor pass that formed new groups.
        if let Some(hook) = on_groups.as_mut() {
            if controller.groups_formed() != observed_groups {
                observed_groups = controller.groups_formed();
                hook(&controller);
            }
        }
    }
    stats(&controller, singletons, evictions)
}

/// Marks `worker` as heard-from for the liveness sweep.
fn note_heard(last_seen: &mut [Instant], reported_misses: &mut [u64], worker: usize) {
    if let Some(seen) = last_seen.get_mut(worker) {
        *seen = Instant::now();
    }
    if let Some(misses) = reported_misses.get_mut(worker) {
        *misses = 0;
    }
}

/// Ingests a batch of ready signals and forms every fillable group.
/// `Err(())` means the transport died mid-announcement.
fn ingest_and_drain<C: ControlPlane>(
    controller: &mut Controller,
    link: &mut C,
    batch: &mut Vec<(usize, u64)>,
) -> Result<(), ()> {
    if batch.is_empty() {
        return Ok(());
    }
    let accepted = controller.ingest_ready(batch);
    batch.clear();
    if accepted > 0 {
        drain_groups(controller, link)
    } else {
        Ok(())
    }
}

fn drain_groups<C: ControlPlane>(controller: &mut Controller, link: &mut C) -> Result<(), ()> {
    while let Some(d) = controller.try_form_group() {
        let assignment = GroupAssignment {
            group: d.group,
            weights: d.weights,
            base_tag: d.sequence.wrapping_mul(TAG_STRIDE),
            new_iteration: d.new_iteration,
        };
        if link.announce(&assignment).is_err() {
            return Err(());
        }
    }
    Ok(())
}

fn stats(controller: &Controller, singletons: u64, evictions: u64) -> ControllerStats {
    if controller.sink().enabled() {
        controller.sink().record(TraceEvent::RunFinished {
            groups_formed: controller.groups_formed(),
            repairs: controller.repairs(),
            deferrals: controller.deferrals(),
            singletons,
        });
    }
    // lint: allow(reactor-blocking) end-of-run trace-sink flush: `stats` runs
    // once after the serve loop has exited, not on the per-event poll path.
    controller.sink().flush();
    ControllerStats {
        groups_formed: controller.groups_formed(),
        repairs: controller.repairs(),
        singletons,
        evictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::AggregationMode;

    /// Run `iters` reduces on every worker concurrently; return final
    /// params per worker.
    fn run_fleet(
        config: ControllerConfig,
        iters: usize,
        dim: usize,
    ) -> (Vec<Vec<f32>>, ControllerStats) {
        run_fleet_with(config, iters, dim, spawn)
    }

    fn run_fleet_with(
        config: ControllerConfig,
        iters: usize,
        dim: usize,
        spawner: fn(ControllerConfig) -> (ControllerHandle, Vec<PartialReducer>),
    ) -> (Vec<Vec<f32>>, ControllerStats) {
        let (handle, reducers) = spawner(config);
        let threads: Vec<_> = reducers
            .into_iter()
            .enumerate()
            .map(|(rank, mut r)| {
                thread::spawn(move || {
                    // Worker rank starts with params = rank everywhere.
                    let mut params = vec![rank as f32; dim];
                    let mut iteration = 0u64;
                    for _ in 0..iters {
                        // "Local update": add 1 to every parameter.
                        for v in &mut params {
                            *v += 1.0;
                        }
                        iteration += 1;
                        let out = r.reduce(&mut params, iteration).unwrap();
                        iteration = out.new_iteration;
                    }
                    r.finish().unwrap();
                    params
                })
            })
            .collect();
        let results: Vec<Vec<f32>> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        let stats = handle.join();
        (results, stats)
    }

    #[test]
    fn full_group_reduce_is_allreduce() {
        // P = N: every reduce averages everyone, so all params equal the
        // global mean trajectory.
        let cfg = ControllerConfig::constant(4, 4);
        let (results, stats) = run_fleet(cfg, 3, 5);
        // After iter 1: params_i = i + 1 → mean = 2.5. After each later
        // iter everyone stays equal: +1 then average = same.
        for r in &results {
            for v in r {
                assert!((v - 4.5).abs() < 1e-5, "{results:?}");
            }
        }
        assert_eq!(stats.groups_formed, 3);
    }

    #[test]
    fn partial_groups_mix_models_toward_consensus() {
        let cfg = ControllerConfig::constant(6, 2);
        let (results, stats) = run_fleet(cfg, 50, 3);
        // Pairwise averaging preserves the fleet *mean* exactly: initial
        // mean (0+..+5)/6 = 2.5, plus 50 increments per worker = 52.5.
        // (Individual workers can deviate: they average at different
        // progress points, so a racer ends high and a laggard's partner
        // ends low.)
        let mean: f32 = results.iter().map(|r| r[0]).sum::<f32>() / 6.0;
        assert!((mean - 52.5).abs() < 1e-3, "fleet mean drifted: {mean}");
        // Sanity band: every worker made substantial progress (≫ its own
        // initial value) without running away (≪ initial + all increments
        // it could possibly absorb). Tight pointwise bounds don't exist —
        // averaging mixes values captured at different progress points.
        for r in &results {
            for v in r {
                assert!((20.0..=80.0).contains(v), "out of range: {v}");
            }
        }
        assert!(stats.groups_formed > 0);
        // The run ends with drain singletons for the last workers.
        assert!(stats.singletons <= 50 * 6);
    }

    #[test]
    fn gossip_spawn_pairs_workers() {
        // Pairwise groups only, and the pairwise average conserves the
        // fleet mean: (0+1+2+3)/4 = 1.5, plus 5 increments each = 6.5.
        let (handle, reducers) = spawn_gossip(4, Arc::new(NullSink));
        let threads: Vec<_> = reducers
            .into_iter()
            .enumerate()
            .map(|(rank, mut r)| {
                thread::spawn(move || {
                    let mut params = vec![rank as f32; 3];
                    let mut iteration = 0u64;
                    for _ in 0..5 {
                        for v in &mut params {
                            *v += 1.0;
                        }
                        iteration += 1;
                        let out = r.reduce(&mut params, iteration).unwrap();
                        assert!(out.group.len() <= 2, "gossip group too large");
                        iteration = out.new_iteration;
                    }
                    r.finish().unwrap();
                    params
                })
            })
            .collect();
        let results: Vec<Vec<f32>> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        let stats = handle.join();
        let mean: f32 = results.iter().map(|r| r[0]).sum::<f32>() / 4.0;
        assert!((mean - 6.5).abs() < 1e-4, "fleet mean drifted: {mean}");
        assert!(stats.groups_formed > 0);
    }

    #[test]
    fn dynamic_mode_runs_and_fast_forwards() {
        // α = 0.3 so the fresh member's weight (1 − α = 0.7) dominates
        // visibly (with α = 0.5 a fresh/stale pair weighs exactly 0.5/0.5
        // under the conservative gap policy).
        let cfg = ControllerConfig {
            num_workers: 3,
            group_size: 2,
            mode: AggregationMode::Dynamic {
                alpha: 0.3,
                gap_policy: crate::weights::GapPolicy::Initial,
            },
            history_window: None,
            frozen_avoidance: true,
        };
        let (handle, mut reducers) = spawn(cfg);
        let r2 = reducers.pop().unwrap();
        let r1 = reducers.pop().unwrap();
        let r0 = reducers.pop().unwrap();

        let t1 = thread::spawn(move || {
            let mut r = r0;
            let mut params = vec![0.0f32; 4];
            // Report a high iteration count.
            let out = r.reduce(&mut params, 100).unwrap();
            r.finish().unwrap();
            out
        });
        let t2 = thread::spawn(move || {
            let mut r = r1;
            let mut params = vec![10.0f32; 4];
            let out = r.reduce(&mut params, 1).unwrap();
            r.finish().unwrap();
            (out, params)
        });
        let t3 = thread::spawn(move || {
            let mut r = r2;
            // Third worker never reduces; it just leaves so the controller
            // can shut down.
            r.finish().unwrap();
        });

        let out1 = t1.join().unwrap();
        let (out2, params2) = t2.join().unwrap();
        t3.join().unwrap();
        handle.join();

        // Both members fast-forward to iteration 100.
        assert_eq!(out1.new_iteration, 100);
        assert_eq!(out2.new_iteration, 100);
        // The stale worker (iteration 1) got down-weighted: the average
        // lies closer to worker 0's value (0) than the midpoint 5.
        assert!(params2[0] < 5.0, "stale model overweighted: {params2:?}");
    }

    #[test]
    fn drain_singletons_prevent_deadlock() {
        // Worker 0 runs many more iterations than the other; once worker 1
        // leaves, worker 0 must keep making progress alone.
        let cfg = ControllerConfig::constant(2, 2);
        let (handle, mut reducers) = spawn(cfg);
        let r1 = reducers.pop().unwrap();
        let r0 = reducers.pop().unwrap();

        let t0 = thread::spawn(move || {
            let mut r = r0;
            let mut params = vec![0.0f32; 2];
            for i in 1..=10 {
                r.reduce(&mut params, i).unwrap();
            }
            r.finish().unwrap();
        });
        let t1 = thread::spawn(move || {
            let mut r = r1;
            let mut params = vec![1.0f32; 2];
            r.reduce(&mut params, 1).unwrap();
            r.finish().unwrap();
        });
        t0.join().unwrap();
        t1.join().unwrap();
        let stats = handle.join();
        assert!(stats.singletons >= 9, "stats: {stats:?}");
    }

    #[test]
    fn tcp_control_plane_behaves_like_channels() {
        // P = N over the TCP message queue: same all-reduce semantics as
        // the channel transport.
        let cfg = ControllerConfig::constant(4, 4);
        let (results, stats) = run_fleet_with(cfg, 3, 5, spawn_tcp);
        for r in &results {
            for v in r {
                assert!((v - 4.5).abs() < 1e-5, "{results:?}");
            }
        }
        assert_eq!(stats.groups_formed, 3);
    }

    #[test]
    fn tcp_partial_groups_run_concurrently() {
        let cfg = ControllerConfig::constant(6, 2);
        let (results, stats) = run_fleet_with(cfg, 20, 3, spawn_tcp);
        // Mean conservation, as in the channel-transport test.
        let mean: f32 = results.iter().map(|r| r[0]).sum::<f32>() / 6.0;
        assert!((mean - 22.5).abs() < 1e-3, "fleet mean drifted: {mean}");
        assert!(stats.groups_formed > 0);
    }

    #[test]
    fn traced_fleet_satisfies_invariants() {
        use crate::invariants::InvariantChecker;
        use crate::trace::{RingSink, TraceEvent};

        let sink = Arc::new(RingSink::new(65536));
        let cfg = ControllerConfig::constant(6, 2);
        let (handle, reducers) = spawn_with_sink(cfg, sink.clone());
        let threads: Vec<_> = reducers
            .into_iter()
            .enumerate()
            .map(|(rank, mut r)| {
                thread::spawn(move || {
                    let mut params = vec![rank as f32; 4];
                    let mut iteration = 0u64;
                    for _ in 0..20 {
                        // Stagger progress so groups mix stale and fresh.
                        thread::sleep(Duration::from_micros(50 * rank as u64));
                        for v in &mut params {
                            *v += 1.0;
                        }
                        iteration += 1;
                        let out = r.reduce(&mut params, iteration).unwrap();
                        iteration = out.new_iteration;
                    }
                    r.finish().unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = handle.join();
        assert_eq!(sink.dropped(), 0, "ring overflowed; raise capacity");

        let events = sink.snapshot();
        // The full vocabulary shows up: controller decisions, transport
        // deliveries, worker completions, closing counters.
        assert!(matches!(events[0], TraceEvent::RunStarted { .. }));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::AssignmentSent { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::ReduceCompleted { .. })));
        assert!(matches!(
            events.last(),
            Some(TraceEvent::RunFinished { .. })
        ));

        let report = InvariantChecker::check(&events);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.groups, stats.groups_formed);
    }

    #[test]
    fn liveness_evicts_silent_worker_and_run_completes() {
        use crate::invariants::InvariantChecker;
        use crate::trace::RingSink;

        let sink = Arc::new(RingSink::new(65536));
        let cfg = ControllerConfig::constant(3, 2);
        let (handle, mut reducers) = spawn_with_options(
            cfg,
            RuntimeOptions {
                sink: sink.clone(),
                liveness: Some(LivenessPolicy::new(Duration::from_millis(50), 6)),
                on_groups: None,
            },
        );
        let r2 = reducers.pop().unwrap();
        let r1 = reducers.pop().unwrap();
        let r0 = reducers.pop().unwrap();

        let crasher = thread::spawn(move || {
            let mut r = r2;
            assert!(r.start_heartbeat(Duration::from_millis(10)));
            let mut params = vec![2.0f32; 4];
            r.reduce(&mut params, 1).unwrap();
            // Fail-stop at the iteration boundary: no Leaving signal.
            r.crash();
        });
        let survivors: Vec<_> = [r0, r1]
            .into_iter()
            .enumerate()
            .map(|(rank, mut r)| {
                thread::spawn(move || {
                    assert!(r.start_heartbeat(Duration::from_millis(10)));
                    let mut params = vec![rank as f32; 4];
                    let mut iteration = 0u64;
                    for _ in 0..30 {
                        thread::sleep(Duration::from_millis(5));
                        iteration += 1;
                        let out = r.reduce(&mut params, iteration).unwrap();
                        iteration = out.new_iteration;
                    }
                    r.finish().unwrap();
                })
            })
            .collect();

        crasher.join().unwrap();
        for t in survivors {
            t.join().unwrap();
        }
        let stats = handle.join();
        assert_eq!(stats.evictions, 1, "stats: {stats:?}");
        assert!(stats.groups_formed > 0);

        let events = sink.snapshot();
        let evicted_pos = events
            .iter()
            .position(|e| matches!(e, TraceEvent::WorkerEvicted { worker: 2, .. }))
            .expect("eviction traced");
        let missed_pos = events
            .iter()
            .position(|e| matches!(e, TraceEvent::HeartbeatMissed { worker: 2, .. }))
            .expect("misses traced");
        assert!(missed_pos < evicted_pos, "misses narrate before eviction");
        assert!(
            matches!(
                events.get(evicted_pos + 1),
                Some(TraceEvent::WorkerLeft { worker: 2, .. })
            ),
            "eviction routes through the departure path: {:?}",
            events.get(evicted_pos + 1)
        );
        let report = InvariantChecker::check(&events);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn tcp_liveness_flushes_stranded_signal_after_eviction() {
        // Worker 1 dies before ever signaling ready; worker 0's queued
        // signal can never form a pair. Eviction must shrink the fleet
        // below P and flush worker 0 as a singleton instead of leaving
        // it blocked.
        let cfg = ControllerConfig::constant(2, 2);
        let (handle, mut reducers) = spawn_tcp_with_options(
            cfg,
            RuntimeOptions {
                sink: Arc::new(NullSink),
                liveness: Some(LivenessPolicy::new(Duration::from_millis(50), 6)),
                on_groups: None,
            },
        );
        let r1 = reducers.pop().unwrap();
        let mut r0 = reducers.pop().unwrap();

        assert!(r0.start_heartbeat(Duration::from_millis(10)));
        // Fail-stop before the first signal: no Ready, no Leaving, and no
        // heartbeats ever arrive from rank 1. Only the liveness sweep can
        // notice this worker is gone.
        r1.crash();

        let mut params = vec![1.0f32; 3];
        let out = r0.reduce(&mut params, 1).unwrap();
        assert_eq!(out.group, vec![0], "flushed as a singleton");
        r0.finish().unwrap();
        let stats = handle.join();
        assert_eq!(stats.evictions, 1, "stats: {stats:?}");
        assert_eq!(stats.singletons, 1, "stats: {stats:?}");
    }

    #[test]
    fn serve_fleet_runs_channel_fleet_and_traces_joins() {
        use crate::invariants::InvariantChecker;
        use crate::trace::RingSink;

        let sink = Arc::new(RingSink::new(65536));
        let cfg = ControllerConfig::constant(4, 2);
        let (ctl_link, worker_links) = control_links(4);
        let ctl_link =
            ObservedControlPlane::new(ctl_link, Arc::new(SinkObserver::new(sink.clone())));
        let joined: Vec<(usize, String)> = (0..4).map(|r| (r, format!("proc-{r}"))).collect();
        let serve_sink = sink.clone();
        let server = thread::spawn(move || {
            serve_fleet(
                cfg,
                ctl_link,
                &joined,
                RuntimeOptions {
                    sink: serve_sink,
                    liveness: None,
                    on_groups: None,
                },
            )
        });

        let endpoints = CommWorld::new(4).into_endpoints();
        let threads: Vec<_> = worker_links
            .into_iter()
            .zip(endpoints)
            .enumerate()
            .map(|(rank, (link, endpoint))| {
                let sink = sink.clone();
                thread::spawn(move || {
                    let mut r =
                        PartialReducer::from_parts(Box::new(link), Box::new(endpoint), sink);
                    let mut params = vec![rank as f32; 3];
                    let mut iteration = 0u64;
                    for _ in 0..10 {
                        for v in &mut params {
                            *v += 1.0;
                        }
                        iteration += 1;
                        let out = r.reduce(&mut params, iteration).unwrap();
                        iteration = out.new_iteration;
                    }
                    r.finish().unwrap();
                    params
                })
            })
            .collect();
        let results: Vec<Vec<f32>> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        let stats = server.join().unwrap();
        assert!(stats.groups_formed > 0, "stats: {stats:?}");
        // Pairwise averaging conserves the fleet mean: (0+1+2+3)/4 = 1.5,
        // plus 10 increments per worker.
        let mean: f32 = results.iter().map(|r| r[0]).sum::<f32>() / 4.0;
        assert!((mean - 11.5).abs() < 1e-3, "fleet mean drifted: {mean}");

        let events = sink.snapshot();
        let joins = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ProcessJoined { .. }))
            .count();
        assert_eq!(joins, 4, "one join per fleet member");
        let report = InvariantChecker::check(&events);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn reduce_after_finish_panics() {
        let cfg = ControllerConfig::constant(2, 2);
        let (handle, mut reducers) = spawn(cfg);
        let mut r1 = reducers.pop().unwrap();
        let mut r0 = reducers.pop().unwrap();
        r0.finish().unwrap();
        r1.finish().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = r0.reduce(&mut [0.0], 1);
        }));
        assert!(result.is_err());
        handle.join();
    }
}
