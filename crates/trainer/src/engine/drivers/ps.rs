//! Asynchronous parameter-server strategies: ASP, SSP, and the
//! heterogeneity-aware HETE.
//!
//! A single logical server (sharded across the fleet for cost purposes)
//! holds the global model. Each worker loops independently: pull → compute
//! gradient → push. Staleness arises naturally: between a worker's pull and
//! its push, other workers' pushes move the server model. The virtual-time
//! projection is moved verbatim from `sim::ps_async`; the threaded
//! projection shares the same [`PsPolicy`] staleness math over a real
//! shared server (mutex-guarded model, condvar SSP gate).

use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use preduce_models::SgdOptimizer;
use preduce_simnet::{EventQueue, SimTime};
use preduce_tensor::Tensor;

use crate::engine::setup::{build_fleet, evaluate_uniform_average};
use crate::engine::substrate::{must, ThreadedSubstrate};
use crate::metrics::RunResult;
use crate::sim::SimHarness;
use crate::threaded::ThreadedReport;

/// The staleness policy distinguishing the three PS variants — the
/// substrate-independent part of the strategy, shared by both projections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum PsPolicy {
    /// Fully asynchronous (ASP): apply everything immediately, scale 1.
    Asp,
    /// Stale-synchronous (SSP): a worker may run at most `bound` iterations
    /// ahead of the slowest; violators block until the laggard catches up.
    Ssp { bound: u64 },
    /// Heterogeneity-aware [20]: scale the learning rate by `1/staleness`
    /// (DynSGD's staleness-adaptive rate).
    Hete,
}

impl PsPolicy {
    /// Learning-rate scale for a push with the given staleness.
    fn lr_scale(self, staleness: u64) -> f32 {
        match self {
            PsPolicy::Asp | PsPolicy::Ssp { .. } => 1.0,
            PsPolicy::Hete => 1.0 / staleness as f32,
        }
    }
}

/// Fully-asynchronous parameter server (ASP).
pub fn run_ps_asp(h: SimHarness) -> RunResult {
    run_ps(h, PsPolicy::Asp, "PS ASP".into())
}

/// Stale-synchronous parallel parameter server (SSP) with the given bound.
pub fn run_ps_ssp(h: SimHarness, bound: u64) -> RunResult {
    run_ps(h, PsPolicy::Ssp { bound }, format!("PS SSP (s={bound})"))
}

/// Heterogeneity-aware parameter server (HETE): staleness-scaled rates.
pub fn run_ps_hete(h: SimHarness) -> RunResult {
    run_ps(h, PsPolicy::Hete, "PS HETE".into())
}

fn run_ps(mut h: SimHarness, policy: PsPolicy, label: String) -> RunResult {
    let n = h.num_workers();
    let base_comm = h.network.ps_push_pull_time(n, h.bytes);
    // Each worker's round trip runs over its own link.
    let comm_of: Vec<f64> = (0..n).map(|w| base_comm * h.link_slowdown[w]).collect();

    // Server state: the global model plus one shared optimizer. By default
    // the server runs *momentum-free* SGD: with interleaved stale pushes a
    // shared momentum buffer mixes directions from different model
    // versions and destabilizes training — async PS systems (SSP, DynSGD)
    // apply plain SGD server-side. `ExperimentConfig::ps_server_momentum`
    // overrides this to study the instability.
    let mut server = h.workers[0].params.clone();
    let mut server_cfg = *h.workers[0].opt.config();
    server_cfg.momentum = h.ps_server_momentum;
    let mut server_opt = SgdOptimizer::new(server_cfg, server.len());

    // Per-worker bookkeeping.
    let mut push_count = 0u64; // global pushes (server version)
    let mut version_at_pull = vec![0u64; n];
    let mut iter_of = vec![0u64; n];
    let mut blocked: Vec<Option<(f64, SimTime)>> = vec![None; n]; // SSP

    // Workers start by pulling the initial model (free at t=0) and
    // computing.
    let mut queue: EventQueue<usize> = EventQueue::new();
    let mut started = vec![SimTime::ZERO; n];
    for w in 0..n {
        let ct = h.compute_time(w, SimTime::ZERO);
        queue.schedule(SimTime::new(ct), w);
    }

    let mut now = SimTime::ZERO;
    'outer: while let Some((t, w)) = queue.pop() {
        now = t;
        // Gradient at the worker's pulled view.
        let grad = h.workers[w].gradient(&mut h.rng);

        // Push arrives after the round trip; the update applies then.
        let done = now + comm_of[w];
        let staleness = push_count - version_at_pull[w] + 1;
        let scale = policy.lr_scale(staleness);
        server_opt.step_scaled(&mut server, &grad, scale);
        push_count += 1;
        iter_of[w] += 1;

        // Pull the fresh model.
        h.workers[w].set_params(&server);
        h.workers[w].iteration = iter_of[w];
        version_at_pull[w] = push_count;

        let dur = done - started[w];
        if h.record_update(done, dur) {
            now = done;
            break 'outer;
        }

        // SSP gate: block if this worker ran too far ahead.
        let min_iter = iter_of.iter().copied().min().unwrap_or(0);
        if let PsPolicy::Ssp { bound } = policy {
            if iter_of[w] > min_iter + bound {
                blocked[w] = Some((h.compute_time(w, done), done));
            } else {
                started[w] = done;
                let ct = h.compute_time(w, done);
                queue.schedule(done + ct, w);
            }
            // Release any blocked workers the new minimum unblocks.
            let min_iter = iter_of.iter().copied().min().unwrap_or(0);
            for b in 0..n {
                if let Some((ct, since)) = blocked[b] {
                    if iter_of[b] <= min_iter + bound {
                        blocked[b] = None;
                        let resume = done.max(since);
                        started[b] = resume;
                        queue.schedule(resume + ct, b);
                    }
                }
            }
        } else {
            started[w] = done;
            let ct = h.compute_time(w, done);
            queue.schedule(done + ct, w);
        }
    }
    h.finish(label, now)
}

// ---------------------------------------------------------------------------
// Threaded projection
// ---------------------------------------------------------------------------

/// The shared server of the threaded projection.
struct PsServer {
    state: Mutex<PsState>,
    /// SSP gate: pushers notify after every version bump; blocked workers
    /// wait here until the fleet minimum catches up.
    gate: Condvar,
}

struct PsState {
    params: Tensor,
    opt: SgdOptimizer,
    push_count: u64,
    iter_of: Vec<u64>,
    /// Workers that exhausted their iteration budget: they leave the SSP
    /// minimum so nobody blocks on a worker that will never push again.
    done: Vec<bool>,
}

impl PsState {
    fn min_active_iter(&self) -> u64 {
        self.iter_of
            .iter()
            .zip(&self.done)
            .filter(|(_, &d)| !d)
            .map(|(&i, _)| i)
            .min()
            .unwrap_or(u64::MAX)
    }
}

/// Threaded asynchronous parameter server under the given staleness
/// policy: pull → gradient → push, with the server applying
/// [`PsPolicy::lr_scale`]-scaled steps and the SSP variant blocking
/// runaway workers on a condvar until the slowest catches up.
pub(crate) fn threaded_ps_async(sub: &ThreadedSubstrate, policy: PsPolicy) -> ThreadedReport {
    let config = sub.config();
    let n = config.num_workers;
    let fleet = build_fleet(config);
    let params = fleet.workers[0].params.clone();
    let mut server_cfg = *fleet.workers[0].opt.config();
    server_cfg.momentum = config.ps_server_momentum;
    let opt = SgdOptimizer::new(server_cfg, params.len());
    let server = Arc::new(PsServer {
        state: Mutex::new(PsState {
            params,
            opt,
            push_count: 0,
            iter_of: vec![0; n],
            done: vec![false; n],
        }),
        gate: Condvar::new(),
    });
    let resources: Vec<_> = (0..n).map(|_| Arc::clone(&server)).collect();

    let out = sub.run_spmd(fleet.workers, resources, move |mut ctx, mut w, server| {
        for _ in 0..ctx.iters {
            if !ctx.delay.is_zero() {
                thread::sleep(ctx.delay);
            }
            // Pull: record the server version the gradient is taken at.
            let version = {
                let s = must("server lock", server.state.lock());
                w.set_params(&s.params);
                s.push_count
            };
            let grad = w.gradient(&mut ctx.rng);
            // Push: staleness = pushes that landed since our pull, plus
            // our own (same accounting as the virtual-time projection).
            {
                let mut guard = must("server lock", server.state.lock());
                let s = &mut *guard;
                let staleness = s.push_count - version + 1;
                s.opt
                    .step_scaled(&mut s.params, &grad, policy.lr_scale(staleness));
                s.push_count += 1;
                s.iter_of[ctx.rank] += 1;
                w.iteration = s.iter_of[ctx.rank];
                w.set_params(&s.params);
            }
            server.gate.notify_all();
            if let PsPolicy::Ssp { bound } = policy {
                let mut s = must("server lock", server.state.lock());
                while s.iter_of[ctx.rank] > s.min_active_iter().saturating_add(bound) {
                    s = must("ssp gate", server.gate.wait(s));
                }
            }
        }
        {
            let mut s = must("server lock", server.state.lock());
            s.done[ctx.rank] = true;
        }
        server.gate.notify_all();
        let m = must("server lock", server.state.lock()).params.clone();
        (m, w.iteration)
    });

    ThreadedReport {
        wall_seconds: out.wall_seconds,
        accuracy: evaluate_uniform_average(config, &fleet.test, &out.params),
        iterations: out.iterations,
        controller: None,
    }
}
