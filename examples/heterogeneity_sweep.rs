//! Sweep the heterogeneity level (how many of 8 workers share one GPU)
//! and watch each method's per-update time respond — the essence of
//! Table 1 in one picture.
//!
//! Run: `cargo run --release --example heterogeneity_sweep`

use preduce::data::cifar10_like;
use preduce::models::zoo;
use preduce::trainer::{run_experiment, ExperimentConfig, Strategy};

fn main() {
    let strategies = [
        Strategy::AllReduce,
        Strategy::PsBsp,
        Strategy::PsAsp,
        Strategy::PsBackup { backups: 3 },
        Strategy::PReduce {
            p: 3,
            dynamic: false,
        },
    ];

    println!("per-update time (seconds) vs heterogeneity level, resnet34 analog, N = 8");
    print!("{:<4}", "HL");
    for s in &strategies {
        print!("{:>20}", s.label());
    }
    println!();

    for hl in 1..=4usize {
        let mut config = ExperimentConfig::table1(zoo::resnet34(), cifar10_like(), hl);
        // Hardware-efficiency sweep: fixed update budget, no threshold.
        config.threshold = 0.999;
        config.max_updates = 600;
        config.eval_every = 600;

        print!("{hl:<4}");
        for s in &strategies {
            let r = run_experiment(*s, &config);
            print!("{:>20.3}", r.per_update_time());
        }
        println!();
    }

    println!("\nSynchronous methods (AR, BSP) degrade with HL because the barrier");
    println!("waits for the shared GPU; P-Reduce's group of 3 keeps its per-update");
    println!("time nearly flat. ASP is flat too — but pays in statistical");
    println!("efficiency (see `cargo run --release -p preduce-bench --bin table1`).");
}
