//! Discrete-event simulation of a heterogeneous training cluster.
//!
//! The paper's experiments run on a V100 GPU cluster whose heterogeneity
//! comes from GPU sharing (synthetic, Table 1) or from production resource
//! contention (Figs. 9–11). Neither is available here, so this crate builds
//! the substrate the reproduction needs: a virtual-time simulator whose
//! *per-update time distributions* match the paper's heterogeneity model
//! (§2.3 models heterogeneity exactly as "different time costs on a single
//! update among workers, independently distributed").
//!
//! Pieces:
//!
//! * [`SimTime`] / [`EventQueue`] — a deterministic discrete-event core.
//! * [`HeterogeneityModel`] implementations — [`UniformFleet`] (homogeneous),
//!   [`GpuSharingFleet`] (the paper's HL knob: `HL` workers share one
//!   physical GPU), [`SpeedFleet`] (fixed per-worker multipliers, e.g. the
//!   "one worker is 2× slower" example of Fig. 4(b)), and [`MarkovFleet`]
//!   (a two-state Markov-modulated slowdown reproducing production-cluster
//!   dynamics for Figs. 9–11).
//! * [`NetworkModel`] — analytic collective/point-to-point cost model
//!   (α-β model: latency + bytes/bandwidth), with ring all-reduce,
//!   sharded parameter-server push/pull, controller signaling, and gossip
//!   costs.
//! * [`FifoResource`] — a serially-shared resource timeline for modeling a
//!   congested central link where needed.
//! * [`FaultPlan`] — the fault-injection vocabulary (crash, stall, delayed
//!   signals, late join) applied by both execution substrates; see
//!   DESIGN.md §11.
//!
//! Calibration against the paper's Table 1 (device throughput, link
//! bandwidth) is documented in EXPERIMENTS.md.

#![forbid(unsafe_code)]

mod events;
mod fault;
mod hetero;
mod network;
mod resource;
mod time;

pub use events::EventQueue;
pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use hetero::{
    standard_fleet, GpuSharingFleet, HeterogeneityModel, Jitter, MarkovFleet, SpeedFleet,
    UniformFleet,
};
pub use network::NetworkModel;
pub use resource::FifoResource;
pub use time::SimTime;
