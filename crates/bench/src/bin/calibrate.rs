//! Calibration probe: trains All-Reduce on each dataset preset and prints
//! the accuracy trajectory of the averaged model. Used to pick the
//! convergence thresholds recorded in EXPERIMENTS.md (the synthetic
//! presets' analog of the paper's 90%/70% CIFAR thresholds).
//!
//! Run: `cargo run --release -p preduce-bench --bin calibrate`

use preduce_bench::configs::{imagenet_config, production_config, table1_config};
use preduce_models::zoo;
use preduce_trainer::{run_experiment, Strategy};

fn main() {
    let mut probes = vec![
        ("cifar10-like / resnet34", {
            let mut c = table1_config(zoo::resnet34(), 1);
            c.threshold = 0.999;
            c.max_updates = 1500;
            c.eval_every = 50;
            c
        }),
        ("cifar100-like / resnet34 (16w)", {
            let mut c = production_config(16);
            c.threshold = 0.999;
            c.max_updates = 4000;
            c.eval_every = 400;
            c
        }),
        ("imagenet-like / resnet18 (32w)", {
            let mut c = imagenet_config(zoo::resnet18(), 32);
            c.threshold = 0.999;
            c.max_updates = 2500;
            c.eval_every = 250;
            c
        }),
    ];

    let only: Option<usize> = std::env::var("PROBE").ok().and_then(|v| v.parse().ok());
    for (i, (name, config)) in probes.drain(..).enumerate() {
        if let Some(idx) = only {
            if i != idx {
                continue;
            }
        }
        println!("== {name} ==");
        let r = run_experiment(Strategy::AllReduce, &config);
        for p in &r.trace {
            println!(
                "  updates={:>6}  t={:>9.1}s  acc={:.4}",
                p.updates, p.time, p.accuracy
            );
        }
        println!("  final: {:.4}\n", r.final_accuracy);
    }
}
