//! Scale-campaign integration tests: fleet sizes far beyond the training
//! simulations, with a *hard* peak-memory budget.
//!
//! [`CountingAlloc`] is installed as the process's global allocator, so
//! `peak_bytes()` is the real high-water mark of everything the harness
//! allocated — controller queues, the windowed union-find, the streaming
//! checker, the event queue, the ρ reservoir. The budgets below are the
//! enforcement of DESIGN.md §15's bounded-memory claims: if a future
//! change re-grows O(events) state (e.g. the checker buffering its trace
//! again), these tests fail before any reviewer has to notice.
//!
//! The N = 10⁴ / million-signal run only makes sense optimized, so it is
//! gated on release mode; CI runs it via the `scale-smoke` job with
//! `--release`. Debug builds still cover an N = 1 000 run with a (looser)
//! budget so `cargo test` exercises the same path.

use preduce_tensor::CountingAlloc;
use preduce_trainer::{run_scale, ScaleConfig};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Runs one config and asserts the invariant-checker verdict plus the
/// peak-allocation budget (in bytes, measured from the run's start).
fn run_within_budget(cfg: &ScaleConfig, budget_bytes: usize) {
    ALLOC.reset_peak();
    let report = run_scale(cfg);
    let peak = ALLOC.peak_bytes();
    assert_eq!(
        report.checker_violations, 0,
        "streaming checker found violations at N={}",
        cfg.num_workers
    );
    assert!(
        report.groups > 0,
        "no groups formed at N={}",
        cfg.num_workers
    );
    assert_eq!(report.signals, cfg.signals, "run stopped early");
    assert!(
        peak < budget_bytes,
        "peak allocation {peak} B exceeds the {budget_bytes} B budget \
         for N={} / {} signals",
        cfg.num_workers,
        cfg.signals
    );
}

#[test]
fn n1k_fleet_stays_in_budget() {
    let mut cfg = ScaleConfig::new(1_000, 8, 50_000, "uniform");
    cfg.rho_iters = 50;
    // 64 MiB is generous for N = 1k — the point is catching O(events)
    // regressions (a buffered 50k-event trace alone would be ~10 MiB and
    // a real regression typically hoards far more).
    run_within_budget(&cfg, 64 << 20);
}

#[test]
fn n1k_gpu_sharing_dynamic_weights_spread() {
    let mut cfg = ScaleConfig::new(1_000, 8, 30_000, "gpu-sharing");
    cfg.rho_iters = 50;
    let report = run_scale(&cfg);
    assert_eq!(report.checker_violations, 0);
    assert!(
        report.weight_spread_max > 0.0,
        "Eq. 9 weights did not spread under a heterogeneous fleet"
    );
}

/// The headline run: N = 10⁴ workers, one million ready signals, all
/// trace events checked in-flight, under a hard 256 MiB peak budget.
///
/// Release-only: a debug build spends minutes here for no extra coverage.
#[cfg(not(debug_assertions))]
#[test]
fn n10k_million_signals_stays_in_budget() {
    let mut cfg = ScaleConfig::new(10_000, 16, 1_000_000, "uniform");
    cfg.rho_iters = 30;
    run_within_budget(&cfg, 256 << 20);
}

/// Same scale under the hardest preset (Markov bursts force deferrals
/// and repairs through the windowed union-find's stale/rebuild paths).
#[cfg(not(debug_assertions))]
#[test]
fn n4k_markov_fleet_checks_clean() {
    let mut cfg = ScaleConfig::new(4_000, 8, 400_000, "markov");
    cfg.rho_iters = 30;
    run_within_budget(&cfg, 192 << 20);
}
