//! Fault-recovery bench: reaction times of the resilience layer
//! (DESIGN.md §11) plus the accuracy cost of a crash.
//!
//! Three metrics seed `BENCH_fault_recovery.json` (written to the current
//! directory — run from the workspace root so it lands next to README):
//!
//! * **time-to-evict** — wall delta from the injected crash
//!   (`FaultInjected`) to the liveness eviction (`WorkerEvicted`) on the
//!   threaded backend; nominally the silence budget of
//!   [`chaos_liveness`];
//! * **time-to-repair** — wall delta from the eviction to the next
//!   scheduling decision (a formed group, a singleton release, or a
//!   queue drain): how long the survivor set stays blocked;
//! * **post-fault convergence gap** — fault-free minus crashed
//!   final accuracy at an equal update budget on the simulator, CON and
//!   DYN (the dead replica's stale parameters stay in the final uniform
//!   average, so the gap is real but bounded — see the chaos suite).
//!
//! Run: `cargo run --release -p preduce-bench --bin fault_recovery`
//! (set `PREDUCE_QUICK=1` for fewer repetitions)

use std::sync::{Arc, Mutex};
use std::time::Instant;

use partial_reduce::{NullSink, TraceEvent, TraceSink};
use preduce_bench::configs::quick_mode;
use preduce_data::cifar10_like;
use preduce_models::zoo;
use preduce_trainer::engine::drivers::preduce::chaos_liveness;
use preduce_trainer::{engine, Backend, ExperimentConfig, FaultPlan, Strategy};
use serde::Serialize;

/// Wall-clock-stamps every trace event (milliseconds since sink
/// creation) so reaction times can be measured from the stream.
struct TimedSink {
    start: Instant,
    events: Mutex<Vec<(f64, TraceEvent)>>,
}

impl TimedSink {
    fn new() -> Self {
        TimedSink {
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    fn snapshot(&self) -> Vec<(f64, TraceEvent)> {
        self.events
            .lock()
            .map(|g| g.clone())
            .unwrap_or_else(|p| p.into_inner().clone())
    }
}

impl TraceSink for TimedSink {
    fn record(&self, event: TraceEvent) {
        let t = self.start.elapsed().as_secs_f64() * 1e3;
        match self.events.lock() {
            Ok(mut g) => g.push((t, event)),
            Err(p) => p.into_inner().push((t, event)),
        }
    }
}

#[derive(Serialize)]
struct Summary {
    mean_ms: f64,
    min_ms: f64,
    max_ms: f64,
    samples: usize,
}

fn summarize(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    Some(Summary {
        mean_ms: xs.iter().sum::<f64>() / xs.len() as f64,
        min_ms: xs.iter().copied().fold(f64::INFINITY, f64::min),
        max_ms: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        samples: xs.len(),
    })
}

#[derive(Serialize)]
struct Liveness {
    heartbeat_interval_ms: f64,
    miss_threshold: u64,
    nominal_eviction_ms: f64,
}

#[derive(Serialize)]
struct Gap {
    con: f64,
    #[serde(rename = "dyn")]
    dynamic: f64,
}

#[derive(Serialize)]
struct FaultRecoveryBench {
    bench: &'static str,
    generated_by: &'static str,
    runs: usize,
    liveness: Liveness,
    time_to_evict_ms: Option<Summary>,
    time_to_repair_ms: Option<Summary>,
    post_fault_convergence_gap: Option<Gap>,
}

/// One threaded crash run: N=4 / P=2, rank 3 fail-stops after 4
/// iterations and the liveness monitor must evict it. Returns
/// (time-to-evict, time-to-repair) in milliseconds.
fn crash_reaction() -> (Option<f64>, Option<f64>) {
    let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
    c.num_workers = 4;
    c.threaded_iters = Some(12);
    let sink = Arc::new(TimedSink::new());
    let run = engine::run_with_faults(
        Strategy::PReduce {
            p: 2,
            dynamic: false,
        },
        &c,
        Backend::Threaded,
        sink.clone(),
        FaultPlan::none().crash(3, 4),
    );
    assert_eq!(
        run.controller.expect("p-reduce reports stats").evictions,
        1,
        "crash was not evicted"
    );

    let events = sink.snapshot();
    let fault = events
        .iter()
        .find(|(_, e)| matches!(e, TraceEvent::FaultInjected { worker: 3, .. }))
        .map(|(t, _)| *t);
    let evict = events
        .iter()
        .position(|(_, e)| matches!(e, TraceEvent::WorkerEvicted { worker: 3, .. }));
    let (Some(fault_ms), Some(evict_idx)) = (fault, evict) else {
        return (None, None);
    };
    let evict_ms = events[evict_idx].0;
    let repair = events[evict_idx + 1..]
        .iter()
        .find(|(_, e)| {
            matches!(
                e,
                TraceEvent::GroupFormed { .. }
                    | TraceEvent::SingletonIssued { .. }
                    | TraceEvent::PendingDrained { .. }
            )
        })
        .map(|(t, _)| t - evict_ms);
    (Some(evict_ms - fault_ms), repair)
}

/// Equal-budget accuracy gap on the simulator: fault-free minus a run
/// where rank 3 crashes at iteration 20 (N=8 / P=4).
fn convergence_gap(dynamic: bool, max_updates: u64) -> f64 {
    let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
    c.num_workers = 8;
    c.threshold = 0.999; // unreachable: fixed-budget comparison
    c.max_updates = max_updates;
    c.eval_every = 100;
    let s = Strategy::PReduce { p: 4, dynamic };
    let golden = engine::run(s, &c, Backend::Sim, Arc::new(NullSink));
    let faulted = engine::run_with_faults(
        s,
        &c,
        Backend::Sim,
        Arc::new(NullSink),
        FaultPlan::none().crash(3, 20),
    );
    golden.result.final_accuracy - faulted.result.final_accuracy
}

fn main() {
    let quick = quick_mode();
    let runs = if quick { 2 } else { 5 };
    let max_updates = if quick { 200 } else { 300 };
    let policy = chaos_liveness();
    println!(
        "fault-recovery bench: {runs} threaded crash runs, liveness = \
         {:?} every, {} misses (quick mode = {quick})",
        policy.heartbeat_interval, policy.miss_threshold
    );

    let mut evictions = Vec::new();
    let mut repairs = Vec::new();
    for i in 0..runs {
        let (evict, repair) = crash_reaction();
        println!(
            "  run {i}: evict {} repair {}",
            evict.map_or("n/a".into(), |t| format!("{t:.1}ms")),
            repair.map_or("n/a".into(), |t| format!("{t:.1}ms")),
        );
        evictions.extend(evict);
        repairs.extend(repair);
    }
    let gap = Gap {
        con: convergence_gap(false, max_updates),
        dynamic: convergence_gap(true, max_updates),
    };
    println!(
        "  post-fault convergence gap: CON {:+.3}, DYN {:+.3}",
        gap.con, gap.dynamic
    );

    let report = FaultRecoveryBench {
        bench: "fault_recovery",
        generated_by: "cargo run --release -p preduce-bench --bin fault_recovery",
        runs,
        liveness: Liveness {
            heartbeat_interval_ms: policy.heartbeat_interval.as_secs_f64() * 1e3,
            miss_threshold: policy.miss_threshold,
            nominal_eviction_ms: policy.eviction_after().as_secs_f64() * 1e3,
        },
        time_to_evict_ms: summarize(&evictions),
        time_to_repair_ms: summarize(&repairs),
        post_fault_convergence_gap: Some(gap),
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    std::fs::write("BENCH_fault_recovery.json", json).expect("write BENCH_fault_recovery.json");
    println!("wrote BENCH_fault_recovery.json");
}
