//! The partial-reduce drivers: Algorithm 2 under virtual time (moved
//! verbatim from `sim::preduce`, reusing the transport-independent
//! [`partial_reduce::Controller`]) and on real threads (the controller
//! thread from [`partial_reduce::runtime`]).

use std::sync::Arc;
use std::time::Duration;

use partial_reduce::runtime::{
    spawn_with_options, spawn_with_sink, LivenessPolicy, RuntimeOptions,
};
use partial_reduce::{
    AggregationMode, Controller, ControllerConfig, NullSink, TraceEvent, TraceSink,
};
use preduce_simnet::{EventQueue, FaultKind, FaultPlan, SimTime};
use preduce_tensor::Tensor;

use crate::engine::setup::{build_fleet, evaluate_uniform_average};
use crate::engine::substrate::{must, Substrate, ThreadedSubstrate};
use crate::metrics::RunResult;
use crate::sim::SimHarness;
use crate::threaded::ThreadedReport;
use crate::worker::weighted_model_average;

/// Event payloads for the P-Reduce event loop.
enum Event {
    /// A worker finished its local update and signals ready.
    Ready(usize),
    /// A partial-reduce group's collective completed.
    GroupDone {
        group: Vec<usize>,
        weights: Vec<f32>,
        new_iteration: u64,
    },
}

/// Runs partial reduce with the given controller configuration.
///
/// One *update* is one partial-reduce group operation (§3.1.2 counts each
/// partial reduce as one iteration), matching the paper's Table 1 metric.
///
/// # Panics
/// Panics if the controller config disagrees with the harness size.
pub fn run_preduce(h: SimHarness, cfg: ControllerConfig) -> RunResult {
    run_preduce_traced(h, cfg, Arc::new(NullSink))
}

/// Like [`run_preduce`], but narrates the run to `sink` in the same event
/// vocabulary as the threaded runtime — the simulator emits one
/// [`TraceEvent::ReduceCompleted`] per member when a group's virtual
/// collective lands, so the invariant checker replays either harness
/// identically.
///
/// # Panics
/// Panics if the controller config disagrees with the harness size.
pub fn run_preduce_traced(
    h: SimHarness,
    cfg: ControllerConfig,
    sink: Arc<dyn TraceSink>,
) -> RunResult {
    run_preduce_chaos(h, cfg, sink, FaultPlan::none())
}

/// [`run_preduce_traced`] under a [`FaultPlan`] (DESIGN.md §11), applied
/// deterministically in virtual time:
///
/// * **Crash** fires at the doomed worker's iteration boundary: the
///   worker is evicted ([`TraceEvent::WorkerEvicted`], justified by the
///   preceding [`TraceEvent::FaultInjected`]) and routed through the
///   ordinary departure path, so queued-signal purging and scheduling
///   repair behave exactly as for a voluntary departure.
/// * **Stall** multiplies the worker's compute time from its start
///   iteration on.
/// * **DelaySignals** adds virtual latency to every ready signal.
/// * **LateJoin** postpones the worker's first local update.
///
/// The empty plan reproduces [`run_preduce_traced`] bit-for-bit: every
/// fault accessor degrades to `+ 0.0` / `× 1.0`.
///
/// # Panics
/// Panics if the controller config disagrees with the harness size.
pub fn run_preduce_chaos(
    mut h: SimHarness,
    cfg: ControllerConfig,
    sink: Arc<dyn TraceSink>,
    faults: FaultPlan,
) -> RunResult {
    assert_eq!(
        cfg.num_workers,
        h.num_workers(),
        "controller config sized for a different fleet"
    );
    let p = cfg.group_size;
    let label = match cfg.mode {
        AggregationMode::Constant => format!("P-Reduce CON (P={p})"),
        AggregationMode::Dynamic { .. } => format!("P-Reduce DYN (P={p})"),
    };
    let dynamic = matches!(cfg.mode, AggregationMode::Dynamic { .. });
    let mut active = h.num_workers();
    let mut controller = Controller::with_sink(cfg, sink);

    // Persistent perturbations (stall/delay/latejoin) are narrated up
    // front; crashes are narrated at the iteration where they fire.
    if controller.sink().enabled() {
        for spec in &faults.faults {
            if let FaultKind::Crash { .. } = spec.kind {
                continue;
            }
            let iteration = match spec.kind {
                FaultKind::Stall { from_iteration, .. } => from_iteration,
                _ => 0,
            };
            controller.sink().record(TraceEvent::FaultInjected {
                worker: spec.worker,
                fault: spec.kind.label(),
                iteration,
            });
        }
    }

    let signal = h.network.signal_time();

    let mut queue: EventQueue<Event> = EventQueue::new();
    // `last_free[w]`: when worker w last became free to compute (for the
    // per-update duration sample).
    let mut last_free = vec![SimTime::ZERO; h.num_workers()];
    let mut nonuniform_groups = 0u64;
    let mut total_groups = 0u64;

    for w in 0..h.num_workers() {
        let ct = h.compute_time(w, SimTime::ZERO) * faults.stall_factor(w, 1);
        queue.schedule(
            SimTime::new(faults.start_delay(w) + ct + faults.signal_delay(w)),
            Event::Ready(w),
        );
    }

    let mut now = SimTime::ZERO;
    while let Some((t, ev)) = queue.pop() {
        now = t;
        match ev {
            Event::Ready(w) => {
                // Lines 2–4 of Algorithm 2: the local update completes as
                // the worker becomes ready.
                h.workers[w].local_update(&mut h.rng);
                let crashed = faults
                    .crash_at(w)
                    .is_some_and(|at| h.workers[w].iteration >= at);
                if crashed {
                    // Fail-stop at the iteration boundary: the signal is
                    // never sent, and in virtual time the death is
                    // detected immediately (the threaded substrate pays
                    // real heartbeat silence instead). A departure can
                    // unblock a frozen-avoidance deferral, so group
                    // formation still runs below.
                    active -= 1;
                    if controller.sink().enabled() {
                        controller.sink().record(TraceEvent::FaultInjected {
                            worker: w,
                            fault: FaultKind::Crash {
                                at_iteration: h.workers[w].iteration,
                            }
                            .label(),
                            iteration: h.workers[w].iteration,
                        });
                        controller
                            .sink()
                            .record(TraceEvent::WorkerEvicted { worker: w, active });
                    }
                    controller.mark_left(w);
                } else {
                    controller.push_ready(w, h.workers[w].iteration);
                }
                // The ready signal and group notification each cost one
                // network latency; then the group collective runs.
                while let Some(d) = controller.try_form_group() {
                    total_groups += 1;
                    let w0 = d.weights[0];
                    if d.weights.iter().any(|&w| (w - w0).abs() > 1e-6) {
                        nonuniform_groups += 1;
                    }
                    // Link-aware: the group's ring runs at its slowest
                    // member's link speed.
                    let group_comm = h.group_ring_time(&d.group);
                    queue.schedule(
                        t + 2.0 * signal + group_comm,
                        Event::GroupDone {
                            group: d.group,
                            weights: d.weights,
                            new_iteration: d.new_iteration,
                        },
                    );
                }
            }
            Event::GroupDone {
                group,
                weights,
                new_iteration,
            } => {
                // Weighted model average among exactly the group (line 7).
                let avg = {
                    let models: Vec<&Tensor> =
                        group.iter().map(|&m| &h.workers[m].params).collect();
                    weighted_model_average(&models, &weights)
                };
                let mut dur_sum = 0.0;
                for &m in &group {
                    h.workers[m].set_params(&avg);
                    if dynamic {
                        // §3.3.3: members adopt the group max iteration.
                        h.workers[m].iteration = new_iteration;
                    }
                    if controller.sink().enabled() {
                        controller.sink().record(TraceEvent::ReduceCompleted {
                            worker: m,
                            members: group.clone(),
                            new_iteration,
                        });
                    }
                    dur_sum += t - last_free[m];
                }
                let dur = dur_sum / group.len() as f64;
                if h.record_update(t, dur) {
                    break;
                }
                // Members immediately start their next iteration (a
                // stalled member computes slower; a laggy control link
                // delays the resulting ready signal).
                for &m in &group {
                    last_free[m] = t;
                    let ct =
                        h.compute_time(m, t) * faults.stall_factor(m, h.workers[m].iteration + 1);
                    queue.schedule(t + ct + faults.signal_delay(m), Event::Ready(m));
                }
            }
        }
    }
    if controller.sink().enabled() {
        controller.sink().record(TraceEvent::RunFinished {
            groups_formed: controller.groups_formed(),
            repairs: controller.repairs(),
            deferrals: controller.deferrals(),
            singletons: 0,
        });
    }
    controller.sink().flush();
    let mut stats = std::collections::BTreeMap::new();
    stats.insert("groups".into(), total_groups as f64);
    stats.insert("nonuniform_groups".into(), nonuniform_groups as f64);
    stats.insert("repairs".into(), controller.repairs() as f64);
    stats.insert("deferrals".into(), controller.deferrals() as f64);
    h.finish_with_stats(label, now, stats)
}

// ---------------------------------------------------------------------------
// Threaded projection
// ---------------------------------------------------------------------------

/// Heartbeat period for chaos runs (fault plan present): well under the
/// eviction budget so healthy workers are never misjudged.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(10);

/// Liveness policy for chaos runs: a worker silent for ~200 ms is dead.
/// Generous against scheduler jitter (heartbeats arrive every 10 ms from
/// a dedicated thread) yet quick enough for tests and benches.
pub fn chaos_liveness() -> LivenessPolicy {
    LivenessPolicy::new(Duration::from_millis(25), 8)
}

/// One wall-clock "compute step" a stall multiplies when the substrate
/// injected no explicit straggler delay (real local updates are too fast
/// for a multiplicative stall to be observable otherwise).
const STALL_UNIT: Duration = Duration::from_millis(1);

/// Threaded partial reduce: every worker runs its iteration budget of
/// local update + `reduce` calls against the real controller thread; the
/// drain protocol issues singleton assignments at shutdown so no worker
/// hangs.
///
/// When the substrate carries a [`FaultPlan`], the controller is spawned
/// with the chaos [`LivenessPolicy`], every worker heartbeats, and the
/// plan is applied for real: a crashed worker drops its handle without a
/// `Leaving` signal (the controller must notice via heartbeat silence),
/// stalls and signal delays become sleeps, and a late joiner starts its
/// loop late (heartbeating from spawn so it is not misjudged as dead).
///
/// # Panics
/// Panics if the controller config disagrees with the fleet size, or if a
/// worker thread or the controller panics.
pub(crate) fn threaded_preduce(
    sub: &ThreadedSubstrate,
    controller: ControllerConfig,
) -> ThreadedReport {
    let config = sub.config();
    assert_eq!(
        controller.num_workers, config.num_workers,
        "controller config sized for a different fleet"
    );
    let fleet = build_fleet(config);
    let chaos = !sub.faults().is_empty();
    let (handle, reducers) = if chaos {
        spawn_with_options(
            controller,
            RuntimeOptions {
                sink: sub.sink(),
                liveness: Some(chaos_liveness()),
            },
        )
    } else {
        spawn_with_sink(controller, sub.sink())
    };
    let sink = sub.sink();

    let out = sub.run_spmd(fleet.workers, reducers, move |mut ctx, mut w, mut r| {
        let narrate = |kind: &FaultKind, iteration: u64| {
            if sink.enabled() {
                sink.record(TraceEvent::FaultInjected {
                    worker: ctx.rank,
                    fault: kind.label(),
                    iteration,
                });
            }
        };
        if chaos {
            // Heartbeat from the very start — before any late-join sleep —
            // so a slow or late worker is never misjudged as dead.
            r.start_heartbeat(HEARTBEAT_EVERY);
        }
        let start_delay = ctx.faults.start_delay(ctx.rank);
        if start_delay > 0.0 {
            narrate(
                &FaultKind::LateJoin {
                    seconds: start_delay,
                },
                0,
            );
            std::thread::sleep(Duration::from_secs_f64(start_delay));
        }
        let signal_delay = ctx.faults.signal_delay(ctx.rank);
        if signal_delay > 0.0 {
            narrate(
                &FaultKind::DelaySignals {
                    seconds: signal_delay,
                },
                0,
            );
        }
        let crash_at = ctx.faults.crash_at(ctx.rank);
        let mut stall_narrated = false;
        for _ in 0..ctx.iters {
            if !ctx.delay.is_zero() {
                std::thread::sleep(ctx.delay);
            }
            let stall = ctx.faults.stall_factor(ctx.rank, w.iteration + 1);
            if stall > 1.0 {
                if !stall_narrated {
                    stall_narrated = true;
                    narrate(
                        &FaultKind::Stall {
                            factor: stall,
                            from_iteration: w.iteration + 1,
                        },
                        w.iteration + 1,
                    );
                }
                let base = if ctx.delay.is_zero() {
                    STALL_UNIT
                } else {
                    ctx.delay
                };
                std::thread::sleep(base.mul_f64(stall - 1.0));
            }
            w.local_update(&mut ctx.rng);
            if crash_at.is_some_and(|at| w.iteration >= at) {
                // Fail-stop: no Leaving, no more heartbeats. The handle
                // drops here; the controller detects the silence.
                narrate(
                    &FaultKind::Crash {
                        at_iteration: w.iteration,
                    },
                    w.iteration,
                );
                r.crash();
                return (w.params, w.iteration);
            }
            if signal_delay > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(signal_delay));
            }
            let iteration = w.iteration;
            let mut flat = w.params.clone().into_vec();
            let outcome = must("partial reduce", r.reduce(&mut flat, iteration));
            w.params = must("rebuild params", Tensor::from_vec(flat, [w.params.len()]));
            w.iteration = outcome.new_iteration;
        }
        must("finish", r.finish());
        (w.params, w.iteration)
    });
    let stats = handle.join();

    ThreadedReport {
        wall_seconds: out.wall_seconds,
        accuracy: evaluate_uniform_average(config, &fleet.test, &out.params),
        iterations: out.iterations,
        controller: Some(stats),
    }
}
