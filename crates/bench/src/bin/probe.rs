//! Dev probe: run a handful of strategies on one Table 1 cell and print
//! rows. Controlled by env vars: `MODEL` (resnet34|vgg19|densenet121),
//! `HL` (default 1).
//!
//! Run: `MODEL=resnet34 HL=3 cargo run --release -p preduce-bench --bin probe`

use preduce_bench::configs::table1_config;
use preduce_bench::output::print_run_row;
use preduce_models::zoo;
use preduce_trainer::{run_experiment, Strategy};

fn main() {
    let model = std::env::var("MODEL").unwrap_or_else(|_| "resnet34".into());
    let hl: usize = std::env::var("HL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let model = zoo::by_name(&model).expect("unknown model");
    let mut config = table1_config(model.clone(), hl);
    if let Some(lr) = std::env::var("LR").ok().and_then(|v| v.parse().ok()) {
        config.sgd.lr = lr;
    }
    if let Some(b) = std::env::var("BATCH").ok().and_then(|v| v.parse().ok()) {
        config.math_batch_size = b;
    }
    if let Some(s) = std::env::var("SIGMA").ok().and_then(|v| v.parse().ok()) {
        config.jitter = preduce_simnet::Jitter::LogNormal { sigma: s };
    }
    if let Some(n) = std::env::var("NOISE").ok().and_then(|v| v.parse().ok()) {
        config.label_noise = n;
    }
    if let Some(m) = std::env::var("MAXU").ok().and_then(|v| v.parse().ok()) {
        config.max_updates = m;
    }
    if let Some(t) = std::env::var("THRESH").ok().and_then(|v| v.parse().ok()) {
        config.threshold = t;
    }
    if let Some(m) = std::env::var("PS_M").ok().and_then(|v| v.parse().ok()) {
        config.ps_server_momentum = m;
    }
    if std::env::var_os("AR_ONLY").is_some() {
        let r = run_experiment(Strategy::AllReduce, &config);
        print_run_row(&r);
        for p in &r.trace {
            println!("  u={:>6} acc={:.4}", p.updates, p.accuracy);
        }
        return;
    }
    println!(
        "{} HL={hl} threshold={} lr={} batch={}",
        model.name, config.threshold, config.sgd.lr, config.math_batch_size
    );
    for s in [
        Strategy::AllReduce,
        Strategy::EagerReduce,
        Strategy::AdPsgd,
        Strategy::PsAsp,
        Strategy::PsHete,
        Strategy::PReduce {
            p: 3,
            dynamic: false,
        },
        Strategy::PReduce {
            p: 3,
            dynamic: true,
        },
    ] {
        let r = run_experiment(s, &config);
        print_run_row(&r);
        if !r.stats.is_empty() {
            println!("    stats: {:?}", r.stats);
        }
    }
}
