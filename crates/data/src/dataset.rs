use preduce_tensor::Tensor;

/// A labeled classification dataset with dense `f32` features.
///
/// Features are stored row-major as an `[n, d]` tensor; labels are class
/// indices in `0..num_classes`.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

/// A minibatch extracted from a [`Dataset`]: `[batch, d]` features plus the
/// matching class labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// `[batch, d]` feature rows.
    pub features: Tensor,
    /// Class index per row.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of examples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

impl Dataset {
    /// Builds a dataset from an `[n, d]` feature tensor and labels.
    ///
    /// # Panics
    /// Panics if `features` is not rank-2, the label count differs from the
    /// row count, or a label is out of `0..num_classes`.
    pub fn new(features: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            features.shape().rank(),
            2,
            "dataset features must be [n, d], got {}",
            features.shape()
        );
        assert_eq!(
            features.shape().dim(0),
            labels.len(),
            "feature rows ({}) and labels ({}) disagree",
            features.shape().dim(0),
            labels.len()
        );
        assert!(
            labels.iter().all(|&y| y < num_classes),
            "label out of range for {num_classes} classes"
        );
        Dataset {
            features,
            labels,
            num_classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality `d`.
    pub fn feature_dim(&self) -> usize {
        self.features.shape().dim(1)
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The full `[n, d]` feature tensor.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Copies the examples at `indices` into a new [`Batch`].
    ///
    /// # Panics
    /// Panics if any index is out of bounds or `indices` is empty.
    pub fn gather(&self, indices: &[usize]) -> Batch {
        assert!(!indices.is_empty(), "cannot gather an empty batch");
        let d = self.feature_dim();
        let mut data = Vec::with_capacity(indices.len() * d);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.features.row(i));
            labels.push(self.labels[i]);
        }
        Batch {
            features: Tensor::from_vec(data, [indices.len(), d])
                .expect("gather volume matches by construction"),
            labels,
        }
    }

    /// Splits off the last `n_test` examples as a held-out test set,
    /// returning `(train, test)`.
    ///
    /// # Panics
    /// Panics if `n_test >= len()`.
    pub fn split_test(self, n_test: usize) -> (Dataset, Dataset) {
        assert!(
            n_test < self.len(),
            "test split ({n_test}) must be smaller than the dataset ({})",
            self.len()
        );
        let n_train = self.len() - n_test;
        let d = self.feature_dim();
        let data = self.features.into_vec();
        let (train_data, test_data) = (data[..n_train * d].to_vec(), data[n_train * d..].to_vec());
        let (train_labels, test_labels) = (
            self.labels[..n_train].to_vec(),
            self.labels[n_train..].to_vec(),
        );
        (
            Dataset::new(
                Tensor::from_vec(train_data, [n_train, d]).expect("sizes match"),
                train_labels,
                self.num_classes,
            ),
            Dataset::new(
                Tensor::from_vec(test_data, [n_test, d]).expect("sizes match"),
                test_labels,
                self.num_classes,
            ),
        )
    }

    /// Builds a dataset from a subset of this one (used by sharding).
    ///
    /// # Panics
    /// Panics if any index is out of bounds or `indices` is empty.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let b = self.gather(indices);
        Dataset::new(b.features, b.labels, self.num_classes)
    }

    /// Returns a copy with a `fraction` of labels replaced by uniform
    /// random classes (label noise). Applied to *training* data only by
    /// the experiment harness: it keeps the gradient variance high near
    /// the accuracy plateau, the regime in which batch averaging — and
    /// therefore synchronous data parallelism — earns its keep.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_label_noise<R: rand::Rng + ?Sized>(
        mut self,
        fraction: f64,
        rng: &mut R,
    ) -> Dataset {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "noise fraction must lie in [0, 1]"
        );
        let c = self.num_classes;
        for y in &mut self.labels {
            if rng.gen_bool(fraction) {
                *y = rng.gen_range(0..c);
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features =
            Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0], [4, 2]).unwrap();
        Dataset::new(features, vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.feature_dim(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.labels(), &[0, 1, 0, 1]);
    }

    #[test]
    fn gather_copies_rows() {
        let d = toy();
        let b = d.gather(&[2, 0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.features.row(0), &[2.0, 2.0]);
        assert_eq!(b.features.row(1), &[0.0, 0.0]);
        assert_eq!(b.labels, vec![0, 0]);
    }

    #[test]
    fn split_test_partitions() {
        let (train, test) = toy().split_test(1);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert_eq!(test.labels(), &[1]);
        assert_eq!(test.features().row(0), &[3.0, 3.0]);
    }

    #[test]
    fn subset_preserves_num_classes() {
        let s = toy().subset(&[1, 3]);
        assert_eq!(s.num_classes(), 2);
        assert_eq!(s.labels(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        Dataset::new(Tensor::zeros([1, 2]), vec![5], 2);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn rejects_label_count_mismatch() {
        Dataset::new(Tensor::zeros([2, 2]), vec![0], 2);
    }
}
