//! Pass 1 — `panic-path`: no panicking constructs in the control plane
//! and comms hot paths.
//!
//! A worker that panics mid-`reduce` stalls its whole group; a
//! controller that panics strands the fleet. Inside the scoped files
//! every `unwrap`/`expect`/`panic!`-family macro is a finding, and in
//! the narrower control-plane core so is unchecked slice indexing —
//! unless the enclosing function visibly guards the index (an `assert!`
//! family check, a `for`-loop binding, or a conditional mentioning the
//! index identifier). `assert!` itself is not flagged: stated invariants
//! are the contract, silent panics are the bug.
//!
//! v2 detects calls and macros on the token stream (so spacing, string
//! contents, and line wrapping cannot fool it); the index-guard
//! heuristics stay deliberately line-oriented — they approximate
//! data-flow, and a token rendering would be equally approximate.

use crate::scan::{fn_spans, has_word, identifiers, SourceFile, TokenKind};
use crate::Finding;

/// Pass name used in findings and allow directives.
pub const NAME: &str = "panic-path";

/// Panicking method names and the display token used in the finding.
const PANIC_CALLS: &[(&str, &str)] = &[
    ("unwrap", ".unwrap()"),
    ("expect", ".expect("),
    ("unwrap_err", ".unwrap_err()"),
    ("expect_err", ".expect_err("),
];

/// Panicking macro names (asserts excluded by design).
const PANIC_MACROS: &[(&str, &str)] = &[
    ("panic", "panic!"),
    ("unreachable", "unreachable!"),
    ("todo", "todo!"),
    ("unimplemented", "unimplemented!"),
];

/// Runs the pass on one file. `check_indexing` adds the unchecked-index
/// rule (the caller enables it only for the control-plane core).
pub fn run(file: &SourceFile, check_indexing: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    // One finding per (line, kind), matching the line scanner's cadence.
    let mut seen_call_lines: Vec<usize> = Vec::new();
    let mut seen_macro_lines: Vec<usize> = Vec::new();
    let n = file.ct_len();
    for k in 0..n {
        let tok = file.ct(k);
        if tok.kind != TokenKind::Ident || file.is_test[tok.line] {
            continue;
        }
        let next_is = |off: usize, s: &str| k + off < n && file.ct(k + off).text == s;
        if let Some(&(_, display)) = PANIC_CALLS
            .iter()
            .find(|(name, _)| *name == tok.text.as_str())
        {
            if k > 0 && file.ct(k - 1).text == "." && next_is(1, "(") {
                // `unwrap`/`unwrap_err` panic on their receiver alone;
                // `expect` with args is the same construct.
                if !seen_call_lines.contains(&tok.line) {
                    seen_call_lines.push(tok.line);
                    findings.push(finding(
                        file,
                        tok.line,
                        format!(
                            "`{display}` can panic in a hot path; return or propagate an error"
                        ),
                    ));
                }
            }
        }
        if let Some(&(_, display)) = PANIC_MACROS
            .iter()
            .find(|(name, _)| *name == tok.text.as_str())
        {
            if next_is(1, "!") && !seen_macro_lines.contains(&tok.line) {
                seen_macro_lines.push(tok.line);
                findings.push(finding(file, tok.line, format!("`{display}` in a hot path strands the fleet; make the state unrepresentable or propagate an error")));
            }
        }
    }
    if check_indexing {
        findings.extend(index_findings(file));
    }
    findings.sort_by_key(|f| f.line);
    findings
}

fn finding(file: &SourceFile, line: usize, message: String) -> Finding {
    Finding {
        pass: NAME.into(),
        file: file.path.clone(),
        line: line + 1,
        message,
    }
}

/// Unchecked-indexing sub-rule: flags `expr[idx]` where no identifier of
/// the subscript (or of the indexed base, for literal subscripts) is
/// guarded in the enclosing function.
fn index_findings(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let spans = fn_spans(file);
    for span in &spans {
        if file.is_test[span.start] {
            continue;
        }
        let guarded = guarded_idents(file, span.start, span.end);
        for l in span.start..=span.end {
            if file.is_test[l] {
                continue;
            }
            for (base, subscript) in index_sites(&file.code[l]) {
                let subs: Vec<&str> = identifiers(subscript);
                let checked = if subs.is_empty() {
                    // Literal subscript: fine if the base's emptiness or
                    // length is visibly checked.
                    identifiers(base)
                        .iter()
                        .any(|id| guarded.contains(&id.to_string()))
                } else {
                    subs.iter().any(|id| guarded.contains(&id.to_string()))
                };
                if !checked {
                    findings.push(finding(
                        file,
                        l,
                        format!("unchecked index `{}[{}]`: no guard on the index in this function (assert, loop bound, or conditional)", base.trim(), subscript.trim()),
                    ));
                }
            }
        }
    }
    findings
}

/// Identifiers a function visibly constrains: mentioned in an
/// assert-family macro, bound by a `for` loop or closure parameter, or
/// appearing in an `if`/`while`/`match` head or a `.len()`-comparison.
fn guarded_idents(file: &SourceFile, start: usize, end: usize) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for l in start..=end {
        let line = &file.code[l];
        let guard_line = line.contains("assert")
            || line.contains(".len()")
            || line.contains(".is_empty()")
            || has_word(line, "if")
            || has_word(line, "while")
            || has_word(line, "match")
            || has_word(line, "min")
            || has_word(line, "rem_euclid");
        if guard_line {
            // A guard statement can wrap (rustfmt splits long asserts);
            // collect identifiers through to its `;` or opening brace.
            let mut j = l;
            loop {
                out.extend(identifiers(&file.code[j]).iter().map(|s| s.to_string()));
                if j >= end || file.code[j].contains(';') || file.code[j].contains('{') {
                    break;
                }
                j += 1;
            }
        }
        // `for i in …` / `for (i, x) in …` binds a safe index.
        if let Some(pos) = line.find("for ") {
            if let Some(in_pos) = line[pos..].find(" in ") {
                out.extend(
                    identifiers(&line[pos + 4..pos + in_pos])
                        .iter()
                        .map(|s| s.to_string()),
                );
            }
        }
        // Closure parameters (`|w|`, `|(i, x)|`) are iterator-fed.
        let bars: Vec<usize> = line.match_indices('|').map(|(i, _)| i).collect();
        if bars.len() >= 2 {
            out.extend(
                identifiers(&line[bars[0] + 1..bars[1]])
                    .iter()
                    .map(|s| s.to_string()),
            );
        }
    }
    out
}

/// Extracts `(base, subscript)` for each index expression in a line.
fn index_sites(line: &str) -> Vec<(&str, &str)> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i] != b'[' {
            i += 1;
            continue;
        }
        // Indexing needs an expression directly before the bracket.
        let prev = (0..i).rev().find(|&k| !b[k].is_ascii_whitespace());
        let Some(p) = prev else {
            i += 1;
            continue;
        };
        let is_index = b[p].is_ascii_alphanumeric() || b[p] == b'_' || b[p] == b')' || b[p] == b']';
        // `vec![…]` / `#[…]` / `&[…]` are macros, attributes, and types.
        if !is_index || b[p] == b'!' || (p > 0 && b[p - 1] == b'#') {
            i += 1;
            continue;
        }
        // Walk back over the base path (idents, `.`, `::`, `self`).
        let mut s = p;
        while s > 0 {
            let c = b[s - 1];
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' || c == b':' {
                s -= 1;
            } else {
                break;
            }
        }
        let base = &line[s..p + 1];
        // A keyword before `[` is a type or pattern position
        // (`&mut [f32]`, `for x in [a, b]`), not an index expression.
        const KEYWORDS: &[&str] = &[
            "mut", "in", "dyn", "impl", "ref", "return", "as", "where", "const", "static", "box",
            "move", "else", "match",
        ];
        if base.ends_with('!') || base.is_empty() || KEYWORDS.contains(&base) {
            i += 1;
            continue;
        }
        // Find the matching `]`.
        let mut depth = 0usize;
        let mut j = i;
        let mut close = None;
        while j < b.len() {
            match b[j] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(cl) = close else { break };
        let subscript = &line[i + 1..cl];
        // Full-range slices never panic; range-to/from can, but the
        // pass stays at whole-index granularity.
        if !subscript.trim().is_empty() && subscript.trim() != ".." {
            out.push((base, subscript));
        }
        i = cl + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_panicking_calls_and_macros() {
        let f = SourceFile::from_source(
            "crates/core/src/controller.rs",
            "fn f(x: Option<u8>) {\n    let a = x.unwrap();\n    let b = x.expect(\"b\");\n    panic!(\"no\");\n}\n",
        );
        let got = run(&f, false);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].line, 2);
        assert_eq!(got[2].line, 4);
    }

    #[test]
    fn ignores_tests_strings_and_unwrap_or() {
        let f = SourceFile::from_source(
            "t.rs",
            "fn f() { let s = \"call .unwrap() now\"; let v = o.unwrap_or(0); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        );
        assert!(run(&f, false).is_empty());
    }

    #[test]
    fn wrapped_call_still_caught_once() {
        // The method name and its dot can land on their own line; token
        // detection does not care, and the finding lands on the name.
        let f = SourceFile::from_source(
            "t.rs",
            "fn f(x: Option<u8>) {\n    let a = x\n        .unwrap();\n}\n",
        );
        let got = run(&f, false);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn unchecked_index_flagged_guarded_index_not() {
        let f = SourceFile::from_source(
            "t.rs",
            "fn bad(v: &[u8], i: usize) -> u8 {\n    v[i]\n}\nfn good(v: &[u8], i: usize) -> u8 {\n    assert!(i < v.len());\n    v[i]\n}\nfn looped(v: &[u8]) {\n    for i in 0..v.len() {\n        v[i];\n    }\n}\n",
        );
        let got = run(&f, true);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn vec_macro_and_attributes_are_not_indexing() {
        let f = SourceFile::from_source(
            "t.rs",
            "#[derive(Debug)]\nfn f(n: usize) -> Vec<f32> {\n    vec![0.0; n]\n}\n",
        );
        assert!(run(&f, true).is_empty());
    }
}
