//! Cross-crate schedule properties: group formation under simulated
//! heterogeneity, sync-graph connectivity, spectral behaviour, and the
//! theory's qualitative predictions.

use preduce::partial_reduce::{
    expected_sync_matrix, min_history_window, spectral_gap, AggregationMode, Controller,
    ControllerConfig, SyncGraph,
};
use preduce::simnet::{EventQueue, HeterogeneityModel, Jitter, SimTime, SpeedFleet, UniformFleet};
use rand::{rngs::StdRng, SeedableRng};

/// Drives the FIFO controller on a fleet, returning the observed groups.
fn observe(
    mut fleet: Box<dyn HeterogeneityModel>,
    p: usize,
    rounds: usize,
    frozen_avoidance: bool,
    seed: u64,
) -> (Vec<Vec<usize>>, u64) {
    let n = fleet.num_workers();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut controller = Controller::new(ControllerConfig {
        num_workers: n,
        group_size: p,
        mode: AggregationMode::Constant,
        history_window: None,
        frozen_avoidance,
    });
    let mut queue = EventQueue::new();
    for w in 0..n {
        let ct = fleet.compute_time(w, 1e9, SimTime::ZERO, &mut rng);
        queue.schedule(SimTime::new(ct), w);
    }
    let mut groups = Vec::new();
    while groups.len() < rounds {
        let (t, w) = queue.pop().expect("workers always reschedule");
        controller.push_ready(w, 0);
        while let Some(d) = controller.try_form_group() {
            for &m in &d.group {
                let ct = fleet.compute_time(m, 1e9, t, &mut rng);
                queue.schedule(t + ct, m);
            }
            groups.push(d.group);
        }
    }
    (groups, controller.repairs())
}

#[test]
fn homogeneous_schedule_rho_matches_fig4a() {
    // N=3, P=2, jittered homogeneous fleet: the empirical E[W] should give
    // ρ ≈ 0.5 (the paper's closed-form homogeneous value).
    let fleet = Box::new(UniformFleet::new(3, 1e9, Jitter::LogNormal { sigma: 0.25 }));
    let (groups, _) = observe(fleet, 2, 30_000, true, 3);
    let e_w = expected_sync_matrix(3, &groups);
    let r = spectral_gap(&e_w).expect("symmetric");
    assert!((r.rho - 0.5).abs() < 0.03, "rho = {}", r.rho);
}

#[test]
fn slower_worker_raises_rho() {
    // Fig. 4(b): making one worker 2× slower pushes ρ above the
    // homogeneous 0.5 (the paper's illustration gives 0.625).
    let jitter = Jitter::LogNormal { sigma: 0.2 };
    let homo = Box::new(UniformFleet::new(3, 1e9, jitter));
    let (g1, _) = observe(homo, 2, 30_000, true, 5);
    let rho_homo = spectral_gap(&expected_sync_matrix(3, &g1))
        .expect("symmetric")
        .rho;

    let hetero = Box::new(SpeedFleet::new(vec![1.0, 1.0, 2.0], 1e9, jitter));
    let (g2, _) = observe(hetero, 2, 30_000, true, 5);
    let rho_hetero = spectral_gap(&expected_sync_matrix(3, &g2))
        .expect("symmetric")
        .rho;

    assert!(
        rho_hetero > rho_homo + 0.05,
        "hetero {rho_hetero:.3} !> homo {rho_homo:.3}"
    );
    assert!(
        (rho_hetero - 0.625).abs() < 0.08,
        "expected near the paper's 0.625, got {rho_hetero:.3}"
    );
}

#[test]
fn frozen_avoidance_keeps_cumulative_graph_connected() {
    // Deterministic two-speed-class fleet with no jitter: FIFO pairing
    // freezes into fixed pairs. With the filter on, repairs happen and the
    // recent-window sync-graph keeps reconnecting.
    let fleet = || Box::new(SpeedFleet::new(vec![1.0, 1.0, 1.7, 1.7], 1e9, Jitter::None));
    let (groups_off, repairs_off) = observe(fleet(), 2, 2_000, false, 0);
    let (groups_on, repairs_on) = observe(fleet(), 2, 2_000, true, 0);

    assert_eq!(repairs_off, 0);
    assert!(repairs_on > 0, "filter never intervened");

    // Without the filter the last 500 groups connect nothing across the
    // speed classes; with it, cross-class groups appear regularly.
    let cross = |groups: &[Vec<usize>]| {
        groups[1500..]
            .iter()
            .filter(|g| g.iter().any(|&w| w < 2) && g.iter().any(|&w| w >= 2))
            .count()
    };
    let off = cross(&groups_off);
    let on = cross(&groups_on);
    assert_eq!(off, 0, "expected frozen pairs without the filter");
    assert!(on > 10, "filter produced only {on} cross-class groups");

    // And the with-filter graph over any window of size ≥ T is connected
    // most of the time; check the final window.
    let t_min = min_history_window(4, 2);
    let mut g = SyncGraph::new(4);
    for group in &groups_on[groups_on.len() - 4 * t_min..] {
        g.add_group(group);
    }
    assert!(g.is_connected(), "final window disconnected with filter on");
}

#[test]
fn faster_workers_join_more_groups() {
    // Group membership frequency should track worker speed: a 2×-slower
    // worker appears in roughly half as many groups.
    let fleet = Box::new(SpeedFleet::new(
        vec![1.0, 1.0, 1.0, 2.0],
        1e9,
        Jitter::LogNormal { sigma: 0.1 },
    ));
    let (groups, _) = observe(fleet, 2, 20_000, true, 9);
    let mut counts = [0usize; 4];
    for g in &groups {
        for &w in g {
            counts[w] += 1;
        }
    }
    // The ratio undershoots the raw 2× speed gap because fast workers
    // also spend time queued waiting for partners — membership tracks
    // speed, damped by the pairing constraint.
    let fast_avg = (counts[0] + counts[1] + counts[2]) as f64 / 3.0;
    let ratio = fast_avg / counts[3] as f64;
    assert!(
        (1.25..2.2).contains(&ratio),
        "fast/slow membership ratio {ratio:.2}, counts {counts:?}"
    );
}

#[test]
fn all_groups_have_exactly_p_distinct_members() {
    let fleet = Box::new(SpeedFleet::new(
        vec![1.0, 1.3, 0.7, 2.0, 1.0, 1.1],
        1e9,
        Jitter::LogNormal { sigma: 0.3 },
    ));
    let (groups, _) = observe(fleet, 3, 5_000, true, 11);
    for g in &groups {
        assert_eq!(g.len(), 3);
        let mut s = g.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3, "duplicate member in {g:?}");
        assert!(s.iter().all(|&w| w < 6));
    }
}
