// Fixture: three unsafe-audit violations inside the tensor crate —
// an undocumented unsafe block, an undocumented unsafe fn, and a SIMD
// intrinsic outside a #[target_feature] fn.
// Scanned as crates/tensor/src/kernels.rs (never compiled).

pub fn deref_no_safety(p: *const f32) -> f32 {
    unsafe { *p }
}

pub unsafe fn kernel_no_safety(p: *const f32) -> f32 {
    *p
}

pub fn ungated_intrinsic(p: *const f32) {
    // SAFETY: documented, but the missing #[target_feature] is the bug.
    unsafe {
        let _v = _mm256_loadu_ps(p);
    }
}
