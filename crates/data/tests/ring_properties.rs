//! Consistent-hash ring properties (ISSUE 8 satellite): deterministic
//! assignment from the shared seed, bounded movement on single
//! join/leave at N ∈ {8, 64, 1024}, and balance within 1.2× of uniform
//! with 100 virtual nodes.
//!
//! "Movement" here is the *gratuitous* kind — keys that hop between two
//! surviving workers. Keys owned by a departed worker must move
//! somewhere, and a joining worker must adopt some keys from someone;
//! no assignment scheme avoids that (at N=8 the unavoidable share is
//! ~1/8 ≈ 12.5% all by itself). The <5% contract is on the avoidable
//! part: plain arc ownership keeps it at exactly zero, and the
//! bounded-load variant that also guarantees the 1.2× balance keeps it
//! under 1% in practice.

use preduce_data::consistent_hash::{BALANCE_FACTOR, DEFAULT_VNODES};
use preduce_data::{assignment_churn, ring_churn, HashRing};

use proptest::prelude::*;

/// Enough keys that every worker's expected share is ≥ ~100 even at
/// N=1024, so load ratios are hash behaviour rather than small-sample
/// noise.
fn keys_for(n_workers: usize) -> usize {
    (n_workers * 200).max(20_000)
}

const FLEET_SIZES: [usize; 3] = [8, 64, 1024];

#[test]
fn assignment_is_deterministic_from_the_shared_seed() {
    for &n in &FLEET_SIZES {
        let a = HashRing::uniform(n, 0xDA7A);
        let b = HashRing::uniform(n, 0xDA7A);
        let keys = keys_for(n);
        assert_eq!(a.assign_all(keys), b.assign_all(keys));
        assert_eq!(
            a.assign_balanced(keys, BALANCE_FACTOR),
            b.assign_balanced(keys, BALANCE_FACTOR),
        );
    }
}

#[test]
fn single_leave_moves_no_survivor_keys() {
    for &n in &FLEET_SIZES {
        let keys = keys_for(n);
        let before = HashRing::uniform(n, 7);
        let mut after = before.clone();
        after.remove_worker(n / 2);
        let churn = ring_churn(&before, &after, keys);
        assert_eq!(
            churn.moved, 0,
            "N={n}: leave must not shuffle survivor-owned keys"
        );
        assert_eq!(churn.adopted, 0, "N={n}: nobody joined");
        assert!(
            churn.orphaned > 0 && churn.orphaned * 2 < keys,
            "N={n}: departed worker owned a sane share, got {}/{keys}",
            churn.orphaned
        );
    }
}

#[test]
fn single_join_moves_no_survivor_keys() {
    for &n in &FLEET_SIZES {
        let keys = keys_for(n);
        let before = HashRing::uniform(n, 7);
        let mut after = before.clone();
        after.add_worker(n);
        let churn = ring_churn(&before, &after, keys);
        assert_eq!(
            churn.moved, 0,
            "N={n}: join must not shuffle keys between existing workers"
        );
        assert_eq!(churn.orphaned, 0, "N={n}: nobody left");
        assert!(
            churn.adopted > 0 && churn.adopted * 2 < keys,
            "N={n}: new worker adopted a sane share, got {}/{keys}",
            churn.adopted
        );
    }
}

#[test]
fn bounded_load_balance_is_within_1_2x_of_uniform() {
    for &n in &FLEET_SIZES {
        let keys = keys_for(n);
        let ring = HashRing::uniform(n, 0xDA7A);
        assert_eq!(ring.workers().len(), n);
        let assignment = ring.assign_balanced(keys, BALANCE_FACTOR);
        let mut counts = vec![0usize; n];
        for owner in assignment {
            counts[owner] += 1;
        }
        let cap = (BALANCE_FACTOR * keys as f64 / n as f64).ceil() as usize;
        let max = *counts.iter().max().unwrap();
        assert!(
            max <= cap,
            "N={n}: max load {max} exceeds 1.2× cap {cap} with {DEFAULT_VNODES} vnodes"
        );
        assert!(
            counts.iter().all(|&c| c > 0),
            "N={n}: some worker owns nothing at {keys} keys"
        );
    }
}

#[test]
fn bounded_load_churn_stays_under_five_percent() {
    for &n in &FLEET_SIZES {
        let keys = keys_for(n);
        let before = HashRing::uniform(n, 7);
        let a = before.assign_balanced(keys, BALANCE_FACTOR);

        let mut left = before.clone();
        left.remove_worker(n / 2);
        let b = left.assign_balanced(keys, BALANCE_FACTOR);
        let churn = assignment_churn(&a, &b, &before, &left);
        assert!(
            churn.moved * 20 < churn.total,
            "N={n} leave: {} of {} survivor keys moved (≥5%)",
            churn.moved,
            churn.total
        );

        let mut joined = before.clone();
        joined.add_worker(n);
        let c = joined.assign_balanced(keys, BALANCE_FACTOR);
        let churn = assignment_churn(&a, &c, &before, &joined);
        assert!(
            churn.moved * 20 < churn.total,
            "N={n} join: {} of {} survivor keys moved (≥5%)",
            churn.moved,
            churn.total
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Ring equality depends only on the member *set*: permuting or
    /// duplicating the construction order changes nothing.
    #[test]
    fn ring_is_order_insensitive(
        mut members in prop::collection::vec(0usize..64, 1..16),
        seed in any::<u64>(),
    ) {
        let forward = HashRing::new(&members, 10, seed);
        members.reverse();
        members.extend_from_slice(&members.clone());
        let shuffled = HashRing::new(&members, 10, seed);
        prop_assert_eq!(forward, shuffled);
    }

    /// Removing whatever worker owns a key always re-homes exactly the
    /// departed worker's keys and nobody else's.
    #[test]
    fn any_single_removal_is_minimal(
        n in 2usize..32,
        victim_ix in any::<prop::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let before = HashRing::uniform(n, seed);
        let victim = victim_ix.index(n);
        let mut after = before.clone();
        prop_assert!(after.remove_worker(victim));
        let churn = ring_churn(&before, &after, 2000);
        prop_assert_eq!(churn.moved, 0);
        prop_assert_eq!(churn.adopted, 0);
    }

    /// Every key lands on a member, for arbitrary member sets.
    #[test]
    fn assignment_stays_in_the_member_set(
        members in prop::collection::vec(0usize..1000, 1..12),
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let ring = HashRing::new(&members, 10, seed);
        let owner = ring.assign(key).expect("non-empty ring");
        prop_assert!(ring.workers().contains(&owner));
    }
}
