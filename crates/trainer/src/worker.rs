//! Per-worker training state: model replica, optimizer, data shard.

use preduce_data::BatchSampler;
use preduce_models::{softmax_cross_entropy, Network, SgdConfig, SgdOptimizer};
use preduce_tensor::Tensor;
use rand::Rng;

/// One worker's replica: flat parameters (the communication view), the
/// network (the compute view), optimizer state, and its data shard.
///
/// The flat vector [`WorkerState::params`] is the source of truth; it is
/// loaded into the network before each forward pass. This mirrors how
/// collective libraries see a model (one contiguous buffer) and makes
/// model averaging a pure vector operation.
#[derive(Debug)]
pub struct WorkerState {
    /// Worker rank.
    pub rank: usize,
    /// Flat model parameters (source of truth).
    pub params: Tensor,
    /// The network used for forward/backward.
    pub net: Network,
    /// Local optimizer state (momentum buffer).
    pub opt: SgdOptimizer,
    /// Minibatch sampler over this worker's shard.
    pub sampler: BatchSampler,
    /// Local iteration counter `k_i` (dynamic partial reduce reports it).
    pub iteration: u64,
    /// Running count of local updates performed.
    pub updates_applied: u64,
    /// Most recent training loss.
    pub last_loss: f64,
}

impl WorkerState {
    /// Creates a worker from a pre-built (shared-initialization) network.
    pub fn new(rank: usize, net: Network, sgd: SgdConfig, sampler: BatchSampler) -> Self {
        let params = net.param_vector();
        let opt = SgdOptimizer::new(sgd, params.len());
        WorkerState {
            rank,
            params,
            net,
            opt,
            sampler,
            iteration: 0,
            updates_applied: 0,
            last_loss: f64::NAN,
        }
    }

    /// Computes a stochastic gradient at the current parameters using a
    /// batch drawn with `rng`. Returns the flat gradient; parameters are
    /// unchanged.
    pub fn gradient<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Tensor {
        let batch = self.sampler.next_batch_with(rng);
        self.net.set_param_vector(&self.params);
        self.net.zero_grads();
        let logits = self.net.forward(&batch.features);
        let loss = softmax_cross_entropy(&logits, &batch.labels);
        self.last_loss = loss.loss;
        self.net.backward(&loss.grad);
        self.net.grad_vector()
    }

    /// Applies one SGD step with the given gradient and learning-rate
    /// scale (1.0 for plain SGD; staleness-aware baselines scale it).
    pub fn apply(&mut self, grad: &Tensor, lr_scale: f32) {
        self.opt.step_scaled(&mut self.params, grad, lr_scale);
        self.updates_applied += 1;
    }

    /// One complete local update (Algorithm 2 lines 2–4): gradient at the
    /// current parameters, then an SGD step. Increments the local
    /// iteration counter.
    pub fn local_update<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let grad = self.gradient(rng);
        self.apply(&grad, 1.0);
        self.iteration += 1;
    }

    /// Overwrites this worker's parameters (model average, PS pull…).
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn set_params(&mut self, params: &Tensor) {
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        self.params = params.clone();
    }
}

/// The elementwise weighted average `Σ w_i · params_i` of several workers'
/// models — the aggregation step of a partial reduce, executed in-memory by
/// the simulator. Runs on the fused multi-accumulator kernel
/// ([`preduce_tensor::kernels::weighted_sum_acc`]), which visits models in
/// slice order per element and is therefore bit-identical to the axpy
/// chain it replaced (the sim goldens pin this).
///
/// # Panics
/// Panics if inputs are empty, lengths differ, or weights don't match.
pub fn weighted_model_average(models: &[&Tensor], weights: &[f32]) -> Tensor {
    assert!(!models.is_empty(), "cannot average zero models");
    assert_eq!(models.len(), weights.len(), "one weight per model required");
    let mut out = Tensor::zeros([models[0].len()]);
    let slices: Vec<&[f32]> = models.iter().map(|m| m.as_slice()).collect();
    preduce_tensor::kernels::weighted_sum_acc(out.as_mut_slice(), &slices, weights);
    out
}

/// The uniform average of all workers' parameter vectors (the model used
/// for inference, Algorithm 2 line 8).
pub fn average_params(workers: &[WorkerState]) -> Tensor {
    let refs: Vec<&Tensor> = workers.iter().map(|w| &w.params).collect();
    let w = partial_reduce::constant_weights(workers.len());
    weighted_model_average(&refs, &w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use preduce_data::{Dataset, GaussianMixture, SynthConfig};
    use preduce_models::NetworkSpec;
    use rand::SeedableRng;

    fn toy_dataset() -> Dataset {
        GaussianMixture::new(SynthConfig {
            num_classes: 3,
            feature_dim: 8,
            num_samples: 120,
            center_norm: 4.0,
            noise_std: 0.5,
            nonlinear_warp: false,
            seed: 1,
        })
        .generate()
    }

    fn worker() -> WorkerState {
        let net = NetworkSpec::mlp(8, &[16], 3).build(0);
        let sampler = BatchSampler::new(toy_dataset(), 16, 7);
        WorkerState::new(0, net, SgdConfig::default(), sampler)
    }

    #[test]
    fn gradient_leaves_params_unchanged() {
        let mut w = worker();
        let before = w.params.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let g = w.gradient(&mut rng);
        assert_eq!(w.params, before);
        assert_eq!(g.len(), before.len());
        assert!(g.norm2() > 0.0);
        assert!(w.last_loss.is_finite());
    }

    #[test]
    fn local_update_reduces_loss_over_time() {
        let mut w = worker();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        w.local_update(&mut rng);
        let early = w.last_loss;
        for _ in 0..120 {
            w.local_update(&mut rng);
        }
        assert!(
            w.last_loss < early,
            "loss did not improve: {early} -> {}",
            w.last_loss
        );
        assert_eq!(w.iteration, 121);
        assert_eq!(w.updates_applied, 121);
    }

    #[test]
    fn weighted_average_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 6.0], [2]).unwrap();
        let avg = weighted_model_average(&[&a, &b], &[0.5, 0.5]);
        assert_eq!(avg.as_slice(), &[2.0, 4.0]);
        let skew = weighted_model_average(&[&a, &b], &[0.75, 0.25]);
        assert_eq!(skew.as_slice(), &[1.5, 3.0]);
    }

    #[test]
    fn set_params_replaces_model() {
        let mut w = worker();
        let zeros = Tensor::zeros([w.params.len()]);
        w.set_params(&zeros);
        assert_eq!(w.params.norm2(), 0.0);
    }
}
