//! Real multithreaded training — the prototype system running on actual
//! concurrency rather than virtual time.
//!
//! One OS thread per worker plus the controller thread from
//! [`partial_reduce::runtime`]. Timing here is wall-clock (and therefore
//! machine-dependent); the *trajectories* are what tests assert on. The
//! virtual-time simulator remains the measurement instrument for the
//! paper's experiments.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use partial_reduce::runtime::{spawn_with_sink, ControllerStats};
use partial_reduce::{ControllerConfig, NullSink, TraceSink};
use preduce_comm::collectives::{barrier, ring_allreduce, TAG_STRIDE};
use preduce_comm::CommWorld;
use preduce_data::{shard_dataset, BatchSampler, ShardStrategy};
use preduce_models::evaluate_accuracy;
use rand::{rngs::StdRng, SeedableRng};

use crate::config::ExperimentConfig;
use crate::worker::WorkerState;

/// Outcome of a threaded training run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Wall-clock seconds for the training loops (excludes evaluation).
    pub wall_seconds: f64,
    /// Test accuracy of the worker-averaged model.
    pub accuracy: f64,
    /// Per-worker iteration counts actually executed.
    pub iterations: Vec<u64>,
    /// Controller statistics (P-Reduce runs only).
    pub controller: Option<ControllerStats>,
}

fn build_workers(config: &ExperimentConfig) -> (Vec<WorkerState>, preduce_data::Dataset) {
    config.validate();
    let mixture = config.preset.mixture(config.seed);
    let full = mixture.generate();
    let (train, test) = full.split_test(config.preset.test_size);
    let train = train.with_label_noise(
        config.label_noise,
        &mut StdRng::seed_from_u64(config.seed ^ 0x1abe1),
    );
    let shards = shard_dataset(
        &train,
        config.num_workers,
        config
            .shard_strategy
            .unwrap_or(ShardStrategy::Shuffled { seed: config.seed }),
    );
    let spec = config.model.spec(train.feature_dim(), train.num_classes());
    let reference = spec.build(config.seed);
    let workers = shards
        .into_iter()
        .enumerate()
        .map(|(rank, shard)| {
            let sampler = BatchSampler::new(
                shard,
                config.math_batch_size,
                config.seed ^ (rank as u64 + 1),
            );
            WorkerState::new(rank, reference.clone(), config.sgd, sampler)
        })
        .collect();
    (workers, test)
}

fn evaluate_average(
    config: &ExperimentConfig,
    test: &preduce_data::Dataset,
    params: &[preduce_tensor::Tensor],
) -> f64 {
    let spec = config.model.spec(test.feature_dim(), test.num_classes());
    let mut net = spec.build(config.seed);
    let mut avg = preduce_tensor::Tensor::zeros([params[0].len()]);
    for p in params {
        avg.axpy(1.0 / params.len() as f32, p);
    }
    net.set_param_vector(&avg);
    evaluate_accuracy(&mut net, test, 256)
}

/// Trains with the threaded partial-reduce runtime: every worker runs
/// `iters` local updates, each followed by a `reduce` call.
///
/// # Panics
/// Panics if a worker thread or the controller panics.
pub fn train_threaded_preduce(
    config: &ExperimentConfig,
    controller: ControllerConfig,
    iters: u64,
) -> ThreadedReport {
    train_threaded_preduce_traced(config, controller, iters, &[], Arc::new(NullSink))
}

/// Like [`train_threaded_preduce`], but with tracing and injected
/// heterogeneity: `delays[rank]` is an artificial per-iteration sleep that
/// turns worker `rank` into a controlled straggler (empty slice: no
/// delays), and every control-plane decision lands in `sink` for
/// post-mortem invariant checking.
///
/// # Panics
/// Panics if a worker thread or the controller panics, or if `delays` is
/// neither empty nor one entry per worker.
pub fn train_threaded_preduce_traced(
    config: &ExperimentConfig,
    controller: ControllerConfig,
    iters: u64,
    delays: &[Duration],
    sink: Arc<dyn TraceSink>,
) -> ThreadedReport {
    assert!(
        delays.is_empty() || delays.len() == config.num_workers,
        "need one delay per worker (or none), got {} for {} workers",
        delays.len(),
        config.num_workers
    );
    let (workers, test) = build_workers(config);
    let (handle, reducers) = spawn_with_sink(controller, sink);

    let start = Instant::now();
    let threads: Vec<_> = workers
        .into_iter()
        .zip(reducers)
        .map(|(mut w, mut r)| {
            let seed = config.seed ^ (0xabcd << 8) ^ w.rank as u64;
            let delay = delays.get(w.rank).copied().unwrap_or(Duration::ZERO);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..iters {
                    if !delay.is_zero() {
                        thread::sleep(delay);
                    }
                    w.local_update(&mut rng);
                    let iteration = w.iteration;
                    let mut flat = w.params.clone().into_vec();
                    let out = r.reduce(&mut flat, iteration).expect("reduce failed");
                    w.params = preduce_tensor::Tensor::from_vec(flat, [w.params.len()])
                        .expect("length preserved");
                    w.iteration = out.new_iteration;
                }
                r.finish().expect("finish failed");
                (w.params, w.iteration)
            })
        })
        .collect();

    let mut params = Vec::new();
    let mut iterations = Vec::new();
    for t in threads {
        let (p, i) = t.join().expect("worker thread panicked");
        params.push(p);
        iterations.push(i);
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    let stats = handle.join();

    ThreadedReport {
        wall_seconds,
        accuracy: evaluate_average(config, &test, &params),
        iterations,
        controller: Some(stats),
    }
}

/// Trains with threaded synchronous All-Reduce: every worker runs `iters`
/// rounds of gradient computation + full-world ring all-reduce (gradient
/// averaging), with a barrier per round.
///
/// # Panics
/// Panics if a worker thread panics.
pub fn train_threaded_allreduce(config: &ExperimentConfig, iters: u64) -> ThreadedReport {
    let (workers, test) = build_workers(config);
    let n = config.num_workers;
    let endpoints = CommWorld::new(n).into_endpoints();
    let all: Vec<usize> = (0..n).collect();

    let start = Instant::now();
    let threads: Vec<_> = workers
        .into_iter()
        .zip(endpoints)
        .map(|(mut w, mut ep)| {
            let group = all.clone();
            let seed = config.seed ^ (0xdcba << 8) ^ w.rank as u64;
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                for k in 0..iters {
                    let grad = w.gradient(&mut rng);
                    let mut flat = grad.into_vec();
                    ring_allreduce(&mut ep, &group, (2 * k) * TAG_STRIDE, &mut flat)
                        .expect("allreduce failed");
                    // Sum → mean.
                    for v in &mut flat {
                        *v /= group.len() as f32;
                    }
                    let avg = preduce_tensor::Tensor::from_vec(flat, [w.params.len()])
                        .expect("length preserved");
                    w.apply(&avg, 1.0);
                    w.iteration += 1;
                    barrier(&mut ep, &group, (2 * k + 1) * TAG_STRIDE).expect("barrier failed");
                }
                (w.params, w.iteration)
            })
        })
        .collect();

    let mut params = Vec::new();
    let mut iterations = Vec::new();
    for t in threads {
        let (p, i) = t.join().expect("worker thread panicked");
        params.push(p);
        iterations.push(i);
    }
    let wall_seconds = start.elapsed().as_secs_f64();

    ThreadedReport {
        wall_seconds,
        accuracy: evaluate_average(config, &test, &params),
        iterations,
        controller: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preduce_data::cifar10_like;
    use preduce_models::zoo;

    fn config(n: usize) -> ExperimentConfig {
        let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
        c.num_workers = n;
        c
    }

    #[test]
    fn threaded_allreduce_replicas_stay_identical() {
        let c = config(4);
        let r = train_threaded_allreduce(&c, 10);
        assert_eq!(r.iterations, vec![10; 4]);
        assert!(r.accuracy > 0.0);
    }

    #[test]
    fn threaded_preduce_trains_and_terminates() {
        let c = config(4);
        let ctl = ControllerConfig::constant(4, 2);
        let r = train_threaded_preduce(&c, ctl, 15);
        let stats = r.controller.expect("controller stats");
        assert!(stats.groups_formed > 0);
        assert!(r.accuracy > 0.1, "below chance: {}", r.accuracy);
    }

    #[test]
    fn threaded_preduce_dynamic_mode() {
        let c = config(3);
        let ctl = ControllerConfig::dynamic(3, 2);
        let r = train_threaded_preduce(&c, ctl, 10);
        assert!(r.controller.expect("stats").groups_formed > 0);
        // Dynamic fast-forwarding means iteration counters can exceed the
        // loop count; they must never be below it.
        for &i in &r.iterations {
            assert!(i >= 10);
        }
    }
}
