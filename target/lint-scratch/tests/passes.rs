//! Fixture-driven integration tests: every pass over a known-bad and a
//! known-good source (exact finding counts), the allow grammar, the real
//! workspace (must be clean), and the binary's exit-code contract.
//!
//! The fixtures under `tests/fixtures/` are never compiled; they are
//! scanned as text under pretend in-scope paths.

use std::path::Path;
use std::process::Command;

use preduce_analysis::passes::event_conformance::EventConformance;
use preduce_analysis::passes::lock_discipline::LockDiscipline;
use preduce_analysis::scan::SourceFile;
use preduce_analysis::{allow, passes, run_check, Finding};

/// Feeds `raw` pass findings through the allow machinery, the same way
/// `run_check` does for a whole file.
fn with_allows(file: &SourceFile, raw: Vec<Finding>) -> Vec<Finding> {
    let (allows, mut findings) = allow::collect_allows(file, passes::ALL);
    findings.extend(allow::apply_allows(raw, file, &allows));
    findings.sort_by_key(|f| f.line);
    findings
}

#[test]
fn panic_path_bad_fixture_yields_exactly_five() {
    let f = SourceFile::from_source(
        "crates/core/src/controller.rs",
        include_str!("fixtures/panic_path_bad.rs"),
    );
    let got = with_allows(&f, passes::panic_path::run(&f, true));
    assert_eq!(got.len(), 5, "{got:#?}");
    for needle in [
        "`.unwrap()`",
        "`.expect(`",
        "`panic!`",
        "`unreachable!`",
        "unchecked index",
    ] {
        assert!(
            got.iter().any(|g| g.message.contains(needle)),
            "missing {needle}: {got:#?}"
        );
    }
}

#[test]
fn panic_path_good_fixture_is_clean() {
    let f = SourceFile::from_source(
        "crates/core/src/controller.rs",
        include_str!("fixtures/panic_path_good.rs"),
    );
    let got = with_allows(&f, passes::panic_path::run(&f, true));
    assert!(got.is_empty(), "{got:#?}");
}

#[test]
fn lock_discipline_bad_fixture_yields_exactly_three() {
    let f = SourceFile::from_source(
        "crates/comm/src/tcp.rs",
        include_str!("fixtures/lock_discipline_bad.rs"),
    );
    let mut pass = LockDiscipline::new();
    pass.scan_file(&f);
    let got = pass.finish();
    assert_eq!(got.len(), 3, "{got:#?}");
    assert_eq!(
        got.iter()
            .filter(|g| g.message.contains("inversion"))
            .count(),
        2,
        "{got:#?}"
    );
    assert_eq!(
        got.iter()
            .filter(|g| g.message.contains("blocking"))
            .count(),
        1,
        "{got:#?}"
    );
}

#[test]
fn lock_discipline_good_fixture_is_clean() {
    let f = SourceFile::from_source(
        "crates/comm/src/tcp.rs",
        include_str!("fixtures/lock_discipline_good.rs"),
    );
    let mut pass = LockDiscipline::new();
    pass.scan_file(&f);
    let got = pass.finish();
    assert!(got.is_empty(), "{got:#?}");
}

#[test]
fn weights_bad_fixture_yields_exactly_two() {
    let f = SourceFile::from_source(
        "crates/trainer/src/engine/setup.rs",
        include_str!("fixtures/weights_bad.rs"),
    );
    let got = with_allows(&f, passes::weight_stochasticity::run(&f));
    assert_eq!(got.len(), 2, "{got:#?}");
    assert!(got.iter().any(|g| g.message.contains("uniform weight row")));
    assert!(got
        .iter()
        .any(|g| g.message.contains("outside `core::weights`")));
}

#[test]
fn weights_good_fixture_is_clean() {
    let f = SourceFile::from_source(
        "crates/trainer/src/engine/setup.rs",
        include_str!("fixtures/weights_good.rs"),
    );
    let got = with_allows(&f, passes::weight_stochasticity::run(&f));
    assert!(got.is_empty(), "{got:#?}");
}

#[test]
fn trace_coverage_bad_fixture_yields_exactly_one() {
    let f = SourceFile::from_source(
        "crates/core/src/controller.rs",
        include_str!("fixtures/trace_coverage_bad.rs"),
    );
    let got = with_allows(&f, passes::trace_coverage::run(&f));
    assert_eq!(got.len(), 1, "{got:#?}");
    assert!(got[0].message.contains("push_ready"), "{got:#?}");
}

#[test]
fn trace_coverage_good_fixture_is_clean() {
    let f = SourceFile::from_source(
        "crates/core/src/controller.rs",
        include_str!("fixtures/trace_coverage_good.rs"),
    );
    let got = with_allows(&f, passes::trace_coverage::run(&f));
    assert!(got.is_empty(), "{got:#?}");
}

#[test]
fn seeded_protocol_drift_is_caught() {
    // The acceptance case text scanning cannot express: `GroupFormed` is
    // emitted by the controller fixture but its arm was stripped from
    // the invariant-checker fixture. Pattern-position classification is
    // what lets the pass tell the checker's arms from the emitter's
    // constructions.
    let mut pass = EventConformance::new();
    for (path, src) in [
        (
            "crates/core/src/trace.rs",
            include_str!("fixtures/event_conformance_trace_bad.rs"),
        ),
        (
            "crates/core/src/controller.rs",
            include_str!("fixtures/event_conformance_emit_bad.rs"),
        ),
        (
            "crates/core/src/invariants.rs",
            include_str!("fixtures/event_conformance_check_bad.rs"),
        ),
    ] {
        pass.scan_file(&SourceFile::from_source(path, src));
    }
    let got = pass.finish();
    assert_eq!(got.len(), 3, "{got:#?}");
    let drift = got
        .iter()
        .find(|g| g.message.contains("GroupFormed"))
        .expect("the seeded drift must be caught");
    assert!(
        drift
            .message
            .contains("never matched by the invariant checker"),
        "{drift:#?}"
    );
    assert_eq!(drift.file, "crates/core/src/controller.rs");
    assert!(got
        .iter()
        .any(|g| g.message.contains("Phantom") && g.message.contains("never emitted")));
    assert!(got
        .iter()
        .any(|g| g.message.contains("Retired") && g.message.contains("dead protocol variant")));
}

#[test]
fn event_conformance_closed_protocol_is_clean() {
    let mut pass = EventConformance::new();
    for (path, src) in [
        (
            "crates/core/src/trace.rs",
            include_str!("fixtures/event_conformance_trace_good.rs"),
        ),
        (
            "crates/core/src/controller.rs",
            include_str!("fixtures/event_conformance_emit_good.rs"),
        ),
        (
            "crates/core/src/invariants.rs",
            include_str!("fixtures/event_conformance_check_good.rs"),
        ),
    ] {
        pass.scan_file(&SourceFile::from_source(path, src));
    }
    let got = pass.finish();
    assert!(got.is_empty(), "{got:#?}");
}

#[test]
fn unsafe_audit_bad_fixture_yields_exactly_three() {
    let f = SourceFile::from_source(
        "crates/tensor/src/kernels.rs",
        include_str!("fixtures/unsafe_audit_bad.rs"),
    );
    let got = with_allows(&f, passes::unsafe_audit::run(&f));
    assert_eq!(got.len(), 3, "{got:#?}");
    assert!(got
        .iter()
        .any(|g| g.message.contains("`unsafe` block without a `// SAFETY:`")));
    assert!(got
        .iter()
        .any(|g| g.message.contains("`unsafe fn kernel_no_safety`")));
    assert!(got
        .iter()
        .any(|g| g.message.contains("_mm256_loadu_ps") && g.message.contains("#[target_feature]")));
}

#[test]
fn unsafe_audit_good_fixture_is_clean() {
    let f = SourceFile::from_source(
        "crates/tensor/src/kernels.rs",
        include_str!("fixtures/unsafe_audit_good.rs"),
    );
    let got = with_allows(&f, passes::unsafe_audit::run(&f));
    assert!(got.is_empty(), "{got:#?}");
}

#[test]
fn reactor_blocking_bad_fixture_yields_exactly_three() {
    let f = SourceFile::from_source(
        "crates/comm/src/reactor.rs",
        include_str!("fixtures/reactor_blocking_bad.rs"),
    );
    let got = with_allows(&f, passes::reactor_blocking::run(&f));
    assert_eq!(got.len(), 3, "{got:#?}");
    assert!(got[0].message.contains(".recv()"), "{got:#?}");
    assert!(got[1].message.contains("thread::sleep"), "{got:#?}");
    assert!(got[2].message.contains(".lock()"), "{got:#?}");
}

#[test]
fn reactor_blocking_good_fixture_is_clean() {
    let f = SourceFile::from_source(
        "crates/core/src/runtime.rs",
        include_str!("fixtures/reactor_blocking_good.rs"),
    );
    let got = with_allows(&f, passes::reactor_blocking::run(&f));
    assert!(got.is_empty(), "{got:#?}");
}

#[test]
fn allow_grammar_accepts_the_new_pass_names() {
    let f = SourceFile::from_source(
        "crates/core/src/runtime.rs",
        "fn a() {} // lint: allow(event-conformance) protocol extension staged over two PRs\nfn b() {} // lint: allow(unsafe-audit) FFI shim documented in DESIGN.md\nfn c() {} // lint: allow(reactor-blocking) startup-only path before the loop\n",
    );
    let (allows, bad) = allow::collect_allows(&f, passes::ALL);
    assert!(bad.is_empty(), "{bad:#?}");
    assert_eq!(allows.len(), 3);
}

#[test]
fn allow_without_reason_is_rejected_and_suppresses_nothing() {
    let f = SourceFile::from_source(
        "crates/core/src/controller.rs",
        include_str!("fixtures/allow_without_reason.rs"),
    );
    let got = with_allows(&f, passes::panic_path::run(&f, true));
    // Two malformed allows + the two panic findings they fail to cover.
    assert_eq!(got.len(), 4, "{got:#?}");
    assert_eq!(
        got.iter().filter(|g| g.pass == "allow-syntax").count(),
        2,
        "{got:#?}"
    );
    assert_eq!(
        got.iter().filter(|g| g.pass == "panic-path").count(),
        2,
        "{got:#?}"
    );
}

#[test]
fn the_workspace_itself_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels below the root");
    let findings = run_check(root).expect("workspace scan");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn binary_exit_codes_distinguish_clean_dirty_and_usage() {
    let bin = env!("CARGO_BIN_EXE_preduce-analysis");
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");

    let clean = Command::new(bin)
        .args(["check", "--root"])
        .arg(root)
        .output()
        .expect("run analyzer");
    assert!(
        clean.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&clean.stderr)
    );

    let dir = std::env::temp_dir().join("preduce-analysis-exit-codes");
    let src = dir.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        src.join("controller.rs"),
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("write fixture");
    let dirty = Command::new(bin)
        .args(["check", "--root"])
        .arg(&dir)
        .output()
        .expect("run analyzer");
    assert_eq!(dirty.status.code(), Some(1), "findings must exit 1");
    assert!(String::from_utf8_lossy(&dirty.stdout).contains("panic-path"));
    let _ = std::fs::remove_dir_all(&dir);

    let usage = Command::new(bin)
        .arg("frobnicate")
        .output()
        .expect("run analyzer");
    assert_eq!(usage.status.code(), Some(2), "usage errors must exit 2");
}

#[test]
fn binary_json_format_and_pass_selection() {
    let bin = env!("CARGO_BIN_EXE_preduce-analysis");
    let dir = std::env::temp_dir().join("preduce-analysis-json-pass");
    let src = dir.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        src.join("controller.rs"),
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("write fixture");

    // JSON output: stable schema header, machine-parseable fields.
    let json = Command::new(bin)
        .args(["check", "--format", "json", "--root"])
        .arg(&dir)
        .output()
        .expect("run analyzer");
    assert_eq!(json.status.code(), Some(1), "findings still exit 1");
    let out = String::from_utf8_lossy(&json.stdout);
    assert!(
        out.starts_with("{\"schema\":\"preduce-lint/1\",\"count\":1,"),
        "{out}"
    );
    assert!(out.contains("\"pass\":\"panic-path\""), "{out}");
    assert!(
        out.contains("\"file\":\"crates/core/src/controller.rs\""),
        "{out}"
    );
    assert!(out.contains("\"line\":2"), "{out}");

    // GitHub annotations carry file/line for the CI gate.
    let gh = Command::new(bin)
        .args(["check", "--format", "github", "--root"])
        .arg(&dir)
        .output()
        .expect("run analyzer");
    assert_eq!(gh.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&gh.stdout)
        .contains("::error file=crates/core/src/controller.rs,line=2,"));

    // Pass selection: the dirty line is panic-path; running only
    // weight-stochasticity must come back clean.
    let selected = Command::new(bin)
        .args(["check", "--pass", "weight-stochasticity", "--root"])
        .arg(&dir)
        .output()
        .expect("run analyzer");
    assert_eq!(
        selected.status.code(),
        Some(0),
        "selection must skip panic-path"
    );

    let both = Command::new(bin)
        .args([
            "check",
            "--pass",
            "panic-path,weight-stochasticity",
            "--root",
        ])
        .arg(&dir)
        .output()
        .expect("run analyzer");
    assert_eq!(both.status.code(), Some(1), "selected pass still fires");

    let _ = std::fs::remove_dir_all(&dir);

    // Unknown pass and unknown format are usage errors.
    let bad_pass = Command::new(bin)
        .args(["check", "--pass", "made-up"])
        .output()
        .expect("run analyzer");
    assert_eq!(bad_pass.status.code(), Some(2));
    let bad_fmt = Command::new(bin)
        .args(["check", "--format", "yaml"])
        .output()
        .expect("run analyzer");
    assert_eq!(bad_fmt.status.code(), Some(2));
}
