//! Known-bad fixture for the `trace-coverage` pass: one `&mut self`
//! mutation the replay checker can never see.

impl Controller {
    pub fn push_ready(&mut self, worker: usize) {
        self.queue.push(worker);
    }

    pub fn groups_formed(&self) -> u64 {
        self.groups
    }
}
