/root/repo/target/lint-scratch/target/debug/deps/preduce_analysis-ab9f1ae7384a92d6.d: src/lib.rs src/allow.rs src/passes/mod.rs src/passes/event_conformance.rs src/passes/lock_discipline.rs src/passes/panic_path.rs src/passes/reactor_blocking.rs src/passes/trace_coverage.rs src/passes/unsafe_audit.rs src/passes/weight_stochasticity.rs src/scan.rs src/scope.rs

/root/repo/target/lint-scratch/target/debug/deps/libpreduce_analysis-ab9f1ae7384a92d6.rlib: src/lib.rs src/allow.rs src/passes/mod.rs src/passes/event_conformance.rs src/passes/lock_discipline.rs src/passes/panic_path.rs src/passes/reactor_blocking.rs src/passes/trace_coverage.rs src/passes/unsafe_audit.rs src/passes/weight_stochasticity.rs src/scan.rs src/scope.rs

/root/repo/target/lint-scratch/target/debug/deps/libpreduce_analysis-ab9f1ae7384a92d6.rmeta: src/lib.rs src/allow.rs src/passes/mod.rs src/passes/event_conformance.rs src/passes/lock_discipline.rs src/passes/panic_path.rs src/passes/reactor_blocking.rs src/passes/trace_coverage.rs src/passes/unsafe_audit.rs src/passes/weight_stochasticity.rs src/scan.rs src/scope.rs

src/lib.rs:
src/allow.rs:
src/passes/mod.rs:
src/passes/event_conformance.rs:
src/passes/lock_discipline.rs:
src/passes/panic_path.rs:
src/passes/reactor_blocking.rs:
src/passes/trace_coverage.rs:
src/passes/unsafe_audit.rs:
src/passes/weight_stochasticity.rs:
src/scan.rs:
src/scope.rs:
