//! Spatial pooling layers (channel-major `[batch, c·h·w]` activations, like
//! [`crate::Conv2d`]).

use preduce_tensor::Tensor;

use crate::layer::Layer;

/// Max pooling with a square window and equal stride.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    /// Argmax input offsets from the forward pass, one per output element.
    argmax: Option<Vec<usize>>,
    batch: usize,
}

impl MaxPool2d {
    /// Creates a max-pool layer with `window`×`window` windows and stride
    /// equal to `window` (the common non-overlapping configuration).
    ///
    /// # Panics
    /// Panics if the window is zero or larger than the input.
    pub fn new(channels: usize, in_h: usize, in_w: usize, window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        assert!(
            window <= in_h && window <= in_w,
            "pool window {window} exceeds input {in_h}x{in_w}"
        );
        MaxPool2d {
            channels,
            in_h,
            in_w,
            window,
            argmax: None,
            batch: 0,
        }
    }

    /// Output spatial dimensions.
    pub fn output_hw(&self) -> (usize, usize) {
        (self.in_h / self.window, self.in_w / self.window)
    }

    /// Output feature count.
    pub fn output_features(&self) -> usize {
        let (oh, ow) = self.output_hw();
        self.channels * oh * ow
    }

    /// Input feature count.
    pub fn input_features(&self) -> usize {
        self.channels * self.in_h * self.in_w
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.shape().dim(1),
            self.input_features(),
            "maxpool expects [batch, {}], got {}",
            self.input_features(),
            x.shape()
        );
        let batch = x.shape().dim(0);
        let (oh, ow) = self.output_hw();
        let w = self.window;
        let xs = x.as_slice();
        let in_row = self.input_features();
        let out_row = self.output_features();

        let mut y = vec![f32::NEG_INFINITY; batch * out_row];
        let mut argmax = vec![0usize; batch * out_row];
        for b in 0..batch {
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let out_idx = b * out_row + c * oh * ow + oy * ow + ox;
                        for ky in 0..w {
                            for kx in 0..w {
                                let iy = oy * w + ky;
                                let ix = ox * w + kx;
                                let in_idx =
                                    b * in_row + c * self.in_h * self.in_w + iy * self.in_w + ix;
                                if xs[in_idx] > y[out_idx] {
                                    y[out_idx] = xs[in_idx];
                                    argmax[out_idx] = in_idx;
                                }
                            }
                        }
                    }
                }
            }
        }
        self.argmax = Some(argmax);
        self.batch = batch;
        Tensor::from_vec(y, [batch, out_row]).expect("pool volume matches")
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let argmax = self
            .argmax
            .take()
            .expect("MaxPool2d::backward called before forward");
        let mut dx = Tensor::zeros([self.batch, self.input_features()]);
        let dxs = dx.as_mut_slice();
        for (g, &src) in grad.as_slice().iter().zip(argmax.iter()) {
            dxs[src] += g;
        }
        dx
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling: collapses each channel's spatial map to its mean,
/// producing `[batch, channels]`.
#[derive(Debug, Clone)]
pub struct GlobalAvgPool {
    channels: usize,
    spatial: usize,
    batch: usize,
}

impl GlobalAvgPool {
    /// Creates a global-average-pool layer over `h·w`-sized channel maps.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(channels: usize, in_h: usize, in_w: usize) -> Self {
        assert!(channels > 0 && in_h > 0 && in_w > 0, "zero-sized pool");
        GlobalAvgPool {
            channels,
            spatial: in_h * in_w,
            batch: 0,
        }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "globalavgpool"
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let in_row = self.channels * self.spatial;
        assert_eq!(
            x.shape().dim(1),
            in_row,
            "globalavgpool expects [batch, {in_row}], got {}",
            x.shape()
        );
        let batch = x.shape().dim(0);
        self.batch = batch;
        let xs = x.as_slice();
        let mut y = vec![0.0f32; batch * self.channels];
        for b in 0..batch {
            for c in 0..self.channels {
                let base = b * in_row + c * self.spatial;
                let sum: f32 = xs[base..base + self.spatial].iter().sum();
                y[b * self.channels + c] = sum / self.spatial as f32;
            }
        }
        Tensor::from_vec(y, [batch, self.channels]).expect("volume matches")
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let in_row = self.channels * self.spatial;
        let mut dx = Tensor::zeros([self.batch, in_row]);
        let gs = grad.as_slice();
        let dxs = dx.as_mut_slice();
        let scale = 1.0 / self.spatial as f32;
        for b in 0..self.batch {
            for c in 0..self.channels {
                let g = gs[b * self.channels + c] * scale;
                let base = b * in_row + c * self.spatial;
                for v in &mut dxs[base..base + self.spatial] {
                    *v = g;
                }
            }
        }
        dx
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_maxima() {
        let mut p = MaxPool2d::new(1, 4, 4, 2);
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), [1, 16]).unwrap();
        let y = p.forward(&x);
        // Windows: max of {0,1,4,5}=5 {2,3,6,7}=7 {8,9,12,13}=13 {10,11,14,15}=15
        assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(1, 2, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 2.0], [1, 4]).unwrap();
        let _ = p.forward(&x);
        let dx = p.backward(&Tensor::from_vec(vec![5.0], [1, 1]).unwrap());
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_multi_channel_independent() {
        let mut p = MaxPool2d::new(2, 2, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 40.0, 30.0, 20.0, 10.0], [1, 8]).unwrap();
        assert_eq!(p.forward(&x).as_slice(), &[4.0, 40.0]);
    }

    #[test]
    fn global_avg_pool_means() {
        let mut p = GlobalAvgPool::new(2, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0], [1, 8]).unwrap();
        assert_eq!(p.forward(&x).as_slice(), &[2.5, 10.0]);
    }

    #[test]
    fn global_avg_pool_backward_spreads_evenly() {
        let mut p = GlobalAvgPool::new(1, 2, 2);
        let _ = p.forward(&Tensor::ones([1, 4]));
        let dx = p.backward(&Tensor::from_vec(vec![8.0], [1, 1]).unwrap());
        assert_eq!(dx.as_slice(), &[2.0; 4]);
    }

    #[test]
    fn pool_gradient_conserves_mass() {
        let mut p = MaxPool2d::new(1, 4, 4, 2);
        let x = Tensor::from_vec((0..16).map(|i| (i * 7 % 13) as f32).collect(), [1, 16]).unwrap();
        let y = p.forward(&x);
        let g = Tensor::ones(y.shape().clone());
        let dx = p.backward(&g);
        assert_eq!(dx.sum(), g.sum());
    }
}
