// Fixture: the invariant checker with seeded drift. The `GroupFormed`
// arm was stripped (emitted-but-unchecked), and `Phantom` is still
// matched although nothing emits it (checked-but-never-emitted).
// Scanned as crates/core/src/invariants.rs (never compiled).

impl InvariantChecker {
    pub fn observe(&mut self, e: &TraceEvent) {
        match e {
            TraceEvent::RunStarted { workers } => self.active = *workers,
            TraceEvent::Phantom { id } => self.note(*id),
            _ => {}
        }
    }
}
