//! Fixture for the allow grammar: a reasonless allow and an
//! unknown-pass allow are both `allow-syntax` findings, and neither
//! suppresses the underlying `panic-path` finding.

pub fn f(x: Option<u64>) -> u64 {
    x.unwrap() // lint: allow(panic-path)
}

pub fn g(y: Option<u64>) -> u64 {
    y.unwrap() // lint: allow(not-a-pass) the reason is present but the pass is unknown
}
