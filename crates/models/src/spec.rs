//! Serializable network architecture descriptions.
//!
//! Workers never ship layer objects to each other; they share a
//! [`NetworkSpec`] + seed and build identical replicas locally, mirroring the
//! paper's "model replication on each worker with the same initialization"
//! (§4). The spec is also what the model zoo returns.

use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::activation::{Relu, Tanh};
use crate::conv::Conv2d;
use crate::dense::Dense;
use crate::layer::Layer;
use crate::network::Network;
use crate::norm::{Dropout, LayerNorm};
use crate::pool::{GlobalAvgPool, MaxPool2d};
use crate::residual::Residual;

/// One layer in a [`NetworkSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Fully-connected layer.
    Dense {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// ReLU activation.
    Relu,
    /// Tanh activation.
    Tanh,
    /// 2-D convolution over channel-major activations.
    Conv2d {
        /// Input channels.
        in_c: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Output channels.
        out_c: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        padding: usize,
    },
    /// Non-overlapping max pooling.
    MaxPool2d {
        /// Channels.
        channels: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Window (and stride).
        window: usize,
    },
    /// Global average pooling to `[batch, channels]`.
    GlobalAvgPool {
        /// Channels.
        channels: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
    },
    /// Per-row layer normalization with learned gain/bias.
    LayerNorm {
        /// Feature width.
        features: usize,
    },
    /// Inverted dropout (identity at evaluation time).
    Dropout {
        /// Drop probability in `[0, 1)`. Stored in per-mille to keep the
        /// spec `Eq`/hashable (`250` = 0.25).
        p_mille: u16,
    },
    /// A residual block: `y = x + f(x)` over a dimension-preserving inner
    /// stack.
    Residual {
        /// Inner layers (must map `d → d`).
        layers: Vec<LayerSpec>,
    },
}

/// A complete architecture: input dimensionality plus an ordered layer list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Expected input feature count.
    pub input_dim: usize,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Convenience constructor for a residual MLP: a stem projecting to
    /// `width`, then `blocks` residual blocks
    /// (`LayerNorm → Dense → ReLU → Dense` inside each skip), then the
    /// classifier head — a faithful miniature of the pre-activation
    /// ResNet pattern.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn residual_mlp(input_dim: usize, width: usize, blocks: usize, num_classes: usize) -> Self {
        assert!(
            input_dim > 0 && width > 0 && num_classes > 0,
            "zero-sized residual MLP"
        );
        let mut layers = vec![
            LayerSpec::Dense {
                in_features: input_dim,
                out_features: width,
            },
            LayerSpec::Relu,
        ];
        for _ in 0..blocks {
            layers.push(LayerSpec::Residual {
                layers: vec![
                    LayerSpec::LayerNorm { features: width },
                    LayerSpec::Dense {
                        in_features: width,
                        out_features: width,
                    },
                    LayerSpec::Relu,
                    LayerSpec::Dense {
                        in_features: width,
                        out_features: width,
                    },
                ],
            });
        }
        layers.push(LayerSpec::Dense {
            in_features: width,
            out_features: num_classes,
        });
        NetworkSpec { input_dim, layers }
    }

    /// Convenience constructor for an MLP with the given hidden widths and
    /// ReLU activations: `input → h1 → ReLU → h2 → ReLU → … → classes`.
    ///
    /// # Panics
    /// Panics if `input_dim` or `num_classes` is zero.
    pub fn mlp(input_dim: usize, hidden: &[usize], num_classes: usize) -> Self {
        assert!(input_dim > 0 && num_classes > 0, "zero-sized MLP");
        let mut layers = Vec::new();
        let mut prev = input_dim;
        for &h in hidden {
            layers.push(LayerSpec::Dense {
                in_features: prev,
                out_features: h,
            });
            layers.push(LayerSpec::Relu);
            prev = h;
        }
        layers.push(LayerSpec::Dense {
            in_features: prev,
            out_features: num_classes,
        });
        NetworkSpec { input_dim, layers }
    }

    /// Output feature count of each layer, starting from `input_dim`;
    /// validates that consecutive layers are dimension-compatible.
    ///
    /// # Panics
    /// Panics on any dimension mismatch (a malformed spec).
    pub fn validate(&self) -> usize {
        validate_layers(self.input_dim, &self.layers)
    }

    /// Builds the network, initializing all parameters from `seed`.
    ///
    /// Two calls with the same spec and seed produce bit-identical networks —
    /// this is how every worker starts from the same replica.
    ///
    /// # Panics
    /// Panics if the spec is dimensionally inconsistent.
    pub fn build(&self, seed: u64) -> Network {
        self.validate();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let layers = build_layers(&self.layers, &mut rng);
        Network::new(self.input_dim, layers)
    }
}

/// Dimension-checks `layers` starting from `dim`, returning the output
/// width. Recurses into residual blocks (whose inner stack must preserve
/// the width).
fn validate_layers(mut dim: usize, layers: &[LayerSpec]) -> usize {
    for (i, l) in layers.iter().enumerate() {
        dim = match l {
            LayerSpec::Dense {
                in_features,
                out_features,
            } => {
                assert_eq!(
                    dim, *in_features,
                    "layer {i}: dense expects {in_features}, gets {dim}"
                );
                *out_features
            }
            LayerSpec::Relu | LayerSpec::Tanh => dim,
            LayerSpec::Conv2d {
                in_c,
                in_h,
                in_w,
                out_c,
                kernel,
                stride,
                padding,
            } => {
                assert_eq!(
                    dim,
                    in_c * in_h * in_w,
                    "layer {i}: conv expects {}, gets {dim}",
                    in_c * in_h * in_w
                );
                let oh = (in_h + 2 * padding - kernel) / stride + 1;
                let ow = (in_w + 2 * padding - kernel) / stride + 1;
                out_c * oh * ow
            }
            LayerSpec::MaxPool2d {
                channels,
                in_h,
                in_w,
                window,
            } => {
                assert_eq!(
                    dim,
                    channels * in_h * in_w,
                    "layer {i}: pool expects {}, gets {dim}",
                    channels * in_h * in_w
                );
                channels * (in_h / window) * (in_w / window)
            }
            LayerSpec::GlobalAvgPool {
                channels,
                in_h,
                in_w,
            } => {
                assert_eq!(
                    dim,
                    channels * in_h * in_w,
                    "layer {i}: gap expects {}, gets {dim}",
                    channels * in_h * in_w
                );
                *channels
            }
            LayerSpec::LayerNorm { features } => {
                assert_eq!(
                    dim, *features,
                    "layer {i}: layernorm expects {features}, gets {dim}"
                );
                dim
            }
            LayerSpec::Dropout { p_mille } => {
                assert!(
                    *p_mille < 1000,
                    "layer {i}: dropout probability must be < 1"
                );
                dim
            }
            LayerSpec::Residual { layers } => {
                let out = validate_layers(dim, layers);
                assert_eq!(
                    out, dim,
                    "layer {i}: residual inner stack maps {dim} -> {out}"
                );
                dim
            }
        };
    }
    dim
}

/// Constructs layer objects from specs, drawing all randomness (weights,
/// dropout seeds) from `rng` in spec order so the result is deterministic.
fn build_layers(specs: &[LayerSpec], rng: &mut rand::rngs::StdRng) -> Vec<Box<dyn Layer>> {
    use rand::Rng;
    specs
        .iter()
        .map(|l| -> Box<dyn Layer> {
            match l {
                LayerSpec::Dense {
                    in_features,
                    out_features,
                } => Box::new(Dense::new(rng, *in_features, *out_features)),
                LayerSpec::Relu => Box::new(Relu::new()),
                LayerSpec::Tanh => Box::new(Tanh::new()),
                LayerSpec::Conv2d {
                    in_c,
                    in_h,
                    in_w,
                    out_c,
                    kernel,
                    stride,
                    padding,
                } => Box::new(Conv2d::new(
                    rng, *in_c, *in_h, *in_w, *out_c, *kernel, *stride, *padding,
                )),
                LayerSpec::MaxPool2d {
                    channels,
                    in_h,
                    in_w,
                    window,
                } => Box::new(MaxPool2d::new(*channels, *in_h, *in_w, *window)),
                LayerSpec::GlobalAvgPool {
                    channels,
                    in_h,
                    in_w,
                } => Box::new(GlobalAvgPool::new(*channels, *in_h, *in_w)),
                LayerSpec::LayerNorm { features } => Box::new(LayerNorm::new(*features)),
                LayerSpec::Dropout { p_mille } => {
                    Box::new(Dropout::new(*p_mille as f32 / 1000.0, rng.gen()))
                }
                LayerSpec::Residual { layers } => {
                    Box::new(Residual::new(build_layers(layers, rng)))
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_spec_shape() {
        let s = NetworkSpec::mlp(10, &[32, 16], 4);
        assert_eq!(s.layers.len(), 5); // D R D R D
        assert_eq!(s.validate(), 4);
    }

    #[test]
    fn build_is_seed_deterministic() {
        let s = NetworkSpec::mlp(8, &[16], 3);
        let a = s.build(42);
        let b = s.build(42);
        assert_eq!(a.param_vector(), b.param_vector());
        let c = s.build(43);
        assert_ne!(a.param_vector(), c.param_vector());
    }

    #[test]
    #[should_panic(expected = "dense expects")]
    fn validate_catches_dimension_mismatch() {
        NetworkSpec {
            input_dim: 10,
            layers: vec![LayerSpec::Dense {
                in_features: 8,
                out_features: 4,
            }],
        }
        .validate();
    }

    #[test]
    fn conv_spec_validates_and_builds() {
        let s = NetworkSpec {
            input_dim: 3 * 8 * 8,
            layers: vec![
                LayerSpec::Conv2d {
                    in_c: 3,
                    in_h: 8,
                    in_w: 8,
                    out_c: 4,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool2d {
                    channels: 4,
                    in_h: 8,
                    in_w: 8,
                    window: 2,
                },
                LayerSpec::GlobalAvgPool {
                    channels: 4,
                    in_h: 4,
                    in_w: 4,
                },
                LayerSpec::Dense {
                    in_features: 4,
                    out_features: 2,
                },
            ],
        };
        assert_eq!(s.validate(), 2);
        let net = s.build(0);
        assert!(net.param_count() > 0);
    }

    #[test]
    fn residual_mlp_spec_validates_and_builds() {
        let s = NetworkSpec::residual_mlp(16, 32, 3, 5);
        assert_eq!(s.validate(), 5);
        let net = s.build(3);
        // Stem (16·32+32) + 3 blocks (LN 2·32 + two dense 32·32+32) + head.
        let expect = (16 * 32 + 32) + 3 * (2 * 32 + 2 * (32 * 32 + 32)) + (32 * 5 + 5);
        assert_eq!(net.param_count(), expect);
        // Deterministic across builds.
        assert_eq!(net.param_vector(), s.build(3).param_vector());
    }

    #[test]
    fn dropout_spec_builds_and_toggles() {
        let s = NetworkSpec {
            input_dim: 4,
            layers: vec![
                LayerSpec::Dropout { p_mille: 500 },
                LayerSpec::Dense {
                    in_features: 4,
                    out_features: 2,
                },
            ],
        };
        assert_eq!(s.validate(), 2);
        let mut net = s.build(0);
        use preduce_tensor::Tensor;
        net.set_training(false);
        // Eval mode: dropout is the identity, so the forward is
        // deterministic across calls.
        let x = Tensor::ones([2, 4]);
        let a = net.forward(&x);
        let b = net.forward(&x);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "residual inner stack maps")]
    fn residual_spec_rejects_dim_change() {
        NetworkSpec {
            input_dim: 8,
            layers: vec![LayerSpec::Residual {
                layers: vec![LayerSpec::Dense {
                    in_features: 8,
                    out_features: 4,
                }],
            }],
        }
        .validate();
    }

    #[test]
    fn spec_serde_roundtrip() {
        let s = NetworkSpec::mlp(10, &[5], 2);
        let json = serde_json::to_string(&s).unwrap();
        let back: NetworkSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
