//! The paper's prototype control plane: a TCP/IP message queue between the
//! workers and the controller (§4: "we also implement a message queue with
//! TCP/IP protocols for the communication between the controller and the
//! workers ... each message from the workers is only a few bytes").
//!
//! Wire format: 4-byte big-endian length prefix + JSON payload. Every
//! message really is a few dozen bytes; the model data never touches this
//! channel (that is what distinguishes the controller from a parameter
//! server).
//!
//! Topology: the controller binds a listener; each worker dials in and
//! introduces itself with a `Hello { rank }` frame. The controller side
//! is served by the sharded non-blocking reactor of [`crate::reactor`]
//! — a fixed pool of poller threads instead of one blocking thread per
//! socket — and exposes the same [`ControlPlane`] interface as the
//! in-process channels, plus batched ingestion via
//! [`BatchControlPlane`].
//!
//! Hardening (DESIGN.md §11): connects retry with exponential backoff
//! under a deadline and fail with the typed
//! [`CommError::ConnectFailed`]; every connected socket carries read and
//! write timeouts so no control-plane operation can block forever; and
//! workers can stream [`WorkerSignal::Heartbeat`] frames so the runtime
//! can turn silence into a detected departure.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError};
use parking_lot::Mutex;
use serde::{de::DeserializeOwned, Deserialize, Serialize};

use crate::control::{
    BatchControlPlane, ControlEvent, ControlPlane, FleetRoster, GroupAssignment,
    WorkerControlPlane, WorkerSignal,
};
use crate::error::CommError;
use crate::frame::{self, MAX_FRAME};
use crate::reactor::{self, ReactorConfig};
use crate::Result;

/// Read timeout on every connected control-plane socket. Reader threads
/// wake at this period on idle sockets; liveness decisions happen in the
/// runtime (heartbeat accounting), not down here.
pub(crate) const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Write timeout on every connected control-plane socket. A peer that
/// cannot drain a few-byte frame for this long is treated as gone.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// How long the controller waits for a connected worker's `Hello`.
pub(crate) const HELLO_TIMEOUT: Duration = Duration::from_secs(5);

/// Consecutive read timeouts tolerated *inside* a frame before the peer
/// is declared gone. Idle timeouts (between frames) are unbounded.
const MID_FRAME_STALLS: u32 = 8;

/// Connect retry policy: exponential backoff under an overall deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum dial attempts (at least one is always made).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub initial_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Overall budget; no new attempt starts past this deadline.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            deadline: Duration::from_secs(5),
        }
    }
}

/// The worker's first frame after connecting. `data_addr` is the
/// worker's data-plane listener address, present only in multi-process
/// deployments (see [`crate::reactor::accept_fleet`]); in-process TCP
/// runs leave it unset and the field is invisible on the wire to older
/// decoders (`serde(default)` + skip-if-none).
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct Hello {
    pub(crate) rank: usize,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub(crate) data_addr: Option<String>,
}

pub(crate) fn write_frame<T: Serialize>(
    stream: &mut TcpStream,
    msg: &T,
    peer: usize,
) -> Result<()> {
    let bytes = frame::encode(msg)?;
    stream
        .write_all(&bytes)
        .map_err(|_| CommError::Disconnected { peer })
}

/// Serializes one whole frame onto a shared socket under its writer
/// mutex (heartbeat thread and worker loop share the write half).
pub(crate) fn locked_write<T: Serialize>(
    writer: &Mutex<TcpStream>,
    msg: &T,
    peer: usize,
) -> Result<()> {
    write_frame(&mut writer.lock(), msg, peer) // lint: allow(lock-discipline) the per-socket writer mutex exists precisely to serialize whole frames onto one socket; nothing else is ever held with it
}

/// Reads exactly `buf.len()` bytes, distinguishing the three ways a
/// timed-out socket can fail: an idle timeout before any byte arrives
/// (`Timeout`, retryable — when `idle_ok`), a bounded number of stalls
/// mid-frame (then `Disconnected`), and a real EOF/socket error
/// (`Disconnected`).
pub(crate) fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    peer: usize,
    idle_ok: bool,
) -> Result<()> {
    let mut filled = 0usize;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(CommError::Disconnected { peer }),
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if idle_ok && filled == 0 {
                    return Err(CommError::Timeout { peer, tag: 0 });
                }
                stalls += 1;
                if stalls >= MID_FRAME_STALLS {
                    return Err(CommError::Disconnected { peer });
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(CommError::Disconnected { peer }),
        }
    }
    Ok(())
}

/// Reads one length-prefixed frame. An idle socket (no frame started
/// before the read timeout) returns `Timeout`; a frame cut off mid-way
/// returns `Disconnected`; a corrupt prefix or payload returns the
/// typed [`CommError::MalformedFrame`].
pub(crate) fn read_frame<T: DeserializeOwned>(stream: &mut TcpStream, peer: usize) -> Result<T> {
    let mut len_buf = [0u8; 4];
    read_full(stream, &mut len_buf, peer, true)?;
    let len = u32::from_be_bytes(len_buf);
    if len >= MAX_FRAME {
        return Err(CommError::MalformedFrame {
            detail: format!("oversized control frame ({len} bytes)"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    read_full(stream, &mut payload, peer, false)?;
    frame::decode(&payload)
}

/// Applies the standard control-plane socket configuration: no Nagle
/// delay, plus read/write timeouts so no operation blocks forever.
pub(crate) fn configure(stream: &TcpStream, peer: usize) -> Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .and_then(|_| stream.set_write_timeout(Some(WRITE_TIMEOUT)))
        .map_err(|_| CommError::Disconnected { peer })
}

/// Controller side of the TCP message queue, served by the sharded
/// reactor: shard threads deliver *batches* of [`ControlEvent`]s over
/// one channel; this link buffers a partially consumed batch so the
/// one-at-a-time [`ControlPlane`] interface still works.
#[derive(Debug)]
pub struct TcpControllerLink {
    events: Receiver<Vec<ControlEvent>>,
    /// Front of the current partially consumed batch.
    pending: VecDeque<ControlEvent>,
    /// Write half per worker, shared with nothing else (reads happen on
    /// the reactor shards' clones).
    writers: Vec<Arc<Mutex<TcpStream>>>,
}

impl TcpControllerLink {
    /// Assembles the link from the reactor's event channel and the
    /// per-worker write halves.
    pub(crate) fn from_reactor(
        events: Receiver<Vec<ControlEvent>>,
        writers: Vec<Arc<Mutex<TcpStream>>>,
    ) -> Self {
        TcpControllerLink {
            events,
            pending: VecDeque::new(),
            writers,
        }
    }

    /// Sends the fleet roster to every connected worker (multi-process
    /// deployments only; see [`reactor::accept_fleet`]).
    pub(crate) fn broadcast_roster(&mut self, roster: &FleetRoster) -> Result<()> {
        for (rank, writer) in self.writers.iter().enumerate() {
            locked_write(writer, roster, rank)?;
        }
        Ok(())
    }

    /// Pulls the next event, consulting the buffered batch first.
    fn next_event(&mut self, timeout: Duration) -> Result<ControlEvent> {
        if let Some(ev) = self.pending.pop_front() {
            return Ok(ev);
        }
        let batch = self.events.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => CommError::Timeout {
                peer: usize::MAX,
                tag: 0,
            },
            RecvTimeoutError::Disconnected => CommError::Disconnected { peer: usize::MAX },
        })?;
        self.pending.extend(batch);
        self.pending.pop_front().ok_or(CommError::Timeout {
            peer: usize::MAX,
            tag: 0,
        })
    }
}

/// Binds a controller listener on `addr` (use port 0 for an ephemeral
/// port) and returns the bound address to hand to workers.
///
/// # Panics
/// Panics if the address cannot be bound.
pub fn bind_controller(addr: &str) -> (TcpListener, SocketAddr) {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        // lint: allow(panic-path) startup-only: the documented contract is to panic when the controller listener cannot come up
        Err(e) => panic!("bind controller listener on {addr}: {e}"),
    };
    let local = match listener.local_addr() {
        Ok(a) => a,
        // lint: allow(panic-path) startup-only: the documented contract is to panic when the controller listener cannot come up
        Err(e) => panic!("controller listener has no local address: {e}"),
    };
    (listener, local)
}

/// Accepts exactly `n` workers on `listener` and hands their sockets to
/// the sharded reactor. Returns once every rank 0..n has said hello.
///
/// # Errors
/// Fails if a connection breaks during the handshake or a rank is
/// duplicated/out of range.
pub fn accept_workers(listener: &TcpListener, n: usize) -> Result<TcpControllerLink> {
    reactor::accept_reactor(listener, n, ReactorConfig::default()).map(|(link, _members)| link)
}

impl ControlPlane for TcpControllerLink {
    fn recv_signal(&mut self, timeout: Duration) -> Result<WorkerSignal> {
        // Classic interface: disconnects are invisible here (a vanished
        // peer is just silence, as with the per-thread readers of old);
        // callers that care use `recv_events`.
        let deadline = Instant::now() + timeout;
        loop {
            match self.next_event(deadline.saturating_duration_since(Instant::now()))? {
                ControlEvent::Signal(signal) => return Ok(signal),
                ControlEvent::Disconnected { .. } => continue,
            }
        }
    }

    fn send_assignment(&mut self, worker: usize, assignment: GroupAssignment) -> Result<()> {
        let writer = self.writers.get(worker).ok_or(CommError::InvalidRank {
            rank: worker,
            world: self.writers.len(),
        })?;
        locked_write(writer, &assignment, worker)
    }
}

impl BatchControlPlane for TcpControllerLink {
    fn recv_events(&mut self, max: usize, timeout: Duration) -> Result<Vec<ControlEvent>> {
        let first = self.next_event(timeout)?;
        let mut events = vec![first];
        while events.len() < max {
            if let Some(ev) = self.pending.pop_front() {
                events.push(ev);
                continue;
            }
            match self.events.try_recv() {
                Ok(batch) => self.pending.extend(batch),
                Err(_) => break,
            }
        }
        Ok(events)
    }
}

/// Worker side of the TCP message queue.
///
/// The socket is split: `stream` carries reads (assignments from the
/// controller); `writer` carries every outgoing frame under a mutex so
/// the heartbeat thread and the training loop interleave whole frames.
#[derive(Debug)]
pub struct TcpWorkerLink {
    rank: usize,
    stream: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
}

impl TcpWorkerLink {
    /// Dials the controller with the default [`RetryPolicy`] and
    /// introduces this worker.
    ///
    /// # Errors
    /// [`CommError::ConnectFailed`] once the retry budget is exhausted;
    /// other variants if the handshake fails after connecting.
    pub fn connect(addr: SocketAddr, rank: usize) -> Result<Self> {
        Self::connect_with(addr, rank, RetryPolicy::default())
    }

    /// Dials the controller under `policy` (exponential backoff between
    /// attempts, bounded by `max_attempts` and `deadline`).
    ///
    /// # Errors
    /// [`CommError::ConnectFailed`] carrying the dialed address, the
    /// attempt count, and the last OS error once the budget is
    /// exhausted; other variants if the handshake fails.
    pub fn connect_with(addr: SocketAddr, rank: usize, policy: RetryPolicy) -> Result<Self> {
        Self::dial(addr, rank, policy, None)
    }

    /// Dials the controller of a multi-process fleet: the hello carries
    /// this worker's data-plane listener address, and the controller
    /// replies with the fleet roster (every rank's data address) once
    /// all workers have joined — see [`crate::reactor::accept_fleet`].
    ///
    /// # Errors
    /// [`CommError::ConnectFailed`] once the retry budget is exhausted;
    /// other variants if the handshake or the roster read fails.
    pub fn connect_fleet(
        addr: SocketAddr,
        rank: usize,
        data_addr: String,
        policy: RetryPolicy,
    ) -> Result<(Self, crate::control::FleetRoster)> {
        let mut link = Self::dial(addr, rank, policy, Some(data_addr))?;
        // The roster only arrives after the *last* worker joins; give
        // slow fleets the same generous budget as the hello.
        link.stream
            .set_read_timeout(Some(HELLO_TIMEOUT))
            .map_err(|_| CommError::Disconnected { peer: rank })?;
        let roster: crate::control::FleetRoster = loop {
            match read_frame(&mut link.stream, rank) {
                Ok(r) => break r,
                Err(CommError::Timeout { .. }) => continue,
                Err(e) => return Err(e),
            }
        };
        link.stream
            .set_read_timeout(Some(READ_TIMEOUT))
            .map_err(|_| CommError::Disconnected { peer: rank })?;
        Ok((link, roster))
    }

    fn dial(
        addr: SocketAddr,
        rank: usize,
        policy: RetryPolicy,
        data_addr: Option<String>,
    ) -> Result<Self> {
        let start = Instant::now();
        let mut backoff = policy.initial_backoff;
        let mut attempts = 0u32;
        let last_error = loop {
            attempts += 1;
            match TcpStream::connect(addr) {
                Ok(stream) => return Self::handshake(stream, rank, data_addr),
                Err(e) => {
                    if attempts >= policy.max_attempts.max(1)
                        || start.elapsed() + backoff > policy.deadline
                    {
                        break e;
                    }
                }
            }
            thread::sleep(backoff);
            backoff = backoff.saturating_mul(2).min(policy.max_backoff);
        };
        Err(CommError::ConnectFailed {
            addr: addr.to_string(),
            attempts,
            error: last_error.to_string(),
        })
    }

    fn handshake(stream: TcpStream, rank: usize, data_addr: Option<String>) -> Result<Self> {
        configure(&stream, rank)?;
        let writer = stream
            .try_clone()
            .map_err(|_| CommError::Disconnected { peer: rank })?;
        let writer = Arc::new(Mutex::new(writer));
        locked_write(&writer, &Hello { rank, data_addr }, rank)?;
        Ok(TcpWorkerLink {
            rank,
            stream,
            writer,
        })
    }
}

impl WorkerControlPlane for TcpWorkerLink {
    fn rank(&self) -> usize {
        self.rank
    }

    fn send_ready(&mut self, iteration: u64) -> Result<()> {
        let signal = WorkerSignal::Ready {
            worker: self.rank,
            iteration,
        };
        locked_write(&self.writer, &signal, self.rank)
    }

    fn send_leaving(&mut self) -> Result<()> {
        let signal = WorkerSignal::Leaving { worker: self.rank };
        locked_write(&self.writer, &signal, self.rank)
    }

    fn recv_assignment(&mut self, timeout: Duration) -> Result<GroupAssignment> {
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(|_| CommError::Disconnected { peer: self.rank })?;
        read_frame(&mut self.stream, self.rank)
    }

    fn heartbeat_sender(&self) -> Option<Box<dyn FnMut() -> Result<()> + Send>> {
        let writer = Arc::clone(&self.writer);
        let rank = self.rank;
        Some(Box::new(move || {
            locked_write(&writer, &WorkerSignal::Heartbeat { worker: rank }, rank)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_secs(5);

    fn dial(addr: SocketAddr, rank: usize) -> TcpWorkerLink {
        TcpWorkerLink::connect_with(addr, rank, RetryPolicy::default()).expect("dial controller")
    }

    #[test]
    fn tcp_control_roundtrip() {
        let (listener, addr) = bind_controller("127.0.0.1:0");
        let worker = thread::spawn(move || {
            let mut w = dial(addr, 0);
            w.send_ready(7).expect("ready");
            let a = w.recv_assignment(T).expect("assignment");
            w.send_leaving().expect("leaving");
            a
        });
        let mut ctl = accept_workers(&listener, 1).expect("accept");
        match ctl.recv_signal(T).expect("signal") {
            WorkerSignal::Ready { worker, iteration } => {
                assert_eq!(worker, 0);
                assert_eq!(iteration, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
        let assignment = GroupAssignment {
            group: vec![0],
            weights: vec![1.0],
            base_tag: 9,
            new_iteration: 7,
        };
        ctl.send_assignment(0, assignment.clone()).expect("send");
        assert_eq!(worker.join().expect("join"), assignment);
        assert!(matches!(
            ctl.recv_signal(T).expect("signal"),
            WorkerSignal::Leaving { worker: 0 }
        ));
    }

    #[test]
    fn multiple_workers_multiplex_onto_one_queue() {
        let n = 4;
        let (listener, addr) = bind_controller("127.0.0.1:0");
        let workers: Vec<_> = (0..n)
            .map(|rank| {
                thread::spawn(move || {
                    let mut w = dial(addr, rank);
                    w.send_ready(rank as u64 * 10).expect("ready");
                    w.recv_assignment(T).expect("assignment")
                })
            })
            .collect();
        let mut ctl = accept_workers(&listener, n).expect("accept");
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..n {
            match ctl.recv_signal(T).expect("signal") {
                WorkerSignal::Ready { worker, iteration } => {
                    assert_eq!(iteration, worker as u64 * 10);
                    seen.insert(worker);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen.len(), n);
        let a = GroupAssignment {
            group: (0..n).collect(),
            weights: vec![1.0 / n as f32; n],
            base_tag: 0,
            new_iteration: 30,
        };
        ctl.announce(&a).expect("announce");
        for w in workers {
            assert_eq!(w.join().expect("join"), a);
        }
    }

    #[test]
    fn out_of_range_rank_rejected() {
        let (listener, addr) = bind_controller("127.0.0.1:0");
        let w = thread::spawn(move || TcpWorkerLink::connect(addr, 5));
        let r = accept_workers(&listener, 2);
        assert!(matches!(r, Err(CommError::InvalidRank { rank: 5, .. })));
        let _ = w.join().expect("join");
    }

    #[test]
    fn worker_recv_times_out_without_controller_message() {
        let (listener, addr) = bind_controller("127.0.0.1:0");
        let worker = thread::spawn(move || {
            let mut w = dial(addr, 0);
            w.recv_assignment(Duration::from_millis(100))
        });
        let _ctl = accept_workers(&listener, 1).expect("accept");
        let r = worker.join().expect("join");
        assert!(matches!(r, Err(CommError::Timeout { .. })), "{r:?}");
    }

    #[test]
    fn connect_failed_reports_address_and_attempts() {
        // Bind then immediately drop a listener to find a refused port.
        let (listener, addr) = bind_controller("127.0.0.1:0");
        drop(listener);
        let policy = RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            deadline: Duration::from_secs(2),
        };
        match TcpWorkerLink::connect_with(addr, 0, policy) {
            Err(CommError::ConnectFailed {
                addr: dialed,
                attempts,
                error,
            }) => {
                assert_eq!(dialed, addr.to_string());
                assert_eq!(attempts, 3);
                assert!(!error.is_empty(), "OS error text threaded through");
            }
            other => panic!("expected ConnectFailed, got {other:?}"),
        }
    }

    #[test]
    fn heartbeats_multiplex_with_signals() {
        let (listener, addr) = bind_controller("127.0.0.1:0");
        let worker = thread::spawn(move || {
            let w = dial(addr, 0);
            let mut beat = w.heartbeat_sender().expect("tcp links heartbeat");
            beat().expect("beat 1");
            beat().expect("beat 2");
            w
        });
        let mut ctl = accept_workers(&listener, 1).expect("accept");
        for _ in 0..2 {
            assert!(matches!(
                ctl.recv_signal(T).expect("signal"),
                WorkerSignal::Heartbeat { worker: 0 }
            ));
        }
        drop(worker.join().expect("join"));
    }
}
