//! Known-good twin of `trace_coverage_bad.rs`: mutations emit directly
//! or reach an emitting method (the fixpoint propagation).

impl Controller {
    pub fn push_ready(&mut self, worker: usize) {
        self.queue.push(worker);
        self.emit(TraceEvent::ReadySignal { worker });
    }

    fn emit(&mut self, event: TraceEvent) {
        self.sink.record(event);
    }

    pub fn repair(&mut self) {
        self.emit(TraceEvent::RunStarted { num_workers: 0 });
    }

    pub fn groups_formed(&self) -> u64 {
        self.groups
    }
}
