//! The virtual-time simulation harness.
//!
//! The strategy drivers themselves live in [`crate::engine::drivers`]
//! (one module per family, each projected onto both substrates); this
//! module keeps [`SimHarness`]: the worker replicas (real models, real
//! SGD math), the heterogeneity model (per-update compute times), the
//! network cost model, and a convergence tracker that periodically
//! evaluates the worker-averaged model on the held-out test set and stops
//! the run at the configured threshold — precisely the paper's protocol
//! (§5.1–5.2: run time and #updates to a fixed test accuracy; inference on
//! the average of all workers' models per Algorithm 2 line 8). The
//! `run_*` re-exports below preserve the pre-engine call sites.

pub use crate::engine::drivers::gossip::{run_ad_psgd, run_d_psgd};
pub use crate::engine::drivers::preduce::{run_preduce, run_preduce_chaos, run_preduce_traced};
pub use crate::engine::drivers::ps::{run_ps_asp, run_ps_hete, run_ps_ssp};
pub use crate::engine::drivers::sync::{run_allreduce, run_eager_reduce, run_ps_bk, run_ps_bsp};
pub use crate::worker::average_params;

use preduce_data::Dataset;
use preduce_models::{evaluate_accuracy_parallel, softmax_cross_entropy, Network};
use preduce_simnet::{HeterogeneityModel, NetworkModel, SimTime};
use rand::{rngs::StdRng, SeedableRng};

use crate::config::ExperimentConfig;
use crate::engine::setup::{build_fleet, Fleet, EVAL_BATCH};
use crate::metrics::{RunResult, TracePoint};
use crate::worker::WorkerState;

/// Cap on retained per-update time samples (reservoir not needed: the
/// early-run distribution is representative because the heterogeneity
/// models are stationary).
const MAX_UPDATE_SAMPLES: usize = 4096;

/// Shared simulation state handed to every driver.
pub struct SimHarness {
    /// Worker replicas (identical initialization).
    pub workers: Vec<WorkerState>,
    /// Per-worker compute-time model.
    pub hetero: Box<dyn HeterogeneityModel>,
    /// Communication cost model.
    pub network: NetworkModel,
    /// Simulated FLOPs per local update.
    pub update_flops: f64,
    /// Message bytes per model/gradient transfer.
    pub bytes: u64,
    /// The simulation's single RNG (batches, jitter, tie-breaking).
    pub rng: StdRng,
    /// Server-side momentum for the async PS drivers.
    pub ps_server_momentum: f32,
    /// Communication/computation overlap granted to static-topology
    /// collectives (All-Reduce, PS BSP).
    pub overlap_fraction: f64,
    /// Per-worker link slowdown (communication heterogeneity, Case 1).
    pub link_slowdown: Vec<f64>,
    tracker: ConvergenceTracker,
}

impl SimHarness {
    /// Builds the harness from an experiment configuration. The fleet
    /// (dataset, shards, identically-initialized replicas) comes from the
    /// shared [`build_fleet`] path, so a sim run and a threaded run of
    /// the same config start from the same state.
    ///
    /// # Panics
    /// Panics if the config is invalid.
    pub fn new(config: &ExperimentConfig) -> Self {
        let Fleet {
            workers,
            test,
            reference,
        } = build_fleet(config);
        let n = workers.len();
        let hetero = config.hetero.build(n, config.device_flops, config.jitter);

        SimHarness {
            workers,
            hetero,
            network: config.network,
            update_flops: config.update_flops(),
            bytes: config.message_bytes(),
            rng: StdRng::seed_from_u64(config.seed.wrapping_mul(0x9e3779b9)),
            ps_server_momentum: config.ps_server_momentum,
            overlap_fraction: config.overlap_fraction,
            link_slowdown: config.link_slowdown.clone().unwrap_or_else(|| vec![1.0; n]),
            tracker: ConvergenceTracker::new(config, reference, test),
        }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Samples the compute time of one local update for `worker` at `now`.
    pub fn compute_time(&mut self, worker: usize, now: SimTime) -> f64 {
        self.hetero
            .compute_time(worker, self.update_flops, now, &mut self.rng)
    }

    /// The link-slowdown factor of a collective over `members`: gated by
    /// the slowest participant's link (a ring moves at its slowest hop).
    pub fn link_factor(&self, members: impl IntoIterator<Item = usize>) -> f64 {
        members
            .into_iter()
            .map(|w| self.link_slowdown[w])
            .fold(1.0, f64::max)
    }

    /// Ring all-reduce time for a specific member set, link-aware.
    pub fn group_ring_time(&self, members: &[usize]) -> f64 {
        self.network.ring_allreduce_time(members.len(), self.bytes)
            * self.link_factor(members.iter().copied())
    }

    /// Records one completed update at `now` that took `duration`;
    /// evaluates the averaged model when due. Returns `true` when the run
    /// should stop (threshold reached or cap hit).
    pub fn record_update(&mut self, now: SimTime, duration: f64) -> bool {
        self.tracker.record(now, duration, &mut self.workers)
    }

    /// Updates completed so far.
    pub fn updates(&self) -> u64 {
        self.tracker.updates
    }

    /// Finalizes the run into a [`RunResult`].
    pub fn finish(self, strategy_label: String, end: SimTime) -> RunResult {
        self.finish_with_stats(strategy_label, end, Default::default())
    }

    /// Finalizes the run, attaching driver-specific diagnostics.
    pub fn finish_with_stats(
        mut self,
        strategy_label: String,
        end: SimTime,
        stats: std::collections::BTreeMap<String, f64>,
    ) -> RunResult {
        let final_accuracy = self.tracker.evaluate(&self.workers);
        let t = self.tracker;
        RunResult {
            strategy: strategy_label,
            run_time: end.seconds(),
            updates: t.updates,
            converged: t.converged,
            final_accuracy,
            trace: t.trace,
            per_update_samples: t.samples,
            stats,
        }
    }
}

/// Periodic evaluation of the worker-averaged model.
struct ConvergenceTracker {
    eval_net: Network,
    test: Dataset,
    threshold: f64,
    eval_every: u64,
    max_updates: u64,
    track_grad_norm: bool,
    updates: u64,
    converged: bool,
    trace: Vec<TracePoint>,
    samples: Vec<f64>,
}

impl ConvergenceTracker {
    fn new(config: &ExperimentConfig, eval_net: Network, test: Dataset) -> Self {
        ConvergenceTracker {
            eval_net,
            test,
            threshold: config.threshold,
            eval_every: config.eval_every,
            max_updates: config.max_updates,
            track_grad_norm: config.track_grad_norm,
            updates: 0,
            converged: false,
            trace: Vec::new(),
            samples: Vec::new(),
        }
    }

    fn record(&mut self, now: SimTime, duration: f64, workers: &mut [WorkerState]) -> bool {
        self.updates += 1;
        if self.samples.len() < MAX_UPDATE_SAMPLES {
            self.samples.push(duration);
        }
        if self.updates.is_multiple_of(self.eval_every) {
            let acc = self.evaluate(workers);
            let grad_norm_sq = self.track_grad_norm.then(|| self.grad_norm_sq(workers));
            self.trace.push(TracePoint {
                time: now.seconds(),
                updates: self.updates,
                accuracy: acc,
                grad_norm_sq,
            });
            if acc >= self.threshold {
                self.converged = true;
                return true;
            }
        }
        self.updates >= self.max_updates
    }

    fn evaluate(&mut self, workers: &[WorkerState]) -> f64 {
        let avg = average_params(workers);
        self.eval_net.set_param_vector(&avg);
        // Data-parallel over eval batches; integer correct counts make the
        // score bit-identical to a sequential pass (golden-safe).
        evaluate_accuracy_parallel(
            &self.eval_net,
            &self.test,
            EVAL_BATCH,
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(8),
        )
    }

    /// `‖∇F(u_k)‖²` of the averaged model over the whole held-out set.
    fn grad_norm_sq(&mut self, workers: &[WorkerState]) -> f64 {
        let avg = average_params(workers);
        self.eval_net.set_param_vector(&avg);
        self.eval_net.zero_grads();
        // Accumulate gradients over the full set in eval batches; the
        // per-batch mean losses are reweighted to the global mean.
        let n = self.test.len();
        let mut start = 0usize;
        while start < n {
            let end = (start + EVAL_BATCH).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let batch = self.test.gather(&idx);
            let logits = self.eval_net.forward(&batch.features);
            let mut loss = softmax_cross_entropy(&logits, &batch.labels);
            loss.grad.scale((end - start) as f32 / n as f32);
            self.eval_net.backward(&loss.grad);
            start = end;
        }
        let g = self.eval_net.grad_vector();
        let norm = g.norm2();
        norm * norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preduce_data::cifar10_like;
    use preduce_models::zoo;

    fn small_config() -> ExperimentConfig {
        let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
        c.num_workers = 4;
        c.max_updates = 64;
        c.eval_every = 16;
        c
    }

    #[test]
    fn harness_builds_identical_replicas() {
        let h = SimHarness::new(&small_config());
        assert_eq!(h.num_workers(), 4);
        for w in &h.workers[1..] {
            assert_eq!(w.params, h.workers[0].params);
        }
    }

    #[test]
    fn shards_are_disjoint_sizes() {
        let c = small_config();
        let h = SimHarness::new(&c);
        let total: usize = h.workers.iter().map(|w| w.sampler.dataset().len()).sum();
        assert_eq!(total, c.preset.config.num_samples - c.preset.test_size);
    }

    #[test]
    fn tracker_caps_updates() {
        let c = small_config();
        let mut h = SimHarness::new(&c);
        let mut stop = false;
        let mut count = 0;
        while !stop {
            count += 1;
            stop = h.record_update(SimTime::new(count as f64), 1.0);
            assert!(count <= 64, "cap not enforced");
        }
        assert_eq!(h.updates(), count);
    }

    #[test]
    fn finish_produces_consistent_result() {
        let c = small_config();
        let mut h = SimHarness::new(&c);
        for i in 1..=32u64 {
            h.record_update(SimTime::new(i as f64), 1.0);
        }
        let r = h.finish("test".into(), SimTime::new(32.0));
        assert_eq!(r.updates, 32);
        assert_eq!(r.trace.len(), 2); // evals at 16 and 32
        assert!((r.per_update_time() - 1.0).abs() < 1e-9);
        assert!(!r.converged);
        assert!(r.final_accuracy >= 0.0 && r.final_accuracy <= 1.0);
    }

    #[test]
    fn compute_time_positive_and_seeded() {
        let c = small_config();
        let mut h1 = SimHarness::new(&c);
        let mut h2 = SimHarness::new(&c);
        for w in 0..4 {
            let a = h1.compute_time(w, SimTime::ZERO);
            let b = h2.compute_time(w, SimTime::ZERO);
            assert!(a > 0.0);
            assert_eq!(a, b, "same seed must give same times");
        }
    }
}
