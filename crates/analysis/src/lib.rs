//! `preduce-analysis` — project-specific static analysis for the
//! partial-reduce workspace.
//!
//! Four passes enforce contracts the compiler (and generic clippy)
//! cannot see, at analysis time rather than at 3 a.m. mid-training-run:
//!
//! | pass | contract |
//! |------|----------|
//! | `panic-path` | no panicking constructs in control-plane/comms hot paths |
//! | `lock-discipline` | no lock-order inversions; no blocking calls under a guard |
//! | `weight-stochasticity` | every reduce weight row flows through `core::weights` (Thm. 1) |
//! | `trace-coverage` | every controller state mutation emits a `TraceEvent` |
//!
//! Findings are suppressed only by an inline
//! `// lint: allow(<pass>) <reason>` whose reason is mandatory
//! ([`allow`]). The crate is dependency-free by design: the lint gate
//! must build anywhere the toolchain does.
//!
//! Run it as `cargo run -p preduce-analysis -- check` or `preduce lint`.

pub mod allow;
pub mod passes;
pub mod scan;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use scan::SourceFile;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which pass produced it (or `allow-syntax` for malformed allows).
    pub pass: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.message
        )
    }
}

/// Whether the panic-path pass covers this file (control plane, comms,
/// engine, CLI, the tensor kernel layer — every collective and
/// model-average path funnels through the kernels, so a panic there
/// strands a group just like a comms panic — and the checkpoint store,
/// whose errors must surface as typed `CheckpointError`s, never panics:
/// a crash during restore is exactly the moment durability matters).
fn panic_scope(path: &str) -> bool {
    path == "crates/core/src/controller.rs"
        || path == "crates/core/src/runtime.rs"
        || path == "crates/tensor/src/kernels.rs"
        || path.starts_with("crates/comm/src/")
        || path.starts_with("crates/trainer/src/engine/")
        || path.starts_with("crates/cli/src/")
        || path.starts_with("crates/checkpoint/src/")
}

/// Whether the stricter unchecked-indexing sub-rule applies: the
/// control-plane core, where a bad index panics the controller or a
/// comms thread. The trainer's math kernels index heavily under loop
/// bounds and stay out (see DESIGN.md §10).
fn index_scope(path: &str) -> bool {
    path == "crates/core/src/controller.rs"
        || path == "crates/core/src/runtime.rs"
        || path.starts_with("crates/comm/src/")
        || path == "crates/trainer/src/engine/substrate.rs"
}

/// Whether the lock-discipline pass covers this file (every file in the
/// workspace that holds a `Mutex`/`Condvar`/`RwLock` today, plus the
/// checkpoint store so any future locking around snapshot files is
/// born under the discipline rather than grandfathered in).
fn lock_scope(path: &str) -> bool {
    path == "crates/trainer/src/engine/drivers/ps.rs"
        || path == "crates/trainer/src/engine/drivers/sync.rs"
        || path == "crates/comm/src/tcp.rs"
        || path == "crates/comm/src/reactor.rs"
        || path == "crates/core/src/trace.rs"
        || path.starts_with("crates/checkpoint/src/")
}

/// Whether the weight-stochasticity pass covers this file: everywhere
/// except the blessed constructors themselves.
fn weights_scope(path: &str) -> bool {
    path != passes::weight_stochasticity::HOME
}

/// Whether the trace-coverage pass covers this file: the controller is
/// the replayed state machine.
fn trace_scope(path: &str) -> bool {
    path == "crates/core/src/controller.rs"
}

/// Runs every pass over one scanned file (scope rules applied), returns
/// surviving findings after allow filtering, feeding lock-order edges
/// into `locks`.
fn check_file(
    file: &SourceFile,
    locks: &mut passes::lock_discipline::LockDiscipline,
) -> Vec<Finding> {
    let (allows, mut findings) = allow::collect_allows(file, passes::ALL);
    let mut raw = Vec::new();
    if panic_scope(&file.path) {
        raw.extend(passes::panic_path::run(file, index_scope(&file.path)));
    }
    if weights_scope(&file.path) {
        raw.extend(passes::weight_stochasticity::run(file));
    }
    if trace_scope(&file.path) {
        raw.extend(passes::trace_coverage::run(file));
    }
    if lock_scope(&file.path) {
        locks.scan_file(file);
    }
    findings.extend(allow::apply_allows(raw, file, &allows));
    findings
}

/// Scans the workspace rooted at `root`: every `crates/*/src/**/*.rs`
/// file, all passes, allowlist applied. Returns surviving findings
/// sorted by path and line.
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree.
pub fn run_check(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.retain(|p| {
        relative(root, p)
            .map(|r| r.split('/').any(|seg| seg == "src"))
            .unwrap_or(false)
    });
    files.sort();

    let mut findings = Vec::new();
    let mut locks = passes::lock_discipline::LockDiscipline::new();
    let mut lock_files: Vec<SourceFile> = Vec::new();
    for abs in &files {
        let Some(rel) = relative(root, abs) else {
            continue;
        };
        let file = SourceFile::load(abs, &rel)?;
        if lock_scope(&rel) {
            // Lock findings surface at `finish`; keep the file around so
            // its allows can filter them.
            findings.extend(check_file_keeping(&file, &mut locks, &mut lock_files));
        } else {
            findings.extend(check_file(&file, &mut locks));
        }
    }
    // Global lock-order findings, filtered by their files' allows.
    let mut lock_findings = locks.finish();
    for f in &lock_files {
        let (allows, _) = allow::collect_allows(f, passes::ALL);
        lock_findings = lock_findings
            .into_iter()
            .filter(|finding| {
                !(finding.file == f.path
                    && allows
                        .iter()
                        .any(|a| a.covers + 1 == finding.line && a.pass == finding.pass))
            })
            .collect();
    }
    findings.extend(lock_findings);
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

fn check_file_keeping(
    file: &SourceFile,
    locks: &mut passes::lock_discipline::LockDiscipline,
    keep: &mut Vec<SourceFile>,
) -> Vec<Finding> {
    let out = check_file(file, locks);
    keep.push(SourceFile {
        path: file.path.clone(),
        raw: file.raw.clone(),
        code: file.code.clone(),
        is_test: file.is_test.clone(),
    });
    out
}

/// Recursively collects `.rs` files.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // `target/` never holds first-party sources.
            if path.file_name().map(|n| n == "target").unwrap_or(false) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// `abs` relative to `root`, `/`-separated.
fn relative(root: &Path, abs: &Path) -> Option<String> {
    abs.strip_prefix(root).ok().map(|p| {
        p.components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/")
    })
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_are_disjoint_where_intended() {
        assert!(panic_scope("crates/core/src/controller.rs"));
        assert!(panic_scope("crates/comm/src/tcp.rs"));
        assert!(panic_scope("crates/trainer/src/engine/drivers/ps.rs"));
        assert!(panic_scope("crates/cli/src/commands.rs"));
        assert!(panic_scope("crates/tensor/src/kernels.rs"));
        assert!(panic_scope("crates/checkpoint/src/lib.rs"));
        assert!(!panic_scope("crates/tensor/src/matmul.rs"));
        assert!(!panic_scope("crates/models/src/dense.rs"));
        // The kernels index under loop bounds by design (DESIGN.md §13);
        // the stricter unchecked-index sub-rule stays off there.
        assert!(!index_scope("crates/tensor/src/kernels.rs"));
        assert!(!index_scope("crates/trainer/src/engine/drivers/sync.rs"));
        assert!(lock_scope("crates/core/src/trace.rs"));
        assert!(lock_scope("crates/comm/src/reactor.rs"));
        assert!(lock_scope("crates/checkpoint/src/lib.rs"));
        assert!(!lock_scope("crates/comm/src/mesh.rs"));
        assert!(!lock_scope("crates/core/src/controller.rs"));
        assert!(!weights_scope("crates/core/src/weights.rs"));
        assert!(weights_scope("crates/trainer/src/engine/setup.rs"));
        assert!(trace_scope("crates/core/src/controller.rs"));
    }

    #[test]
    fn finding_display_is_greppable() {
        let f = Finding {
            pass: "panic-path".into(),
            file: "crates/x/src/a.rs".into(),
            line: 7,
            message: "m".into(),
        };
        assert_eq!(f.to_string(), "crates/x/src/a.rs:7: [panic-path] m");
    }
}
