//! Substrate-level integration: the mini-DL framework trains real tasks to
//! high accuracy, and model/data plumbing composes across crates.

use preduce::data::{shard_dataset, BatchSampler, GaussianMixture, ShardStrategy, SynthConfig};
use preduce::models::{
    evaluate_accuracy, softmax_cross_entropy, LayerSpec, NetworkSpec, SgdConfig, SgdOptimizer,
};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn mlp_learns_separable_task_to_high_accuracy() {
    let mixture = GaussianMixture::new(SynthConfig {
        num_classes: 4,
        feature_dim: 16,
        num_samples: 1200,
        center_norm: 4.0,
        noise_std: 0.6,
        nonlinear_warp: false,
        seed: 2,
    });
    let (train, test) = mixture.generate().split_test(200);

    let mut net = NetworkSpec::mlp(16, &[32], 4).build(0);
    let mut opt = SgdOptimizer::new(
        SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            schedule: preduce::models::LrSchedule::Constant,
        },
        net.param_count(),
    );
    let mut sampler = BatchSampler::new(train, 32, 3);
    let mut params = net.param_vector();

    for _ in 0..400 {
        let batch = sampler.next_batch();
        net.set_param_vector(&params);
        net.zero_grads();
        let logits = net.forward(&batch.features);
        let loss = softmax_cross_entropy(&logits, &batch.labels);
        net.backward(&loss.grad);
        let grads = net.grad_vector();
        opt.step(&mut params, &grads);
    }
    net.set_param_vector(&params);
    let acc = evaluate_accuracy(&mut net, &test, 64);
    assert!(acc > 0.95, "single-worker training reached only {acc}");
}

#[test]
fn cnn_spec_trains_on_image_like_task() {
    // A real convolutional network over 1×8×8 "images": conv → relu →
    // pool → dense. Verifies the conv/pool backprop path end to end.
    let mixture = GaussianMixture::new(SynthConfig {
        num_classes: 3,
        feature_dim: 64,
        num_samples: 600,
        center_norm: 4.0,
        noise_std: 0.7,
        nonlinear_warp: false,
        seed: 5,
    });
    let (train, test) = mixture.generate().split_test(120);

    let spec = NetworkSpec {
        input_dim: 64,
        layers: vec![
            LayerSpec::Conv2d {
                in_c: 1,
                in_h: 8,
                in_w: 8,
                out_c: 8,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            LayerSpec::Relu,
            LayerSpec::MaxPool2d {
                channels: 8,
                in_h: 8,
                in_w: 8,
                window: 2,
            },
            LayerSpec::GlobalAvgPool {
                channels: 8,
                in_h: 4,
                in_w: 4,
            },
            LayerSpec::Dense {
                in_features: 8,
                out_features: 3,
            },
        ],
    };
    assert_eq!(spec.validate(), 3);
    let mut net = spec.build(1);
    let mut opt = SgdOptimizer::new(
        SgdConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
            schedule: preduce::models::LrSchedule::Constant,
        },
        net.param_count(),
    );
    let mut sampler = BatchSampler::new(train, 32, 4);
    let mut params = net.param_vector();

    let mut first_loss = None;
    let mut last_loss = 0.0;
    for _ in 0..250 {
        let batch = sampler.next_batch();
        net.set_param_vector(&params);
        net.zero_grads();
        let logits = net.forward(&batch.features);
        let loss = softmax_cross_entropy(&logits, &batch.labels);
        net.backward(&loss.grad);
        opt.step(&mut params, &net.grad_vector());
        first_loss.get_or_insert(loss.loss);
        last_loss = loss.loss;
    }
    assert!(
        last_loss < first_loss.unwrap() * 0.7,
        "CNN loss did not fall: {} -> {last_loss}",
        first_loss.unwrap()
    );
    net.set_param_vector(&params);
    let acc = evaluate_accuracy(&mut net, &test, 64);
    assert!(acc > 0.55, "CNN accuracy only {acc}");
}

#[test]
fn residual_mlp_trains_end_to_end() {
    // The extension architecture (skip connections + layer norm) must
    // train at least as readily as the plain MLP on the same task.
    let mixture = GaussianMixture::new(SynthConfig {
        num_classes: 4,
        feature_dim: 16,
        num_samples: 1200,
        center_norm: 4.0,
        noise_std: 0.6,
        nonlinear_warp: true,
        seed: 9,
    });
    let (train, test) = mixture.generate().split_test(200);
    let mut net = NetworkSpec::residual_mlp(16, 32, 2, 4).build(1);
    let mut opt = SgdOptimizer::new(
        SgdConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            schedule: preduce::models::LrSchedule::Constant,
        },
        net.param_count(),
    );
    let mut sampler = BatchSampler::new(train, 32, 3);
    let mut params = net.param_vector();
    for _ in 0..400 {
        let batch = sampler.next_batch();
        net.set_param_vector(&params);
        net.zero_grads();
        let logits = net.forward(&batch.features);
        let loss = softmax_cross_entropy(&logits, &batch.labels);
        net.backward(&loss.grad);
        opt.step(&mut params, &net.grad_vector());
    }
    net.set_param_vector(&params);
    let acc = evaluate_accuracy(&mut net, &test, 64);
    assert!(acc > 0.9, "residual MLP reached only {acc}");
}

#[test]
fn sharded_data_covers_every_example_exactly_once() {
    let mixture = GaussianMixture::new(SynthConfig {
        num_samples: 1003, // deliberately not divisible
        ..SynthConfig::default()
    });
    let ds = mixture.generate();
    let shards = shard_dataset(&ds, 7, ShardStrategy::Shuffled { seed: 1 });
    assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), 1003);
    let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
    assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
}

#[test]
fn identical_seeds_build_identical_workers_across_crates() {
    // The property Algorithm 2 depends on: every worker can independently
    // build the same initial replica from (spec, seed).
    let spec = preduce::models::zoo::resnet34().spec(64, 10);
    let a = spec.build(99).param_vector();
    let b = spec.build(99).param_vector();
    assert_eq!(a, b);

    let mut r1 = StdRng::seed_from_u64(1);
    let mut r2 = StdRng::seed_from_u64(1);
    use rand::Rng;
    assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
}
