//! # preduce
//!
//! A full-system Rust reproduction of *Heterogeneity-Aware Distributed
//! Machine Learning Training via Partial Reduce* (SIGMOD '21).
//!
//! Partial reduce (P-Reduce) replaces the globally-synchronous All-Reduce
//! in data-parallel SGD with parallel-asynchronous partial model averages:
//! after each local update, a worker synchronizes with only `P − 1` other
//! *ready* workers chosen by a lightweight controller, and continues
//! immediately — no worker ever waits for a straggler, and convergence at
//! `O(1/√(PK))` is preserved.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`partial_reduce`] — the primitive: controller, constant/dynamic
//!   aggregation weights, sync-graph frozen avoidance, spectral-gap
//!   analysis, Theorem 1 calculator, and a threaded runtime.
//! * [`trainer`] — every baseline strategy (All-Reduce, Eager-Reduce,
//!   AD-PSGD, D-PSGD, PS BSP/ASP/SSP/HETE/BK) and the virtual-time
//!   experiment driver reproducing the paper's evaluation.
//! * [`models`] — the mini deep-learning framework (dense/conv layers,
//!   backprop, SGD, model zoo with per-workload cost profiles).
//! * [`data`] — seeded synthetic classification presets standing in for
//!   CIFAR10/CIFAR100/ImageNet, sharding, batch sampling.
//! * [`simnet`] — the discrete-event heterogeneous-cluster simulator.
//! * [`comm`] — the threaded message-passing collective runtime.
//! * [`tensor`] — the dense `f32` tensor kernel.
//!
//! ## Quickstart
//!
//! ```
//! use preduce::trainer::{run_experiment, ExperimentConfig, Strategy};
//! use preduce::models::zoo;
//! use preduce::data::cifar10_like;
//!
//! // Partial reduce (P = 3, dynamic weights) on a heterogeneous fleet
//! // where 3 of 8 workers share one GPU.
//! let mut config = ExperimentConfig::table1(zoo::resnet34(), cifar10_like(), 3);
//! config.max_updates = 200;      // keep the doc test fast
//! config.eval_every = 100;
//! config.threshold = 0.99;
//! let result = run_experiment(Strategy::PReduce { p: 3, dynamic: true }, &config);
//! assert!(result.updates >= 200);
//! println!("{}: {} updates, {:.3}s/update", result.strategy,
//!          result.updates, result.per_update_time());
//! ```

#![forbid(unsafe_code)]

pub use partial_reduce;
pub use preduce_comm as comm;
pub use preduce_data as data;
pub use preduce_models as models;
pub use preduce_simnet as simnet;
pub use preduce_tensor as tensor;
pub use preduce_trainer as trainer;
