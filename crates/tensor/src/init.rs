//! Random weight initialization schemes.
//!
//! Every worker in the paper starts from the *same* model replica
//! (Algorithm 2 requires identical initialization), so all of these take an
//! explicit RNG: the trainer seeds one RNG, initializes once, and clones the
//! resulting tensors to every worker.

use rand::Rng;
use rand_distr::{Distribution, Normal};

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Uniform initialization over `[lo, hi)`.
///
/// # Panics
/// Panics if `lo >= hi`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, shape: impl Into<Shape>, lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "uniform range is empty: [{lo}, {hi})");
    let shape = shape.into();
    let data = (0..shape.volume()).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape).expect("volume matches by construction")
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suitable for linear/tanh layers.
///
/// # Panics
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    shape: impl Into<Shape>,
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "xavier requires nonzero fans");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, shape, -a, a)
}

/// He/Kaiming normal initialization: `N(0, sqrt(2 / fan_in))`. Suitable for
/// ReLU layers.
///
/// # Panics
/// Panics if `fan_in == 0`.
pub fn he_normal<R: Rng + ?Sized>(rng: &mut R, shape: impl Into<Shape>, fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "he_normal requires nonzero fan_in");
    let shape = shape.into();
    let std = (2.0 / fan_in as f32).sqrt();
    let normal = Normal::new(0.0, std).expect("std is finite and positive");
    let data = (0..shape.volume()).map(|_| normal.sample(rng)).collect();
    Tensor::from_vec(data, shape).expect("volume matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = uniform(&mut rng, [1000], -0.5, 0.5);
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn xavier_bound_matches_formula() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = xavier_uniform(&mut rng, [2000], 100, 50);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(t.max_abs() <= a);
        // With 2000 samples the max should come close to the bound.
        assert!(t.max_abs() > 0.8 * a);
    }

    #[test]
    fn he_normal_std_close_to_formula() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = he_normal(&mut rng, [20000], 8);
        let mean = t.mean();
        let var = t
            .as_slice()
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / t.len() as f64;
        let expected = 2.0 / 8.0;
        assert!((var - expected).abs() < 0.02, "var={var}");
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = uniform(&mut rand::rngs::StdRng::seed_from_u64(42), [16], -1.0, 1.0);
        let b = uniform(&mut rand::rngs::StdRng::seed_from_u64(42), [16], -1.0, 1.0);
        assert_eq!(a, b);
    }
}
