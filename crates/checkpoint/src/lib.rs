//! `preduce-checkpoint` — versioned, atomically-written training
//! snapshots (DESIGN.md §14).
//!
//! The elasticity substrate: a worker that crashes mid-run is replaced by
//! a process that restores the latest on-disk snapshot of its model,
//! optimizer state, and iteration counter, and the controller's
//! group-history/roster database survives the same way. The on-disk
//! format mirrors `comm::frame` — a fixed header, a length-prefixed JSON
//! payload, and a checksum trailer — so the two byte formats in the
//! workspace share one idiom:
//!
//! ```text
//! magic (8)  | version (u32 BE) | payload len (u32 BE) | payload | fnv1a64 (u64 BE)
//! ```
//!
//! The checksum covers version + length + payload, so a torn or bit-rotted
//! file is detected before deserialization is attempted. Writes are atomic
//! by construction: the bytes land in a `.tmp` sibling which is fsynced
//! and then renamed over the target, so a reader never observes a partial
//! snapshot — it sees either the previous complete one or the new one.
//!
//! Every failure mode is a typed [`CheckpointError`]; this crate sits in
//! the `preduce-analysis` panic-path scope and must never panic on any
//! input, including adversarial bytes.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

/// Leading magic identifying a preduce checkpoint file.
pub const MAGIC: [u8; 8] = *b"PRDCKPT1";

/// Current on-disk format version. Bump on any layout change; readers
/// refuse other versions with [`CheckpointError::VersionSkew`] rather
/// than guessing.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header size: magic + version + payload length.
pub const HEADER_LEN: usize = 8 + 4 + 4;

/// Checksum trailer size (FNV-1a, 64-bit, big-endian).
pub const TRAILER_LEN: usize = 8;

/// Upper bound on the JSON payload (256 MiB): a million-parameter model
/// serializes to a few tens of MiB, so anything near this bound is a
/// corrupted length prefix, not a legitimate snapshot.
pub const MAX_PAYLOAD: usize = 1 << 28;

/// Everything that can go wrong saving or restoring a snapshot. No
/// variant is ever reported by panicking: corrupt bytes, short files,
/// version skew, and I/O failures all surface here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure, annotated with the path involved.
    Io {
        /// The path being read or written.
        path: String,
        /// The underlying I/O error rendered as text.
        detail: String,
    },
    /// The requested snapshot does not exist.
    Missing {
        /// The absent path.
        path: String,
    },
    /// The file does not start with [`MAGIC`] — not a checkpoint at all.
    BadMagic {
        /// The first 8 bytes found instead.
        found: [u8; 8],
    },
    /// The file was written by a different format version.
    VersionSkew {
        /// Version recorded in the file.
        found: u32,
        /// The version this reader supports.
        supported: u32,
    },
    /// The file ends before the length prefix says it should.
    Truncated {
        /// Bytes the header + payload + trailer require.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The declared payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The checksum trailer disagrees with the recomputed digest.
    ChecksumMismatch {
        /// Digest stored in the trailer.
        stored: u64,
        /// Digest recomputed over the bytes.
        computed: u64,
    },
    /// The payload or its contents fail validation (bad JSON, mismatched
    /// vector lengths, a snapshot for the wrong rank…).
    Malformed {
        /// What exactly is wrong.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => write!(f, "checkpoint I/O on {path}: {detail}"),
            CheckpointError::Missing { path } => write!(f, "no snapshot at {path}"),
            CheckpointError::BadMagic { found } => {
                write!(f, "not a checkpoint file (magic {found:02x?})")
            }
            CheckpointError::VersionSkew { found, supported } => write!(
                f,
                "checkpoint format version {found} (this build reads {supported})"
            ),
            CheckpointError::Truncated { needed, got } => {
                write!(f, "truncated checkpoint: need {needed} bytes, have {got}")
            }
            CheckpointError::Oversized { len, max } => {
                write!(f, "checkpoint payload length {len} exceeds the {max} cap")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CheckpointError::Malformed { detail } => write!(f, "malformed checkpoint: {detail}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CheckpointError>;

/// FNV-1a, 64-bit — the dependency-free digest guarding snapshot bytes.
/// Not cryptographic; it detects torn writes and bit rot, which is the
/// contract (an adversary with write access to the checkpoint dir can do
/// worse than flip bits).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes `value` into the framed, checksummed byte format.
///
/// # Errors
/// [`CheckpointError::Malformed`] if the value does not serialize (e.g. a
/// NaN loss — JSON cannot carry it), [`CheckpointError::Oversized`] if the
/// payload exceeds [`MAX_PAYLOAD`].
pub fn encode<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    let payload = serde_json::to_vec(value).map_err(|e| CheckpointError::Malformed {
        detail: format!("serialize: {e}"),
    })?;
    if payload.len() > MAX_PAYLOAD {
        return Err(CheckpointError::Oversized {
            len: payload.len(),
            max: MAX_PAYLOAD,
        });
    }
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_be_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    bytes.extend_from_slice(&payload);
    let digest = fnv1a64(&bytes[8..]);
    bytes.extend_from_slice(&digest.to_be_bytes());
    Ok(bytes)
}

/// Decodes a framed snapshot, verifying magic, version, length, and
/// checksum before touching serde. Never panics; a file of arbitrary
/// bytes resolves to a typed error.
///
/// # Errors
/// Every [`CheckpointError`] format variant, per its documentation.
pub fn decode<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointError::Truncated {
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    if bytes[..8] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(CheckpointError::BadMagic { found });
    }
    let mut word = [0u8; 4];
    word.copy_from_slice(&bytes[8..12]);
    let version = u32::from_be_bytes(word);
    if version != FORMAT_VERSION {
        return Err(CheckpointError::VersionSkew {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    word.copy_from_slice(&bytes[12..16]);
    let len = u32::from_be_bytes(word) as usize;
    if len > MAX_PAYLOAD {
        return Err(CheckpointError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    let needed = HEADER_LEN + len + TRAILER_LEN;
    if bytes.len() < needed {
        return Err(CheckpointError::Truncated {
            needed,
            got: bytes.len(),
        });
    }
    if bytes.len() > needed {
        return Err(CheckpointError::Malformed {
            detail: format!("{} trailing bytes after the frame", bytes.len() - needed),
        });
    }
    let mut trailer = [0u8; 8];
    trailer.copy_from_slice(&bytes[needed - TRAILER_LEN..]);
    let stored = u64::from_be_bytes(trailer);
    let computed = fnv1a64(&bytes[8..needed - TRAILER_LEN]);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    serde_json::from_slice(&bytes[HEADER_LEN..HEADER_LEN + len]).map_err(|e| {
        CheckpointError::Malformed {
            detail: format!("deserialize: {e}"),
        }
    })
}

/// One worker's restorable state: the flat model, the SGD momentum
/// buffer and step counter, and the local iteration counters.
///
/// Deliberately *not* snapshotted: the data shard (reconstructed
/// deterministically from the experiment seed), the network architecture
/// (ditto), and the RNG cursor — a restored worker resumes its shard from
/// a fresh draw, which perturbs batch order but not correctness (the
/// paper's convergence guarantees never depend on batch order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerSnapshot {
    /// Worker rank the snapshot belongs to.
    pub rank: usize,
    /// Local iteration counter `k_i` at snapshot time.
    pub iteration: u64,
    /// Local updates applied so far.
    pub updates_applied: u64,
    /// Optimizer steps taken (drives the LR schedule).
    pub opt_steps: u64,
    /// Flat model parameters.
    pub params: Vec<f32>,
    /// SGD momentum buffer, same layout as `params`.
    pub velocity: Vec<f32>,
}

impl WorkerSnapshot {
    /// Internal consistency: a non-empty model whose momentum buffer has
    /// the same layout.
    ///
    /// # Errors
    /// [`CheckpointError::Malformed`] describing the inconsistency.
    pub fn validate(&self) -> Result<()> {
        if self.params.is_empty() {
            return Err(CheckpointError::Malformed {
                detail: format!("worker {} snapshot has an empty model", self.rank),
            });
        }
        if self.velocity.len() != self.params.len() {
            return Err(CheckpointError::Malformed {
                detail: format!(
                    "worker {} snapshot: {} params but {} velocity entries",
                    self.rank,
                    self.params.len(),
                    self.velocity.len()
                ),
            });
        }
        Ok(())
    }
}

/// The controller's durable state: the roster (who departed) and the
/// group-history database window, plus the closing counters.
///
/// The signal queue is deliberately *not* snapshotted: queued ready
/// signals are transient (workers re-signal after a restart), and
/// replaying stale signals into a rebuilt fleet would violate the
/// one-pending-signal-per-worker invariant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerSnapshot {
    /// Cluster size `N`.
    pub num_workers: usize,
    /// Workers still participating.
    pub active: usize,
    /// Ranks that have departed, ascending.
    pub departed: Vec<usize>,
    /// Total groups formed.
    pub groups_formed: u64,
    /// Frozen-schedule repairs performed.
    pub repairs: u64,
    /// Group-formation deferrals.
    pub deferrals: u64,
    /// Sync-graph window `T`.
    pub history_window: usize,
    /// Retained group-history window, oldest first.
    pub history: Vec<Vec<usize>>,
}

impl ControllerSnapshot {
    /// Internal consistency of roster counts and history bounds.
    ///
    /// # Errors
    /// [`CheckpointError::Malformed`] describing the inconsistency.
    pub fn validate(&self) -> Result<()> {
        if self.active + self.departed.len() != self.num_workers {
            return Err(CheckpointError::Malformed {
                detail: format!(
                    "controller snapshot: {} active + {} departed != N = {}",
                    self.active,
                    self.departed.len(),
                    self.num_workers
                ),
            });
        }
        if let Some(&w) = self.departed.iter().find(|&&w| w >= self.num_workers) {
            return Err(CheckpointError::Malformed {
                detail: format!("controller snapshot: departed rank {w} out of range"),
            });
        }
        if self.history.len() > self.history_window {
            return Err(CheckpointError::Malformed {
                detail: format!(
                    "controller snapshot: {} history groups exceed window {}",
                    self.history.len(),
                    self.history_window
                ),
            });
        }
        Ok(())
    }
}

/// A checkpoint directory: one `worker-<rank>.ckpt` per rank plus
/// `controller.ckpt`, each atomically replaced on every save so the file
/// present *is* the latest complete snapshot.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the directory cannot be created.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, &e))?;
        Ok(CheckpointStore { dir })
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of rank `rank`'s snapshot file.
    pub fn worker_path(&self, rank: usize) -> PathBuf {
        self.dir.join(format!("worker-{rank}.ckpt"))
    }

    /// Path of the controller snapshot file.
    pub fn controller_path(&self) -> PathBuf {
        self.dir.join("controller.ckpt")
    }

    /// Whether a snapshot for `rank` exists.
    pub fn has_worker(&self, rank: usize) -> bool {
        self.worker_path(rank).is_file()
    }

    /// Atomically writes `snap`, replacing any previous snapshot for the
    /// rank. Returns the final path.
    ///
    /// # Errors
    /// Validation or I/O failure; on error the previous snapshot (if any)
    /// is left intact.
    pub fn save_worker(&self, snap: &WorkerSnapshot) -> Result<PathBuf> {
        snap.validate()?;
        let path = self.worker_path(snap.rank);
        self.write_atomic(&path, &encode(snap)?)?;
        Ok(path)
    }

    /// Loads the latest snapshot for `rank`, fully verified.
    ///
    /// # Errors
    /// [`CheckpointError::Missing`] when no snapshot exists; any format
    /// error on corrupt bytes; [`CheckpointError::Malformed`] if the file
    /// holds a snapshot for a different rank.
    pub fn load_worker(&self, rank: usize) -> Result<WorkerSnapshot> {
        let path = self.worker_path(rank);
        let snap: WorkerSnapshot = decode(&read_all(&path)?)?;
        snap.validate()?;
        if snap.rank != rank {
            return Err(CheckpointError::Malformed {
                detail: format!("{} holds a snapshot for rank {}", path.display(), snap.rank),
            });
        }
        Ok(snap)
    }

    /// Atomically writes the controller snapshot. Returns the final path.
    ///
    /// # Errors
    /// Validation or I/O failure; the previous snapshot survives an error.
    pub fn save_controller(&self, snap: &ControllerSnapshot) -> Result<PathBuf> {
        snap.validate()?;
        let path = self.controller_path();
        self.write_atomic(&path, &encode(snap)?)?;
        Ok(path)
    }

    /// Loads the latest controller snapshot, fully verified.
    ///
    /// # Errors
    /// [`CheckpointError::Missing`] when absent; format errors otherwise.
    pub fn load_controller(&self) -> Result<ControllerSnapshot> {
        let snap: ControllerSnapshot = decode(&read_all(&self.controller_path())?)?;
        snap.validate()?;
        Ok(snap)
    }

    /// Ranks with a snapshot on disk, ascending.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the directory cannot be listed.
    pub fn worker_ranks(&self) -> Result<Vec<usize>> {
        let mut ranks = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                continue;
            };
            if let Some(rank) = name
                .strip_prefix("worker-")
                .and_then(|r| r.strip_suffix(".ckpt"))
                .and_then(|r| r.parse::<usize>().ok())
            {
                ranks.push(rank);
            }
        }
        ranks.sort_unstable();
        Ok(ranks)
    }

    /// Write-then-rename: bytes land in a `.tmp` sibling, are fsynced,
    /// and the rename replaces the target in one metadata operation.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let tmp = path.with_extension("ckpt.tmp");
        let mut file = fs::File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
        file.write_all(bytes).map_err(|e| io_err(&tmp, &e))?;
        file.sync_all().map_err(|e| io_err(&tmp, &e))?;
        drop(file);
        fs::rename(&tmp, path).map_err(|e| io_err(path, &e))?;
        Ok(())
    }
}

fn read_all(path: &Path) -> Result<Vec<u8>> {
    let mut file = match fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(CheckpointError::Missing {
                path: path.display().to_string(),
            })
        }
        Err(e) => return Err(io_err(path, &e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(|e| io_err(path, &e))?;
    Ok(bytes)
}

fn io_err(path: &Path, e: &std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("preduce-ckpt-test")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn worker_snap(rank: usize, iteration: u64) -> WorkerSnapshot {
        WorkerSnapshot {
            rank,
            iteration,
            updates_applied: iteration,
            opt_steps: iteration,
            params: vec![0.5, -1.25, 3.0],
            velocity: vec![0.0, 0.125, -0.5],
        }
    }

    fn controller_snap() -> ControllerSnapshot {
        ControllerSnapshot {
            num_workers: 4,
            active: 3,
            departed: vec![2],
            groups_formed: 17,
            repairs: 1,
            deferrals: 2,
            history_window: 3,
            history: vec![vec![0, 1], vec![1, 3]],
        }
    }

    #[test]
    fn worker_snapshot_roundtrips() {
        let store = CheckpointStore::open(tmpdir("worker-roundtrip")).unwrap();
        let snap = worker_snap(2, 40);
        let path = store.save_worker(&snap).unwrap();
        assert!(path.is_file());
        assert!(store.has_worker(2));
        assert!(!store.has_worker(0));
        assert_eq!(store.load_worker(2).unwrap(), snap);
        assert_eq!(store.worker_ranks().unwrap(), vec![2]);
    }

    #[test]
    fn controller_snapshot_roundtrips() {
        let store = CheckpointStore::open(tmpdir("controller-roundtrip")).unwrap();
        let snap = controller_snap();
        store.save_controller(&snap).unwrap();
        assert_eq!(store.load_controller().unwrap(), snap);
    }

    #[test]
    fn save_replaces_previous_snapshot() {
        let store = CheckpointStore::open(tmpdir("replace")).unwrap();
        store.save_worker(&worker_snap(0, 8)).unwrap();
        store.save_worker(&worker_snap(0, 16)).unwrap();
        assert_eq!(store.load_worker(0).unwrap().iteration, 16);
        // The temp file never survives a successful save.
        assert!(!store.worker_path(0).with_extension("ckpt.tmp").exists());
    }

    #[test]
    fn missing_snapshot_is_typed() {
        let store = CheckpointStore::open(tmpdir("missing")).unwrap();
        assert!(matches!(
            store.load_worker(7),
            Err(CheckpointError::Missing { .. })
        ));
        assert!(matches!(
            store.load_controller(),
            Err(CheckpointError::Missing { .. })
        ));
    }

    #[test]
    fn rank_mismatch_is_rejected() {
        let store = CheckpointStore::open(tmpdir("rank-mismatch")).unwrap();
        let mut snap = worker_snap(3, 5);
        snap.rank = 1;
        fs::write(store.worker_path(3), encode(&snap).unwrap()).unwrap();
        assert!(matches!(
            store.load_worker(3),
            Err(CheckpointError::Malformed { .. })
        ));
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let mut bytes = encode(&worker_snap(0, 1)).unwrap();
        let mid = HEADER_LEN + 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            decode::<WorkerSnapshot>(&bytes),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = encode(&worker_snap(0, 1)).unwrap();
        bytes[11] = 9; // version big-endian low byte
        assert!(matches!(
            decode::<WorkerSnapshot>(&bytes),
            Err(CheckpointError::VersionSkew {
                found: 9,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn inconsistent_snapshots_fail_validation() {
        let mut w = worker_snap(0, 1);
        w.velocity.pop();
        assert!(w.validate().is_err());
        let mut c = controller_snap();
        c.active = 4; // 4 active + 1 departed != 4 workers
        assert!(c.validate().is_err());
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
