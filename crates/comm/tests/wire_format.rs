//! Property suite for the control-plane wire format (DESIGN.md §12):
//! every public frame type round-trips through encode + incremental
//! decode under arbitrary chunking, and malformed, truncated, or
//! corrupted byte streams surface typed [`CommError::MalformedFrame`]
//! errors — never a panic, never a silent wrong decode of a length
//! prefix.

use proptest::prelude::*;

use preduce_comm::control::{FleetRoster, GroupAssignment, WorkerSignal};
use preduce_comm::frame::{self, FrameBuffer, HEADER_LEN, MAX_FRAME};
use preduce_comm::CommError;

fn arb_signal() -> impl Strategy<Value = WorkerSignal> {
    prop_oneof![
        (0usize..4096, any::<u64>())
            .prop_map(|(worker, iteration)| WorkerSignal::Ready { worker, iteration }),
        (0usize..4096).prop_map(|worker| WorkerSignal::Leaving { worker }),
        (0usize..4096).prop_map(|worker| WorkerSignal::Heartbeat { worker }),
    ]
}

fn arb_assignment() -> impl Strategy<Value = GroupAssignment> {
    (
        prop::collection::vec(0usize..4096, 0..16),
        prop::collection::vec(
            any::<f32>().prop_filter("JSON cannot carry NaN/inf", |x| x.is_finite()),
            0..16,
        ),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(group, weights, base_tag, new_iteration)| GroupAssignment {
                group,
                weights,
                base_tag,
                new_iteration,
            },
        )
}

fn arb_roster() -> impl Strategy<Value = FleetRoster> {
    prop::collection::vec("[ -~]{0,40}", 0..16).prop_map(|data_addrs| FleetRoster { data_addrs })
}

/// Pushes `bytes` split at the given fractional cut points, mimicking a
/// socket delivering arbitrary read sizes.
fn push_chunked(buf: &mut FrameBuffer, bytes: &[u8], cuts: &[prop::sample::Index]) {
    let mut splits: Vec<usize> = cuts.iter().map(|c| c.index(bytes.len() + 1)).collect();
    splits.push(0);
    splits.push(bytes.len());
    splits.sort_unstable();
    for pair in splits.windows(2) {
        buf.push_bytes(&bytes[pair[0]..pair[1]]);
    }
}

proptest! {
    /// Every `WorkerSignal` variant survives encode → chunked decode.
    #[test]
    fn signal_roundtrips(msg in arb_signal(), cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..6)) {
        let bytes = frame::encode(&msg).expect("signals always encode");
        let mut buf = FrameBuffer::new();
        push_chunked(&mut buf, &bytes, &cuts);
        prop_assert_eq!(buf.next_frame::<WorkerSignal>().unwrap(), Some(msg));
        prop_assert_eq!(buf.pending(), 0);
    }

    /// Group assignments (the only frame carrying floats) round-trip
    /// bit-exactly: serde_json's shortest-representation floats decode
    /// back to the same f32.
    #[test]
    fn assignment_roundtrips(msg in arb_assignment(), cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..6)) {
        let bytes = frame::encode(&msg).expect("assignments always encode");
        let mut buf = FrameBuffer::new();
        push_chunked(&mut buf, &bytes, &cuts);
        prop_assert_eq!(buf.next_frame::<GroupAssignment>().unwrap(), Some(msg));
    }

    /// Fleet rosters (arbitrary printable addresses) round-trip.
    #[test]
    fn roster_roundtrips(msg in arb_roster(), cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..6)) {
        let bytes = frame::encode(&msg).expect("rosters always encode");
        let mut buf = FrameBuffer::new();
        push_chunked(&mut buf, &bytes, &cuts);
        prop_assert_eq!(buf.next_frame::<FleetRoster>().unwrap(), Some(msg));
    }

    /// A back-to-back stream of frames delivered in arbitrary chunks
    /// decodes to exactly the sent sequence, in order.
    #[test]
    fn streams_preserve_order_under_chunking(
        msgs in prop::collection::vec(arb_signal(), 1..12),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..12),
    ) {
        let mut bytes = Vec::new();
        for m in &msgs {
            bytes.extend(frame::encode(m).expect("signals always encode"));
        }
        let mut buf = FrameBuffer::new();
        push_chunked(&mut buf, &bytes, &cuts);
        let mut decoded = Vec::new();
        while let Some(m) = buf.next_frame::<WorkerSignal>().unwrap() {
            decoded.push(m);
        }
        prop_assert_eq!(decoded, msgs);
        prop_assert_eq!(buf.pending(), 0);
    }

    /// Truncating a valid frame anywhere is "need more bytes", never an
    /// error and never a bogus decode.
    #[test]
    fn truncation_is_not_an_error(msg in arb_signal(), keep in any::<prop::sample::Index>()) {
        let bytes = frame::encode(&msg).expect("signals always encode");
        let keep = keep.index(bytes.len()); // strictly < len: always truncated
        let mut buf = FrameBuffer::new();
        buf.push_bytes(&bytes[..keep]);
        prop_assert_eq!(buf.next_frame::<WorkerSignal>().unwrap(), None);
        prop_assert_eq!(buf.pending(), keep);
    }

    /// A length prefix at or above MAX_FRAME is a typed error (the
    /// caller must drop the connection), regardless of what follows.
    #[test]
    fn oversized_prefix_is_typed_error(extra in 0u32..1000, tail in prop::collection::vec(any::<u8>(), 0..32)) {
        let len = MAX_FRAME.saturating_add(extra);
        let mut buf = FrameBuffer::new();
        buf.push_bytes(&len.to_be_bytes());
        buf.push_bytes(&tail);
        let err = buf.next_payload().unwrap_err();
        prop_assert!(matches!(err, CommError::MalformedFrame { .. }), "{:?}", err);
    }

    /// Arbitrary garbage bytes never panic the decoder: every complete
    /// "frame" either fails to decode with a typed error or (rarely)
    /// happens to parse; partial bytes wait for more.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = FrameBuffer::new();
        buf.push_bytes(&bytes);
        // Each iteration consumes at least HEADER_LEN bytes or stops.
        for _ in 0..(bytes.len() / HEADER_LEN + 1) {
            match buf.next_frame::<WorkerSignal>() {
                Ok(Some(_)) => {} // a miraculous valid frame — fine
                Ok(None) => break,
                Err(e) => {
                    prop_assert!(matches!(e, CommError::MalformedFrame { .. }), "{:?}", e);
                    break;
                }
            }
        }
    }

    /// Flipping any single payload byte of a valid frame either still
    /// parses (JSON is not error-detecting) or fails typed — no panic,
    /// and the frame boundary itself stays intact.
    #[test]
    fn payload_corruption_is_typed(msg in arb_signal(), at in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let mut bytes = frame::encode(&msg).expect("signals always encode");
        let payload_len = bytes.len() - HEADER_LEN;
        prop_assume!(payload_len > 0);
        let i = HEADER_LEN + at.index(payload_len);
        bytes[i] ^= flip;
        let mut buf = FrameBuffer::new();
        buf.push_bytes(&bytes);
        match buf.next_frame::<WorkerSignal>() {
            Ok(_) => {}
            Err(e) => prop_assert!(matches!(e, CommError::MalformedFrame { .. }), "{:?}", e),
        }
        // The corrupted frame was consumed either way: the stream can
        // continue with the next frame.
        prop_assert_eq!(buf.pending(), 0);
    }

    /// `decode` on a truncated payload handed in whole (the blocking
    /// transport's failure mode) is a typed error.
    #[test]
    fn whole_truncated_payload_fails_typed(msg in arb_signal(), keep in any::<prop::sample::Index>()) {
        let bytes = frame::encode(&msg).expect("signals always encode");
        let payload = &bytes[HEADER_LEN..];
        prop_assume!(payload.len() > 1);
        let keep = 1 + keep.index(payload.len() - 1); // 1..len: nonempty strict prefix
        let err = frame::decode::<WorkerSignal>(&payload[..keep]).unwrap_err();
        prop_assert!(matches!(err, CommError::MalformedFrame { .. }), "{:?}", err);
    }
}
