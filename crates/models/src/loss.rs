//! Loss functions. These sit outside the [`crate::Layer`] stack: the trainer
//! calls `network.forward(x)` to obtain logits, then a loss function to get
//! the scalar loss and the gradient to feed `network.backward`.

use preduce_tensor::{log_softmax_rows, softmax_rows, Tensor};

/// The result of a loss evaluation: the mean loss over the batch plus the
/// gradient of that mean loss w.r.t. the network output.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f64,
    /// `[batch, out]` gradient of the mean loss w.r.t. the logits.
    pub grad: Tensor,
}

/// Softmax cross-entropy over class logits.
///
/// Returns the batch-mean negative log-likelihood and its gradient
/// `(softmax(logits) − onehot(labels)) / batch`.
///
/// # Panics
/// Panics if `logits` is not rank-2, the label count differs from the batch
/// size, or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    assert_eq!(logits.shape().rank(), 2, "logits must be [batch, classes]");
    let (batch, classes) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(batch, labels.len(), "batch/label count mismatch");
    assert!(
        labels.iter().all(|&y| y < classes),
        "label out of range for {classes} classes"
    );

    let log_probs = log_softmax_rows(logits);
    let mut loss = 0.0f64;
    for (r, &y) in labels.iter().enumerate() {
        loss -= log_probs.row(r)[y] as f64;
    }
    loss /= batch as f64;

    let mut grad = softmax_rows(logits);
    let scale = 1.0 / batch as f32;
    for (r, &y) in labels.iter().enumerate() {
        let row = grad.row_mut(r);
        row[y] -= 1.0;
        for v in row.iter_mut() {
            *v *= scale;
        }
    }
    LossOutput { loss, grad }
}

/// Mean-squared-error loss against a dense target, used by the convex
/// regression tests where closed-form optima exist.
///
/// # Panics
/// Panics if the shapes differ.
pub fn mse_loss(output: &Tensor, target: &Tensor) -> LossOutput {
    assert_eq!(
        output.shape(),
        target.shape(),
        "mse shape mismatch: {} vs {}",
        output.shape(),
        target.shape()
    );
    let n = output.len() as f64;
    let loss = output.sq_dist(target) / n;
    let mut grad = output.sub(target);
    grad.scale(2.0 / n as f32);
    LossOutput { loss, grad }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_classes() {
        let logits = Tensor::zeros([4, 10]);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((out.loss - (10.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![2.0, -1.0, 0.5, 0.0, 0.0, 3.0], [2, 3]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 2]);
        for r in 0..2 {
            let s: f32 = out.grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -0.2, 1.0, 0.0], [1, 4]).unwrap();
        let labels = [2usize];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut hi = logits.clone();
            hi.as_mut_slice()[i] += eps;
            let mut lo = logits.clone();
            lo.as_mut_slice()[i] -= eps;
            let numeric = (softmax_cross_entropy(&hi, &labels).loss
                - softmax_cross_entropy(&lo, &labels).loss)
                / (2.0 * eps as f64);
            let a = out.grad.as_slice()[i] as f64;
            assert!((a - numeric).abs() < 1e-4, "i={i}: {a} vs {numeric}");
        }
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], [1, 3]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-6);
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let out = Tensor::from_vec(vec![1.0, 2.0], [1, 2]).unwrap();
        let tgt = Tensor::from_vec(vec![0.0, 0.0], [1, 2]).unwrap();
        let l = mse_loss(&out, &tgt);
        assert!((l.loss - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(l.grad.as_slice(), &[1.0, 2.0]); // 2/2 * (out - tgt)
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn cross_entropy_rejects_bad_label() {
        softmax_cross_entropy(&Tensor::zeros([1, 3]), &[3]);
    }
}
