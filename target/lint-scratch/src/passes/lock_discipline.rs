//! Pass 2 — `lock-discipline`: a static lock-order graph plus
//! guard-across-blocking-call detection, rebuilt on the token engine.
//!
//! Within each function the pass tracks which lock guards are live
//! (bound by `let`, released at scope exit or explicit `drop`), with two
//! refinements: a condvar `wait(guard)` *consumes and returns* the guard
//! (the lock is released while waiting, so the wait is not "blocking
//! under a lock"), and an un-bound acquisition (`x.lock().…` inside a
//! larger expression) lives only for its statement.
//!
//! v2 walks real tokens instead of lines: guard liveness is tied to the
//! brace depth of the *binding statement* (the v1 line scanner credited
//! a `let` with every `{` on its line, so `let g = m.lock(); if x {`
//! mis-scoped the guard), statements span lines for free, and strings
//! or comments containing braces cannot skew the depth.
//!
//! Two rules emit findings:
//! 1. **Order inversion** — every "guard of A live while B is acquired"
//!    site adds edge A→B to a global graph; any cycle is a potential
//!    deadlock and each edge on it is reported.
//! 2. **Blocking under a lock** — a live guard across a channel
//!    send/recv, sleep, join, barrier wait, or socket/file I/O call
//!    serializes or deadlocks the fleet.

use crate::scan::{FnItem, SourceFile, TokenKind};
use crate::Finding;

/// Pass name used in findings and allow directives.
pub const NAME: &str = "lock-discipline";

/// Guard-returning methods (empty argument list).
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Adapters that keep a `let` bound to the guard itself.
const ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// One acquisition observed while another guard was live.
struct Edge {
    from: String,
    to: String,
    file: String,
    line: usize,
}

/// The stateful pass: feed it every in-scope file, then `finish`.
#[derive(Default)]
pub struct LockDiscipline {
    edges: Vec<Edge>,
    findings: Vec<Finding>,
}

/// A live guard inside a function walk.
struct Guard {
    /// Binding name (`None` for a statement-temporary guard).
    name: Option<String>,
    /// Normalized lock key (receiver identifier).
    key: String,
    /// Brace depth the binding lives at; leaving it releases the guard.
    depth: usize,
}

impl LockDiscipline {
    /// Fresh pass state.
    pub fn new() -> LockDiscipline {
        LockDiscipline::default()
    }

    /// Scans one file, recording blocking-under-lock findings and
    /// lock-order edges.
    pub fn scan_file(&mut self, file: &SourceFile) {
        let fns = &file.items.fns;
        for f in fns {
            if file.is_test[f.start] || f.body.is_none() {
                continue;
            }
            // Nested fn bodies are walked as their own items; skip them
            // here so their guards do not leak into the parent's scope.
            let (open, close) = f.body.unwrap_or((0, 0));
            let mut skips: Vec<(usize, usize)> = fns
                .iter()
                .filter_map(|g| g.body)
                .filter(|&(o, c)| o > open && c < close)
                .collect();
            skips.sort_unstable();
            self.walk_fn(file, open, close, &skips);
        }
    }

    fn walk_fn(&mut self, file: &SourceFile, open: usize, close: usize, skips: &[(usize, usize)]) {
        let mut guards: Vec<Guard> = Vec::new();
        let mut temps: Vec<String> = Vec::new();
        let mut depth = 0usize;
        let mut stmt_start = open + 1;
        let mut k = open;
        while k <= close {
            if let Some(&(_, sc)) = skips.iter().find(|&&(so, _)| so == k) {
                k = sc + 1;
                stmt_start = k;
                continue;
            }
            let tok = file.ct(k);
            match (tok.kind, tok.text.as_str()) {
                (TokenKind::Punct, "{") => {
                    depth += 1;
                    temps.clear();
                    stmt_start = k + 1;
                }
                (TokenKind::Punct, "}") => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                    temps.clear();
                    stmt_start = k + 1;
                }
                (TokenKind::Punct, ";") => {
                    temps.clear();
                    stmt_start = k + 1;
                }
                (TokenKind::Ident, "drop") => {
                    // `drop(name)` (not `.drop(`) releases the named guard.
                    let prev_dot = k > 0 && file.ct(k - 1).text == ".";
                    if !prev_dot
                        && k + 3 <= close
                        && file.ct(k + 1).text == "("
                        && file.ct(k + 2).kind == TokenKind::Ident
                        && file.ct(k + 3).text == ")"
                    {
                        let name = file.ct(k + 2).text.clone();
                        guards.retain(|g| g.name.as_deref() != Some(name.as_str()));
                    }
                }
                (TokenKind::Ident, m) if is_acquire(file, k, close, m) => {
                    let key = receiver_key(file, k);
                    if let Some(key) = key {
                        let condvar = stmt_has_condvar_wait(file, stmt_start, close);
                        if !condvar && (guards.iter().any(|g| g.key == key) || temps.contains(&key))
                        {
                            self.findings.push(Finding {
                                pass: NAME.into(),
                                file: file.path.clone(),
                                line: tok.line + 1,
                                message: format!(
                                    "lock `{key}` acquired while already held in this function"
                                ),
                            });
                        }
                        for held in guards
                            .iter()
                            .map(|g| g.key.as_str())
                            .chain(temps.iter().map(String::as_str))
                        {
                            if held != key {
                                self.edges.push(Edge {
                                    from: held.to_string(),
                                    to: key.clone(),
                                    file: file.path.clone(),
                                    line: tok.line + 1,
                                });
                            }
                        }
                        match let_binding_of(file, stmt_start, k, close) {
                            Some(name) => guards.push(Guard {
                                name: Some(name),
                                key,
                                depth,
                            }),
                            None => temps.push(key),
                        }
                    }
                }
                _ => {}
            }
            // Blocking call at this token?
            if let Some(display) = blocking_at(file, k, close) {
                let mut held: Vec<String> = guards
                    .iter()
                    .map(|g| g.key.clone())
                    .chain(temps.iter().cloned())
                    .collect();
                // Acquisitions later in the same statement (e.g.
                // `write_frame(&mut w.lock(), …)`) are held across the call.
                held.extend(stmt_acquisitions_after(file, k, close));
                if !held.is_empty()
                    && !(display == ".send(" && stmt_has_condvar_wait(file, stmt_start, close))
                {
                    self.findings.push(Finding {
                        pass: NAME.into(),
                        file: file.path.clone(),
                        line: file.ct(k).line + 1,
                        message: format!(
                            "blocking call `{display}` while holding lock{} `{}`",
                            if held.len() > 1 { "s" } else { "" },
                            held.join("`, `")
                        ),
                    });
                }
            }
            k += 1;
        }
    }

    /// Emits accumulated findings plus one finding per lock-order cycle.
    pub fn finish(mut self) -> Vec<Finding> {
        // Deduplicate edges by (from, to), keeping the first site.
        let mut uniq: Vec<&Edge> = Vec::new();
        for e in &self.edges {
            if !uniq.iter().any(|u| u.from == e.from && u.to == e.to) {
                uniq.push(e);
            }
        }
        // Every edge that can reach its own source participates in a
        // cycle; report it at its acquisition site.
        for e in &uniq {
            if reaches(&uniq, &e.to, &e.from) {
                self.findings.push(Finding {
                    pass: NAME.into(),
                    file: e.file.clone(),
                    line: e.line,
                    message: format!(
                        "lock-order inversion: `{}` → `{}` here, but the reverse order also exists (potential deadlock)",
                        e.from, e.to
                    ),
                });
            }
        }
        self.findings
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        self.findings
    }
}

/// Reachability in the dedup'd edge list.
fn reaches(edges: &[&Edge], from: &str, to: &str) -> bool {
    let mut stack = vec![from.to_string()];
    let mut seen = vec![];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if seen.contains(&n) {
            continue;
        }
        seen.push(n.clone());
        for e in edges {
            if e.from == n {
                stack.push(e.to.clone());
            }
        }
    }
    false
}

/// True when code-token `k` is the method name of a guard acquisition:
/// `.lock()` / `.read()` / `.write()` with an empty argument list.
fn is_acquire(file: &SourceFile, k: usize, close: usize, m: &str) -> bool {
    ACQUIRE_METHODS.contains(&m)
        && k > 0
        && file.ct(k - 1).text == "."
        && k + 2 <= close
        && file.ct(k + 1).text == "("
        && file.ct(k + 2).text == ")"
}

/// Walks back from the acquisition's `.` to name the receiver: the
/// identifier before the dot, with one index-bracket group skipped
/// (`boards[slot].lock()` → `boards`, `self.writer.lock()` → `writer`).
fn receiver_key(file: &SourceFile, k_method: usize) -> Option<String> {
    let mut p = k_method.checked_sub(2)?;
    if file.ct(p).text == "]" {
        let mut depth = 0usize;
        loop {
            match file.ct(p).text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            p = p.checked_sub(1)?;
        }
        p = p.checked_sub(1)?;
    }
    let tok = file.ct(p);
    (tok.kind == TokenKind::Ident && tok.text != "self").then(|| tok.text.clone())
}

/// If the statement starting at `stmt_start` is `let [mut] name = …` and
/// everything after the acquisition at `k_method` is an unwrap/expect
/// chain ending the statement, the `let` binds the guard itself.
fn let_binding_of(
    file: &SourceFile,
    stmt_start: usize,
    k_method: usize,
    close: usize,
) -> Option<String> {
    if file.ct(stmt_start).text != "let" {
        return None;
    }
    let mut p = stmt_start + 1;
    if file.ct(p).text == "mut" {
        p += 1;
    }
    let name_tok = file.ct(p);
    if name_tok.kind != TokenKind::Ident || file.ct(p + 1).text != "=" {
        return None;
    }
    // Chain check from just past the acquisition's `()`.
    let mut q = k_method + 3;
    loop {
        if q > close {
            return None;
        }
        let tok = file.ct(q);
        if tok.text == ";" {
            return Some(name_tok.text.clone());
        }
        if tok.text != "." {
            return None;
        }
        let m = file.ct(q + 1).text.clone();
        if !ADAPTERS.contains(&m.as_str()) || file.ct(q + 2).text != "(" {
            return None;
        }
        // Skip the adapter's argument list.
        let mut depth = 0usize;
        q += 2;
        while q <= close {
            match file.ct(q).text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            q += 1;
        }
        q += 1;
    }
}

/// True when the statement containing `stmt_start` performs a condvar
/// wait (`.wait(guard)` / `.wait_timeout(` / `.wait_while(` with a
/// non-empty argument list).
fn stmt_has_condvar_wait(file: &SourceFile, stmt_start: usize, close: usize) -> bool {
    let mut k = stmt_start;
    while k <= close {
        let tok = file.ct(k);
        match tok.text.as_str() {
            ";" | "{" | "}" => return false,
            "wait" | "wait_timeout" | "wait_while" if tok.kind == TokenKind::Ident => {
                if k > 0
                    && file.ct(k - 1).text == "."
                    && k + 2 <= close
                    && file.ct(k + 1).text == "("
                    && file.ct(k + 2).text != ")"
                {
                    return true;
                }
            }
            _ => {}
        }
        k += 1;
    }
    false
}

/// Keys of acquisitions between `k` and the end of its statement.
fn stmt_acquisitions_after(file: &SourceFile, k: usize, close: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut p = k + 1;
    while p <= close {
        let tok = file.ct(p);
        match tok.text.as_str() {
            ";" | "{" | "}" => break,
            m if tok.kind == TokenKind::Ident && is_acquire(file, p, close, m) => {
                if let Some(key) = receiver_key(file, p) {
                    out.push(key);
                }
            }
            _ => {}
        }
        p += 1;
    }
    out
}

/// A blocking call whose method-name (or free-fn-name) token sits at
/// `k`; returns the display token used in the finding message. `.wait(`
/// with arguments is a condvar wait and is exempted separately.
fn blocking_at(file: &SourceFile, k: usize, close: usize) -> Option<&'static str> {
    let tok = file.ct(k);
    if tok.kind != TokenKind::Ident {
        return None;
    }
    let next_is = |off: usize, s: &str| k + off <= close && file.ct(k + off).text == s;
    let prev_dot = k > 0 && file.ct(k - 1).text == ".";
    let empty_args = next_is(1, "(") && next_is(2, ")");
    let any_args = next_is(1, "(");
    match tok.text.as_str() {
        "recv" if prev_dot && empty_args => Some(".recv()"),
        "recv_timeout" if prev_dot && any_args => Some(".recv_timeout("),
        "send" if prev_dot && any_args => Some(".send("),
        "join" if prev_dot && empty_args => Some(".join()"),
        "wait" if prev_dot && empty_args => Some(".wait()"),
        "write_all" if prev_dot && any_args => Some(".write_all("),
        "read_exact" if prev_dot && any_args => Some(".read_exact("),
        "flush" if prev_dot && empty_args => Some(".flush()"),
        "accept" if prev_dot && empty_args => Some(".accept()"),
        "connect" if prev_dot && any_args => Some(".connect("),
        "sleep" if any_args && k > 0 && file.ct(k - 1).text == "::" => Some("thread::sleep"),
        "write_frame" if any_args => Some("write_frame("),
        "read_frame" if any_args => Some("read_frame("),
        _ => None,
    }
}

/// Exposes the fn list for other passes' reuse (kept private otherwise).
#[allow(dead_code)]
fn _fn_items(file: &SourceFile) -> &[FnItem] {
    &file.items.fns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source("t.rs", src);
        let mut p = LockDiscipline::new();
        p.scan_file(&f);
        p.finish()
    }

    #[test]
    fn order_inversion_detected() {
        let got = run_on(
            "fn ab(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let ga = a.lock().unwrap();\n    let gb = b.lock().unwrap();\n}\nfn ba(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let gb = b.lock().unwrap();\n    let ga = a.lock().unwrap();\n}\n",
        );
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got[0].message.contains("inversion"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let got = run_on(
            "fn ab(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let ga = a.lock().unwrap();\n    let gb = b.lock().unwrap();\n}\nfn ab2(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let ga = a.lock().unwrap();\n    let gb = b.lock().unwrap();\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn blocking_under_guard_flagged() {
        let got = run_on(
            "fn f(m: &Mutex<u8>, tx: &Sender<u8>) {\n    let g = m.lock().unwrap();\n    tx.send(1).ok();\n}\n",
        );
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains(".send("));
    }

    #[test]
    fn scope_exit_and_drop_release() {
        let got = run_on(
            "fn f(m: &Mutex<u8>, tx: &Sender<u8>) {\n    {\n        let g = m.lock().unwrap();\n    }\n    tx.send(1).ok();\n    let g2 = m.lock().unwrap();\n    drop(g2);\n    tx.send(2).ok();\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn condvar_wait_is_exempt_barrier_wait_is_not() {
        let clean = run_on(
            "fn f(m: &Mutex<u8>, cv: &Condvar) {\n    let mut g = m.lock().unwrap();\n    g = cv.wait(g).unwrap();\n}\n",
        );
        assert!(clean.is_empty(), "{clean:?}");
        let bad = run_on(
            "fn f(m: &Mutex<u8>, bar: &Barrier) {\n    let g = m.lock().unwrap();\n    bar.wait();\n}\n",
        );
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn statement_temporary_guard_with_io_flagged() {
        let got = run_on("fn f(w: &Mutex<W>) {\n    write_frame(&mut w.lock(), &x);\n}\n");
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("write_frame"));
    }

    #[test]
    fn guard_scope_is_token_accurate_across_inline_braces() {
        // v1 credited the `let` with every `{` on its line; a guard bound
        // on a line that also opens a block was released too early.
        let got = run_on(
            "fn f(m: &Mutex<u8>, tx: &Sender<u8>) {\n    let g = m.lock().unwrap(); if x {\n        tx.send(1).ok();\n    }\n}\n",
        );
        assert_eq!(
            got.len(),
            1,
            "guard must still be live inside the if: {got:?}"
        );
    }

    #[test]
    fn multiline_statement_chain_still_binds() {
        let got = run_on(
            "fn f(m: &Mutex<u8>, tx: &Sender<u8>) {\n    let g = m\n        .lock()\n        .unwrap();\n    tx.send(1).ok();\n}\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn nested_fn_guards_do_not_leak_into_parent() {
        let got = run_on(
            "fn outer(m: &Mutex<u8>, tx: &Sender<u8>) {\n    fn inner(m: &Mutex<u8>) {\n        let g = m.lock().unwrap();\n    }\n    tx.send(1).ok();\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }
}
