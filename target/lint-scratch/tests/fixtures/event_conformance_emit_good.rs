// Fixture: emitter for the closed protocol.
// Scanned as crates/core/src/controller.rs (never compiled).

pub fn run(sink: &mut Sink) {
    sink.record(TraceEvent::RunStarted { workers: 4 });
    sink.record(TraceEvent::GroupFormed { id: 1, size: 2 });
}
