use std::fmt;

/// Errors produced by fallible tensor constructors and operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// buffer handed to a constructor.
    LengthMismatch {
        /// Elements implied by the requested shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two shapes that must agree for an operation do not.
    ShapeMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Left-hand shape, formatted.
        lhs: String,
        /// Right-hand shape, formatted.
        rhs: String,
    },
    /// A shape with zero dimensions or a zero-sized axis was supplied where a
    /// non-degenerate one is required.
    DegenerateShape(String),
    /// The Jacobi eigensolver did not reach the requested off-diagonal norm
    /// within its sweep budget.
    EigNoConvergence {
        /// Remaining off-diagonal Frobenius norm.
        off_diagonal: f64,
        /// Sweeps performed.
        sweeps: usize,
    },
    /// A matrix that must be square (e.g. for the eigensolver) is not.
    NotSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in `{op}`: {lhs} vs {rhs}")
            }
            TensorError::DegenerateShape(s) => {
                write!(f, "degenerate shape: {s}")
            }
            TensorError::EigNoConvergence {
                off_diagonal,
                sweeps,
            } => write!(
                f,
                "Jacobi eigensolver failed to converge after {sweeps} sweeps \
                 (off-diagonal norm {off_diagonal:.3e})"
            ),
            TensorError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(e.to_string().contains('6'));
        assert!(e.to_string().contains('5'));

        let e = TensorError::ShapeMismatch {
            op: "add",
            lhs: "[2, 3]".into(),
            rhs: "[3, 2]".into(),
        };
        assert!(e.to_string().contains("add"));

        let e = TensorError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2x3"));
    }
}
