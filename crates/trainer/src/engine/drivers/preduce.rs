//! The partial-reduce drivers: Algorithm 2 under virtual time (moved
//! verbatim from `sim::preduce`, reusing the transport-independent
//! [`partial_reduce::Controller`]) and on real threads (the controller
//! thread from [`partial_reduce::runtime`]).

use std::sync::Arc;

use partial_reduce::runtime::spawn_with_sink;
use partial_reduce::{
    AggregationMode, Controller, ControllerConfig, NullSink, TraceEvent, TraceSink,
};
use preduce_simnet::{EventQueue, SimTime};
use preduce_tensor::Tensor;

use crate::engine::setup::{build_fleet, evaluate_uniform_average};
use crate::engine::substrate::{must, Substrate, ThreadedSubstrate};
use crate::metrics::RunResult;
use crate::sim::SimHarness;
use crate::threaded::ThreadedReport;
use crate::worker::weighted_model_average;

/// Event payloads for the P-Reduce event loop.
enum Event {
    /// A worker finished its local update and signals ready.
    Ready(usize),
    /// A partial-reduce group's collective completed.
    GroupDone {
        group: Vec<usize>,
        weights: Vec<f32>,
        new_iteration: u64,
    },
}

/// Runs partial reduce with the given controller configuration.
///
/// One *update* is one partial-reduce group operation (§3.1.2 counts each
/// partial reduce as one iteration), matching the paper's Table 1 metric.
///
/// # Panics
/// Panics if the controller config disagrees with the harness size.
pub fn run_preduce(h: SimHarness, cfg: ControllerConfig) -> RunResult {
    run_preduce_traced(h, cfg, Arc::new(NullSink))
}

/// Like [`run_preduce`], but narrates the run to `sink` in the same event
/// vocabulary as the threaded runtime — the simulator emits one
/// [`TraceEvent::ReduceCompleted`] per member when a group's virtual
/// collective lands, so the invariant checker replays either harness
/// identically.
///
/// # Panics
/// Panics if the controller config disagrees with the harness size.
pub fn run_preduce_traced(
    mut h: SimHarness,
    cfg: ControllerConfig,
    sink: Arc<dyn TraceSink>,
) -> RunResult {
    assert_eq!(
        cfg.num_workers,
        h.num_workers(),
        "controller config sized for a different fleet"
    );
    let p = cfg.group_size;
    let label = match cfg.mode {
        AggregationMode::Constant => format!("P-Reduce CON (P={p})"),
        AggregationMode::Dynamic { .. } => format!("P-Reduce DYN (P={p})"),
    };
    let dynamic = matches!(cfg.mode, AggregationMode::Dynamic { .. });
    let mut controller = Controller::with_sink(cfg, sink);

    let signal = h.network.signal_time();

    let mut queue: EventQueue<Event> = EventQueue::new();
    // `last_free[w]`: when worker w last became free to compute (for the
    // per-update duration sample).
    let mut last_free = vec![SimTime::ZERO; h.num_workers()];
    let mut nonuniform_groups = 0u64;
    let mut total_groups = 0u64;

    for w in 0..h.num_workers() {
        let ct = h.compute_time(w, SimTime::ZERO);
        queue.schedule(SimTime::new(ct), Event::Ready(w));
    }

    let mut now = SimTime::ZERO;
    while let Some((t, ev)) = queue.pop() {
        now = t;
        match ev {
            Event::Ready(w) => {
                // Lines 2–4 of Algorithm 2: the local update completes as
                // the worker becomes ready.
                h.workers[w].local_update(&mut h.rng);
                controller.push_ready(w, h.workers[w].iteration);
                // The ready signal and group notification each cost one
                // network latency; then the group collective runs.
                while let Some(d) = controller.try_form_group() {
                    total_groups += 1;
                    let w0 = d.weights[0];
                    if d.weights.iter().any(|&w| (w - w0).abs() > 1e-6) {
                        nonuniform_groups += 1;
                    }
                    // Link-aware: the group's ring runs at its slowest
                    // member's link speed.
                    let group_comm = h.group_ring_time(&d.group);
                    queue.schedule(
                        t + 2.0 * signal + group_comm,
                        Event::GroupDone {
                            group: d.group,
                            weights: d.weights,
                            new_iteration: d.new_iteration,
                        },
                    );
                }
            }
            Event::GroupDone {
                group,
                weights,
                new_iteration,
            } => {
                // Weighted model average among exactly the group (line 7).
                let avg = {
                    let models: Vec<&Tensor> =
                        group.iter().map(|&m| &h.workers[m].params).collect();
                    weighted_model_average(&models, &weights)
                };
                let mut dur_sum = 0.0;
                for &m in &group {
                    h.workers[m].set_params(&avg);
                    if dynamic {
                        // §3.3.3: members adopt the group max iteration.
                        h.workers[m].iteration = new_iteration;
                    }
                    if controller.sink().enabled() {
                        controller.sink().record(TraceEvent::ReduceCompleted {
                            worker: m,
                            members: group.clone(),
                            new_iteration,
                        });
                    }
                    dur_sum += t - last_free[m];
                }
                let dur = dur_sum / group.len() as f64;
                if h.record_update(t, dur) {
                    break;
                }
                // Members immediately start their next iteration.
                for &m in &group {
                    last_free[m] = t;
                    let ct = h.compute_time(m, t);
                    queue.schedule(t + ct, Event::Ready(m));
                }
            }
        }
    }
    if controller.sink().enabled() {
        controller.sink().record(TraceEvent::RunFinished {
            groups_formed: controller.groups_formed(),
            repairs: controller.repairs(),
            deferrals: controller.deferrals(),
            singletons: 0,
        });
    }
    controller.sink().flush();
    let mut stats = std::collections::BTreeMap::new();
    stats.insert("groups".into(), total_groups as f64);
    stats.insert("nonuniform_groups".into(), nonuniform_groups as f64);
    stats.insert("repairs".into(), controller.repairs() as f64);
    stats.insert("deferrals".into(), controller.deferrals() as f64);
    h.finish_with_stats(label, now, stats)
}

// ---------------------------------------------------------------------------
// Threaded projection
// ---------------------------------------------------------------------------

/// Threaded partial reduce: every worker runs its iteration budget of
/// local update + `reduce` calls against the real controller thread; the
/// drain protocol issues singleton assignments at shutdown so no worker
/// hangs.
///
/// # Panics
/// Panics if the controller config disagrees with the fleet size, or if a
/// worker thread or the controller panics.
pub(crate) fn threaded_preduce(
    sub: &ThreadedSubstrate,
    controller: ControllerConfig,
) -> ThreadedReport {
    let config = sub.config();
    assert_eq!(
        controller.num_workers, config.num_workers,
        "controller config sized for a different fleet"
    );
    let fleet = build_fleet(config);
    let (handle, reducers) = spawn_with_sink(controller, sub.sink());

    let out = sub.run_spmd(fleet.workers, reducers, |mut ctx, mut w, mut r| {
        for _ in 0..ctx.iters {
            if !ctx.delay.is_zero() {
                std::thread::sleep(ctx.delay);
            }
            w.local_update(&mut ctx.rng);
            let iteration = w.iteration;
            let mut flat = w.params.clone().into_vec();
            let outcome = must("partial reduce", r.reduce(&mut flat, iteration));
            w.params = must("rebuild params", Tensor::from_vec(flat, [w.params.len()]));
            w.iteration = outcome.new_iteration;
        }
        must("finish", r.finish());
        (w.params, w.iteration)
    });
    let stats = handle.join();

    ThreadedReport {
        wall_seconds: out.wall_seconds,
        accuracy: evaluate_uniform_average(config, &fleet.test, &out.params),
        iterations: out.iterations,
        controller: Some(stats),
    }
}
