//! End-to-end trace-driven testing: the threaded runtime trains a real
//! fleet under injected heterogeneity, narrates every control-plane
//! decision to a JSONL dump, and the invariant checker replays the dump
//! and asserts the paper's contracts — plus negative tests proving the
//! checker actually catches corrupted traces.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use partial_reduce::{read_jsonl, ControllerConfig, InvariantChecker, JsonlSink, TraceEvent};
use preduce_data::cifar10_like;
use preduce_models::zoo;
use preduce_trainer::{train_threaded_preduce_traced, ExperimentConfig};

fn config(n: usize) -> ExperimentConfig {
    let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
    c.num_workers = n;
    c
}

/// Four speed classes: ranks 0–3 fast … ranks 12–15 slowest. Enough skew
/// that groups regularly mix iteration numbers.
fn hetero_delays(n: usize) -> Vec<Duration> {
    (0..n)
        .map(|r| Duration::from_micros((r as u64 / 4) * 400))
        .collect()
}

fn trace_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("preduce-trace-replay");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Runs a traced N=16, P=4 threaded fleet and returns the replayed events.
fn run_and_read(ctl: ControllerConfig, name: &str) -> Vec<TraceEvent> {
    let n = ctl.num_workers;
    let path = trace_path(name);
    let sink = Arc::new(JsonlSink::create(&path).expect("create trace file"));
    let report = train_threaded_preduce_traced(&config(n), ctl, 6, &hetero_delays(n), sink.clone());
    sink.flush();
    assert_eq!(sink.write_errors(), 0);
    assert!(report.controller.expect("stats").groups_formed > 0);

    let events = read_jsonl(&path).expect("trace reads back");
    let _ = std::fs::remove_file(&path);
    events
}

#[test]
fn threaded_con_hetero_trace_replays_clean() {
    let events = run_and_read(ControllerConfig::constant(16, 4), "con.jsonl");
    assert!(matches!(events[0], TraceEvent::RunStarted { .. }));
    assert!(matches!(
        events.last(),
        Some(TraceEvent::RunFinished { .. })
    ));
    // Worker-side completions are part of the stream, so the checker runs
    // its strict in-flight accounting.
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::ReduceCompleted { .. })));
    let report = InvariantChecker::check(&events);
    assert!(report.is_clean(), "{report}");
    assert!(report.groups > 0);
}

#[test]
fn threaded_dyn_hetero_trace_replays_clean() {
    // The checker recomputes every DYN weight row from Eq. 9 and compares
    // elementwise, so a clean replay *is* the staleness-weighting check.
    let events = run_and_read(ControllerConfig::dynamic(16, 4), "dyn.jsonl");
    let report = InvariantChecker::check(&events);
    assert!(report.is_clean(), "{report}");
    assert!(report.groups > 0);
}

#[test]
fn corrupted_duplicate_member_is_flagged() {
    let mut events = run_and_read(ControllerConfig::constant(16, 4), "dup.jsonl");
    let target = events
        .iter_mut()
        .find(|e| matches!(e, TraceEvent::GroupFormed { .. }))
        .expect("at least one group");
    if let TraceEvent::GroupFormed { members, .. } = target {
        members[1] = members[0];
    }
    let report = InvariantChecker::check(&events);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("duplicate members")),
        "{report}"
    );
}

#[test]
fn corrupted_weight_row_is_flagged() {
    let mut events = run_and_read(ControllerConfig::constant(16, 4), "weights.jsonl");
    let target = events
        .iter_mut()
        .find(|e| matches!(e, TraceEvent::GroupFormed { .. }))
        .expect("at least one group");
    if let TraceEvent::GroupFormed { weights, .. } = target {
        // Still sums to 1, but no longer the CON-mandated uniform row.
        weights[0] += 0.1;
        weights[1] -= 0.1;
    }
    let report = InvariantChecker::check(&events);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("mode-prescribed")),
        "{report}"
    );
}

#[test]
fn sim_and_threaded_traces_share_the_vocabulary() {
    // The same checker consumes the simulator's trace: run the virtual-time
    // harness traced and replay it with zero violations.
    use partial_reduce::RingSink;
    use preduce_trainer::{run_experiment_traced, Strategy};

    let mut c = config(16);
    c.max_updates = 200;
    c.eval_every = 100;
    c.threshold = 0.999;
    for dynamic in [false, true] {
        let sink = Arc::new(RingSink::new(65536));
        let result = run_experiment_traced(Strategy::PReduce { p: 4, dynamic }, &c, sink.clone());
        assert!(result.updates > 0);
        assert_eq!(sink.dropped(), 0);
        let events = sink.snapshot();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::ReduceCompleted { .. })));
        let report = InvariantChecker::check(&events);
        assert!(report.is_clean(), "dynamic={dynamic}: {report}");
    }
}
