/root/repo/target/lint-scratch/target/debug/deps/passes-6cf11ab284123ad7.d: tests/passes.rs tests/fixtures/panic_path_bad.rs tests/fixtures/panic_path_good.rs tests/fixtures/lock_discipline_bad.rs tests/fixtures/lock_discipline_good.rs tests/fixtures/weights_bad.rs tests/fixtures/weights_good.rs tests/fixtures/trace_coverage_bad.rs tests/fixtures/trace_coverage_good.rs tests/fixtures/event_conformance_trace_bad.rs tests/fixtures/event_conformance_emit_bad.rs tests/fixtures/event_conformance_check_bad.rs tests/fixtures/event_conformance_trace_good.rs tests/fixtures/event_conformance_emit_good.rs tests/fixtures/event_conformance_check_good.rs tests/fixtures/unsafe_audit_bad.rs tests/fixtures/unsafe_audit_good.rs tests/fixtures/reactor_blocking_bad.rs tests/fixtures/reactor_blocking_good.rs tests/fixtures/allow_without_reason.rs

/root/repo/target/lint-scratch/target/debug/deps/passes-6cf11ab284123ad7: tests/passes.rs tests/fixtures/panic_path_bad.rs tests/fixtures/panic_path_good.rs tests/fixtures/lock_discipline_bad.rs tests/fixtures/lock_discipline_good.rs tests/fixtures/weights_bad.rs tests/fixtures/weights_good.rs tests/fixtures/trace_coverage_bad.rs tests/fixtures/trace_coverage_good.rs tests/fixtures/event_conformance_trace_bad.rs tests/fixtures/event_conformance_emit_bad.rs tests/fixtures/event_conformance_check_bad.rs tests/fixtures/event_conformance_trace_good.rs tests/fixtures/event_conformance_emit_good.rs tests/fixtures/event_conformance_check_good.rs tests/fixtures/unsafe_audit_bad.rs tests/fixtures/unsafe_audit_good.rs tests/fixtures/reactor_blocking_bad.rs tests/fixtures/reactor_blocking_good.rs tests/fixtures/allow_without_reason.rs

tests/passes.rs:
tests/fixtures/panic_path_bad.rs:
tests/fixtures/panic_path_good.rs:
tests/fixtures/lock_discipline_bad.rs:
tests/fixtures/lock_discipline_good.rs:
tests/fixtures/weights_bad.rs:
tests/fixtures/weights_good.rs:
tests/fixtures/trace_coverage_bad.rs:
tests/fixtures/trace_coverage_good.rs:
tests/fixtures/event_conformance_trace_bad.rs:
tests/fixtures/event_conformance_emit_bad.rs:
tests/fixtures/event_conformance_check_bad.rs:
tests/fixtures/event_conformance_trace_good.rs:
tests/fixtures/event_conformance_emit_good.rs:
tests/fixtures/event_conformance_check_good.rs:
tests/fixtures/unsafe_audit_bad.rs:
tests/fixtures/unsafe_audit_good.rs:
tests/fixtures/reactor_blocking_bad.rs:
tests/fixtures/reactor_blocking_good.rs:
tests/fixtures/allow_without_reason.rs:

# env-dep:CARGO_BIN_EXE_preduce-analysis=/root/repo/target/lint-scratch/target/debug/preduce-analysis
# env-dep:CARGO_MANIFEST_DIR=/root/repo/target/lint-scratch
