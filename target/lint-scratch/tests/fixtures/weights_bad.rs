//! Known-bad fixture for the `weight-stochasticity` pass: two hand-rolled
//! weight rows that bypass `core::weights`.

pub fn uniform_row(p: usize) -> Vec<f32> {
    vec![1.0 / p as f32; p]
}

pub fn assignment(group: Vec<usize>) -> (Vec<usize>, Vec<f32>) {
    let weights = vec![1.0; group.len()];
    (group, weights)
}
