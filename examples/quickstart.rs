//! Quickstart: train the same heterogeneous workload with All-Reduce and
//! with partial reduce, and compare the paper's three metrics.
//!
//! Run: `cargo run --release --example quickstart`

use preduce::data::cifar10_like;
use preduce::models::zoo;
use preduce::trainer::{run_experiment, ExperimentConfig, Strategy};

fn main() {
    // 8 workers; 3 of them share one GPU (the paper's HL = 3 setting).
    let mut config = ExperimentConfig::table1(zoo::resnet34(), cifar10_like(), 3);
    config.threshold = 0.60; // a modest target so the demo finishes fast
    config.max_updates = 4_000;
    config.sgd.lr = 0.05;

    println!("workload: resnet34 analog on cifar10-like, N = 8, HL = 3");
    println!("target test accuracy: {:.0}%\n", config.threshold * 100.0);

    for strategy in [
        Strategy::AllReduce,
        Strategy::PReduce {
            p: 3,
            dynamic: false,
        },
        Strategy::PReduce {
            p: 3,
            dynamic: true,
        },
    ] {
        let r = run_experiment(strategy, &config);
        println!(
            "{:<22} run time {:>8.1}s | {:>5} updates | {:>7.3}s/update | acc {:.3}{}",
            r.strategy,
            r.run_time,
            r.updates,
            r.per_update_time(),
            r.final_accuracy,
            if r.converged {
                ""
            } else {
                "  (did not converge)"
            },
        );
    }

    println!("\nPartial reduce trades more (cheaper) updates for freedom from");
    println!("stragglers: its per-update time barely notices the shared GPU.");
}
