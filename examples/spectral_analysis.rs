//! Spectral-gap analysis as a library feature: predict how a cluster's
//! heterogeneity affects partial-reduce convergence *before* training,
//! by simulating only the group-formation process (milliseconds) and
//! feeding the measured ρ̄ into the Theorem 1 bound.
//!
//! Run: `cargo run --release --example spectral_analysis`

use preduce::partial_reduce::theory::{
    convergence_bound, lr_condition_holds, theorem_lr, TheoremInputs,
};
use preduce::partial_reduce::{
    expected_sync_matrix, spectral_gap, AggregationMode, Controller, ControllerConfig,
};
use preduce::simnet::{EventQueue, HeterogeneityModel, Jitter, SimTime, SpeedFleet};
use rand::{rngs::StdRng, SeedableRng};

/// Simulate the FIFO controller on a fleet and collect the formed groups.
fn observe_groups(
    mut fleet: Box<dyn HeterogeneityModel>,
    p: usize,
    rounds: usize,
) -> Vec<Vec<usize>> {
    let n = fleet.num_workers();
    let mut rng = StdRng::seed_from_u64(17);
    let mut controller = Controller::new(ControllerConfig {
        num_workers: n,
        group_size: p,
        mode: AggregationMode::Constant,
        history_window: None,
        frozen_avoidance: true,
    });
    let mut queue = EventQueue::new();
    for w in 0..n {
        let ct = fleet.compute_time(w, 1e9, SimTime::ZERO, &mut rng);
        queue.schedule(SimTime::new(ct), w);
    }
    let mut groups = Vec::new();
    while groups.len() < rounds {
        let (t, w) = queue.pop().expect("workers reschedule forever");
        controller.push_ready(w, 0);
        while let Some(d) = controller.try_form_group() {
            for &m in &d.group {
                let ct = fleet.compute_time(m, 1e9, t, &mut rng);
                queue.schedule(t + ct, m);
            }
            groups.push(d.group);
        }
    }
    groups
}

fn main() {
    let n = 8;
    let p = 3;
    println!("Predicting P-Reduce behaviour on two 8-worker clusters (P = {p}):\n");

    let scenarios: [(&str, Vec<f64>); 2] = [
        ("homogeneous", vec![1.0; 8]),
        (
            "heterogeneous (two workers 3x slower)",
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 3.0, 3.0],
        ),
    ];

    for (name, multipliers) in scenarios {
        let fleet = Box::new(SpeedFleet::new(
            multipliers,
            1e9,
            Jitter::LogNormal { sigma: 0.1 },
        ));
        let groups = observe_groups(fleet, p, 50_000);
        let e_w = expected_sync_matrix(n, &groups);
        let report = spectral_gap(&e_w).expect("symmetric");

        let inputs = TheoremInputs {
            num_workers: n,
            group_size: p,
            lipschitz: 1.0,
            sigma_sq: 0.5,
            initial_gap: 2.0,
            rho_bar: report.rho_bar,
        };
        let k = 2_000_000u64;
        let gamma = theorem_lr(n, p, 1.0, k);
        let bound = convergence_bound(&inputs, gamma, k);

        println!("{name}:");
        println!("  measured rho       = {:.4}", report.rho);
        println!("  rho_bar            = {:.3}", report.rho_bar);
        println!(
            "  lr condition holds = {}",
            lr_condition_holds(&inputs, gamma)
        );
        println!(
            "  Eq.8 bound @K={k} = {:.4} (SGD {:.4} + network {:.6})\n",
            bound.total(),
            bound.sgd_error,
            bound.network_error
        );
    }

    println!("The heterogeneous cluster's larger rho inflates only the");
    println!("network-error term — the paper's Fig. 4 story, quantified.");
}
