//! Residual blocks: `y = x + f(x)` for a dimension-preserving inner stack.
//!
//! Gives the model zoo architecturally-honest ResNet analogs (skip
//! connections genuinely change optimization dynamics) while remaining a
//! plain [`Layer`], so distributed strategies need no special handling.

use preduce_tensor::Tensor;

use crate::layer::Layer;

/// A residual block wrapping an inner layer stack.
pub struct Residual {
    inner: Vec<Box<dyn Layer>>,
}

impl Clone for Residual {
    fn clone(&self) -> Self {
        Residual {
            inner: self.inner.clone(),
        }
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Residual({} inner layers)", self.inner.len())
    }
}

impl Residual {
    /// Wraps `inner` in a skip connection. The inner stack must preserve
    /// the feature dimension (validated at spec level and again at
    /// runtime by the addition).
    ///
    /// # Panics
    /// Panics if `inner` is empty.
    pub fn new(inner: Vec<Box<dyn Layer>>) -> Self {
        assert!(!inner.is_empty(), "empty residual block");
        Residual { inner }
    }
}

impl Layer for Residual {
    fn name(&self) -> &'static str {
        "residual"
    }

    fn set_training(&mut self, training: bool) {
        for l in &mut self.inner {
            l.set_training(training);
        }
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for l in &mut self.inner {
            h = l.forward(&h);
        }
        assert_eq!(
            h.shape(),
            x.shape(),
            "residual inner stack changed shape: {} -> {}",
            x.shape(),
            h.shape()
        );
        h.add_assign(x);
        h
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for l in self.inner.iter_mut().rev() {
            g = l.backward(&g);
        }
        // Skip path adds the incoming gradient directly.
        g.add_assign(grad);
        g
    }

    fn params(&self) -> Vec<&Tensor> {
        self.inner.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.inner.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn grads(&self) -> Vec<&Tensor> {
        self.inner.iter().flat_map(|l| l.grads()).collect()
    }

    fn zero_grads(&mut self) {
        for l in &mut self.inner {
            l.zero_grads();
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    fn block(d: usize) -> Residual {
        Residual::new(vec![
            Box::new(Dense::new(&mut rng(), d, d)),
            Box::new(Relu::new()),
            Box::new(Dense::new(&mut rng(), d, d)),
        ])
    }

    #[test]
    fn forward_adds_skip_path() {
        // Zero the inner weights: block becomes the identity.
        let mut b = block(4);
        for p in b.params_mut() {
            p.fill_zero();
        }
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], [1, 4]).unwrap();
        assert_eq!(b.forward(&x), x);
    }

    #[test]
    fn param_plumbing_covers_inner_layers() {
        let b = block(4);
        // Two dense layers: 2 weights + 2 biases.
        assert_eq!(b.params().len(), 4);
        assert_eq!(b.param_count(), 2 * (4 * 4 + 4));
    }

    #[test]
    fn gradient_check_through_skip() {
        let mut b = block(3);
        let mut x = Tensor::from_vec(vec![0.4, -0.9, 1.2, 0.1, 0.8, -0.3], [2, 3]).unwrap();
        let y = b.forward(&x);
        b.zero_grads();
        let dx = b.backward(&Tensor::ones(y.shape().clone()));

        let eps = 1e-3f32;
        for i in 0..6 {
            let orig = x.as_slice()[i];
            x.as_mut_slice()[i] = orig + eps;
            let hi: f64 = b.forward(&x).sum();
            x.as_mut_slice()[i] = orig - eps;
            let lo: f64 = b.forward(&x).sum();
            x.as_mut_slice()[i] = orig;
            let numeric = ((hi - lo) / (2.0 * eps as f64)) as f32;
            assert!(
                (dx.as_slice()[i] - numeric).abs() < 1e-2,
                "dx[{i}]: {} vs {numeric}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "changed shape")]
    fn rejects_dimension_changing_inner_stack() {
        let mut b = Residual::new(vec![Box::new(Dense::new(&mut rng(), 4, 2))]);
        b.forward(&Tensor::ones([1, 4]));
    }
}
