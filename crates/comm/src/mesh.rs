//! The multi-process data plane: group weighted averages between worker
//! *processes*.
//!
//! In-process fleets run their group collective over [`Endpoint`]
//! channels ([`crate::collectives::weighted_average`]). Worker processes
//! have no shared memory, so each binds an ephemeral data listener
//! ([`MeshEndpoint::bind`]), announces it in the control-plane hello,
//! and receives the full [`crate::control::FleetRoster`] once the fleet
//! is assembled. A group reduce then runs star-shaped: the first member
//! of the assignment (`group[0]`) is the leader; every other member
//! dials the leader's listener, streams its parameters, and reads back
//! the weighted average. The controller never touches this plane — it
//! only names the group (paper §4: model data never flows through the
//! message queue).
//!
//! The leader reduces as a *chunked overlap pipeline* (DESIGN.md §13):
//! it walks the model in [`collectives::PIPELINE_CHUNK`]-element
//! segments, folding each member's segment bytes into the accumulator
//! while the members' later segments are still in flight on their
//! sockets. TCP is a byte stream, so chunking is invisible on the wire
//! and purely a leader-local strategy ([`MeshEndpoint::set_chunk_elems`]
//! tunes it; `usize::MAX` recovers the monolithic star). Accumulation
//! stays in group-position order per element, so every segment size
//! produces bitwise-identical averages.
//!
//! The [`GroupAverager`] trait abstracts over both planes so the
//! runtime's `PartialReducer` is substrate-agnostic.
//!
//! Wire format (binary, not JSON — payloads are whole parameter
//! vectors): request `[base_tag u64 BE][rank u32 BE][len u32 BE][len ×
//! f32 LE]`, response `[base_tag u64 BE][len u32 BE][len × f32 LE]`,
//! where `len` counts elements. The `base_tag` check rejects frames
//! from a stale or misdirected reduce.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use crate::collectives;
use crate::endpoint::Endpoint;
use crate::error::CommError;
use crate::Result;

/// Overall budget for one group reduce on the mesh (slowest member
/// connect + transfer both ways).
pub const DATA_TIMEOUT: Duration = Duration::from_secs(30);

/// Largest accepted data payload, in elements (256M floats = 1 GiB);
/// anything larger indicates a corrupt length field.
const MAX_ELEMS: u32 = 1 << 28;

/// A group weighted average over some transport: the in-process
/// [`Endpoint`] collective or the process-level [`MeshEndpoint`] star.
/// `weights` aligns with `group`; on return `data` holds the group's
/// weighted average on every member.
pub trait GroupAverager: Send {
    /// Runs the weighted average for `group` under `base_tag`.
    ///
    /// # Errors
    /// Transport-specific [`CommError`]s; on error `data` may hold the
    /// member's own (possibly pre-scaled) parameters, and the caller is
    /// expected to degrade to its local model.
    fn group_weighted_average(
        &mut self,
        group: &[usize],
        base_tag: u64,
        data: &mut [f32],
        weights: &[f32],
    ) -> Result<()>;
}

impl GroupAverager for Endpoint {
    fn group_weighted_average(
        &mut self,
        group: &[usize],
        base_tag: u64,
        data: &mut [f32],
        weights: &[f32],
    ) -> Result<()> {
        collectives::chunked_weighted_average(self, group, base_tag, data, weights)
    }
}

/// One worker process's data-plane endpoint: an ephemeral listener for
/// reduces it leads, plus the roster of every peer's listener for
/// reduces it joins.
#[derive(Debug)]
pub struct MeshEndpoint {
    rank: usize,
    listener: TcpListener,
    local_addr: SocketAddr,
    roster: Vec<SocketAddr>,
    io_timeout: Duration,
    /// Elements per pipeline segment for the leader's chunked reduce
    /// ([`MeshEndpoint::set_chunk_elems`]).
    chunk_elems: usize,
}

fn gone(peer: usize) -> CommError {
    CommError::Disconnected { peer }
}

fn write_bytes(stream: &mut TcpStream, bytes: &[u8], peer: usize) -> Result<()> {
    stream.write_all(bytes).map_err(|_| gone(peer))
}

fn read_bytes(stream: &mut TcpStream, buf: &mut [u8], peer: usize) -> Result<()> {
    stream.read_exact(buf).map_err(|_| gone(peer))
}

fn bytes_to_floats(bytes: &[u8], out: &mut [f32]) -> Result<()> {
    if bytes.len() != out.len() * 4 {
        return Err(CommError::PayloadMismatch {
            expected: out.len() * 4,
            actual: bytes.len(),
        });
    }
    for (chunk, slot) in bytes.chunks_exact(4).zip(out.iter_mut()) {
        let arr: [u8; 4] = chunk.try_into().map_err(|_| CommError::MalformedFrame {
            detail: "short float chunk in data frame".into(),
        })?;
        *slot = f32::from_le_bytes(arr);
    }
    Ok(())
}

/// Applies blocking mode plus read/write timeouts to a data socket.
fn configure_data(stream: &TcpStream, timeout: Duration, peer: usize) -> Result<()> {
    stream.set_nonblocking(false).map_err(|_| gone(peer))?;
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|_| stream.set_write_timeout(Some(timeout)))
        .map_err(|_| gone(peer))
}

impl MeshEndpoint {
    /// Binds an ephemeral data listener for `rank` on `addr` (use port
    /// 0 — the chosen address travels to peers via the fleet roster).
    ///
    /// # Errors
    /// [`CommError::Disconnected`] if the listener cannot come up.
    pub fn bind(rank: usize, addr: &str) -> Result<Self> {
        let listener = TcpListener::bind(addr).map_err(|_| gone(rank))?;
        let local_addr = listener.local_addr().map_err(|_| gone(rank))?;
        // The accept loop polls non-blocking under a deadline so a
        // reduce cannot hang on a member that died before dialing in.
        listener.set_nonblocking(true).map_err(|_| gone(rank))?;
        Ok(MeshEndpoint {
            rank,
            listener,
            local_addr,
            roster: Vec::new(),
            io_timeout: DATA_TIMEOUT,
            chunk_elems: collectives::PIPELINE_CHUNK,
        })
    }

    /// The bound listener address to announce in the control-plane
    /// hello.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Overrides the per-reduce I/O budget (tests use short budgets).
    pub fn set_io_timeout(&mut self, timeout: Duration) {
        self.io_timeout = timeout;
    }

    /// Overrides the pipeline segment size in elements (default
    /// [`collectives::PIPELINE_CHUNK`]). `usize::MAX` degenerates to the
    /// monolithic star — one segment spanning the whole model — which the
    /// kernel bench uses as its baseline. The knob is leader-local: the
    /// wire bytes are identical at any segment size, so members need no
    /// coordination.
    ///
    /// # Panics
    /// Panics if `chunk_elems == 0`.
    pub fn set_chunk_elems(&mut self, chunk_elems: usize) {
        assert!(chunk_elems > 0, "segment size must be positive");
        self.chunk_elems = chunk_elems;
    }

    /// Installs the fleet roster (every rank's data address, from the
    /// controller's [`crate::control::FleetRoster`]).
    ///
    /// # Errors
    /// [`CommError::InvalidGroup`] if an address does not parse.
    pub fn set_roster(&mut self, data_addrs: &[String]) -> Result<()> {
        let mut roster = Vec::with_capacity(data_addrs.len());
        for (rank, addr) in data_addrs.iter().enumerate() {
            let parsed = addr.parse::<SocketAddr>().map_err(|_| {
                CommError::InvalidGroup(format!("unparseable data address for rank {rank}: {addr}"))
            })?;
            roster.push(parsed);
        }
        self.roster = roster;
        Ok(())
    }

    fn accept_one(&self, deadline: Instant) -> Result<TcpStream> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    configure_data(&stream, self.io_timeout, self.rank)?;
                    return Ok(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(CommError::Timeout {
                            peer: usize::MAX,
                            tag: 0,
                        });
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(gone(self.rank)),
            }
        }
    }

    /// Leader role, run as a chunked overlap pipeline.
    ///
    /// Phase 1 accepts every member's connection and validates its
    /// header only. Phase 2 walks the model in `chunk_elems`-element
    /// segments: for each segment it reads each member's bytes in
    /// group-position order and folds them into the accumulator —
    /// so the reduction arithmetic of segment `c` overlaps the
    /// transport of segments `c+1, c+2, …`, which the members have
    /// already written into their sockets. Phase 3 streams the averaged
    /// model back. Peak scratch is one segment plus the result buffer
    /// (`O(N + chunk)` instead of the monolithic collector's `O(P·N)`).
    ///
    /// Per element, contributions accumulate in group-position order
    /// starting from zero regardless of segment size, so any
    /// `chunk_elems` produces bitwise-identical results (the monolithic
    /// star is the `usize::MAX` special case).
    fn lead(
        &mut self,
        group: &[usize],
        base_tag: u64,
        data: &mut [f32],
        weights: &[f32],
    ) -> Result<()> {
        let deadline = Instant::now() + self.io_timeout;
        let own = group.iter().position(|&g| g == self.rank).ok_or_else(|| {
            CommError::InvalidGroup(format!("leader rank {} not in group {group:?}", self.rank))
        })?;

        // Phase 1: accept and identify every member (headers only).
        let mut streams: Vec<Option<(TcpStream, usize)>> = (0..group.len()).map(|_| None).collect();
        let mut connected = 0usize;
        while connected + 1 < group.len() {
            let mut stream = self.accept_one(deadline)?;
            let mut tag_buf = [0u8; 8];
            read_bytes(&mut stream, &mut tag_buf, self.rank)?;
            let tag = u64::from_be_bytes(tag_buf);
            if tag != base_tag {
                return Err(CommError::InvalidGroup(format!(
                    "data frame for tag {tag} arrived during reduce {base_tag}"
                )));
            }
            let mut rank_buf = [0u8; 4];
            read_bytes(&mut stream, &mut rank_buf, self.rank)?;
            let sender = u32::from_be_bytes(rank_buf) as usize;
            let mut len_buf = [0u8; 4];
            read_bytes(&mut stream, &mut len_buf, sender)?;
            let len = u32::from_be_bytes(len_buf);
            if len >= MAX_ELEMS {
                return Err(CommError::MalformedFrame {
                    detail: format!("oversized data frame ({len} elements)"),
                });
            }
            if len as usize != data.len() {
                return Err(CommError::PayloadMismatch {
                    expected: data.len(),
                    actual: len as usize,
                });
            }
            let pos = group.iter().position(|&g| g == sender).ok_or_else(|| {
                CommError::InvalidGroup(format!("rank {sender} dialed into group {group:?}"))
            })?;
            let slot = streams
                .get_mut(pos)
                .ok_or_else(|| CommError::InvalidGroup(format!("position {pos} out of group")))?;
            if pos == own || slot.is_some() {
                return Err(CommError::InvalidGroup(format!(
                    "duplicate contribution from rank {sender}"
                )));
            }
            *slot = Some((stream, sender));
            connected += 1;
        }

        // Phase 2: chunked reduce, contributions in group-position order.
        let len = data.len();
        let chunk = self.chunk_elems.min(len.max(1));
        let mut result = vec![0f32; len];
        let mut byte_buf = vec![0u8; chunk * 4];
        let mut float_buf = vec![0f32; chunk];
        let mut start = 0usize;
        while start < len {
            let end = len.min(start + chunk);
            let n = end - start;
            debug_assert!(n > 0 && n <= chunk, "segment bounds");
            for (pos, &w) in weights.iter().enumerate() {
                if pos == own {
                    for (r, x) in result[start..end].iter_mut().zip(data[start..end].iter()) {
                        *r += w * x;
                    }
                    continue;
                }
                let Some((stream, sender)) = streams.get_mut(pos).and_then(Option::as_mut) else {
                    return Err(CommError::InvalidGroup(
                        "missing contribution after collection".into(),
                    ));
                };
                read_bytes(stream, &mut byte_buf[..n * 4], *sender)?;
                bytes_to_floats(&byte_buf[..n * 4], &mut float_buf[..n])?;
                for (r, x) in result[start..end].iter_mut().zip(float_buf[..n].iter()) {
                    *r += w * x;
                }
            }
            start = end;
        }

        // Phase 3: stream the average back, one member at a time.
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(&base_tag.to_be_bytes());
        header.extend_from_slice(&(len as u32).to_be_bytes());
        for entry in streams.iter_mut() {
            let Some((stream, member)) = entry.as_mut() else {
                continue;
            };
            write_bytes(stream, &header, *member)?;
            let mut s = 0usize;
            while s < len {
                let e = len.min(s + chunk);
                let nb = (e - s) * 4;
                debug_assert!(nb <= byte_buf.len(), "segment bounds");
                for (b, x) in byte_buf[..nb].chunks_exact_mut(4).zip(result[s..e].iter()) {
                    b.copy_from_slice(&x.to_le_bytes());
                }
                write_bytes(stream, &byte_buf[..nb], *member)?;
                s = e;
            }
        }
        data.copy_from_slice(&result);
        Ok(())
    }

    /// Member role: stream parameters to the leader, read back the
    /// average. Payload bytes go out (and come back) in segment-size
    /// batches — the wire bytes are identical to a single frame, the
    /// batching only bounds the conversion scratch to one segment.
    fn join(&mut self, leader: usize, base_tag: u64, data: &mut [f32]) -> Result<()> {
        let addr =
            self.roster.get(leader).copied().ok_or_else(|| {
                CommError::InvalidGroup(format!("no roster entry for rank {leader}"))
            })?;
        let mut stream =
            TcpStream::connect_timeout(&addr, self.io_timeout).map_err(|_| gone(leader))?;
        configure_data(&stream, self.io_timeout, leader)?;
        let len = data.len();
        let chunk = self.chunk_elems.min(len.max(1));
        let mut byte_buf = vec![0u8; chunk * 4];

        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(&base_tag.to_be_bytes());
        header.extend_from_slice(&(self.rank as u32).to_be_bytes());
        header.extend_from_slice(&(len as u32).to_be_bytes());
        write_bytes(&mut stream, &header, leader)?;
        let mut s = 0usize;
        while s < len {
            let e = len.min(s + chunk);
            let nb = (e - s) * 4;
            debug_assert!(nb <= byte_buf.len(), "segment bounds");
            for (b, x) in byte_buf[..nb].chunks_exact_mut(4).zip(data[s..e].iter()) {
                b.copy_from_slice(&x.to_le_bytes());
            }
            write_bytes(&mut stream, &byte_buf[..nb], leader)?;
            s = e;
        }

        let mut tag_buf = [0u8; 8];
        read_bytes(&mut stream, &mut tag_buf, leader)?;
        let tag = u64::from_be_bytes(tag_buf);
        if tag != base_tag {
            return Err(CommError::InvalidGroup(format!(
                "response for tag {tag} during reduce {base_tag}"
            )));
        }
        let mut len_buf = [0u8; 4];
        read_bytes(&mut stream, &mut len_buf, leader)?;
        let got = u32::from_be_bytes(len_buf);
        if got as usize != len {
            return Err(CommError::PayloadMismatch {
                expected: len,
                actual: got as usize,
            });
        }
        let mut s = 0usize;
        while s < len {
            let e = len.min(s + chunk);
            let nb = (e - s) * 4;
            debug_assert!(nb <= byte_buf.len(), "segment bounds");
            read_bytes(&mut stream, &mut byte_buf[..nb], leader)?;
            bytes_to_floats(&byte_buf[..nb], &mut data[s..e])?;
            s = e;
        }
        Ok(())
    }
}

impl GroupAverager for MeshEndpoint {
    fn group_weighted_average(
        &mut self,
        group: &[usize],
        base_tag: u64,
        data: &mut [f32],
        weights: &[f32],
    ) -> Result<()> {
        if group.is_empty() || weights.len() != group.len() {
            return Err(CommError::InvalidGroup(format!(
                "group of {} with {} weights",
                group.len(),
                weights.len()
            )));
        }
        let Some(&leader) = group.first() else {
            return Err(CommError::InvalidGroup("empty group".into()));
        };
        if group.len() == 1 {
            // Singleton flush: the weighted average of one member.
            let w = weights.first().copied().unwrap_or(1.0);
            for d in data.iter_mut() {
                *d *= w;
            }
            return Ok(());
        }
        if leader == self.rank {
            self.lead(group, base_tag, data, weights)
        } else if group.contains(&self.rank) {
            self.join(leader, base_tag, data)
        } else {
            Err(CommError::InvalidGroup(format!(
                "rank {} not in group {group:?}",
                self.rank
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> (Vec<MeshEndpoint>, Vec<String>) {
        let eps: Vec<MeshEndpoint> = (0..n)
            .map(|r| MeshEndpoint::bind(r, "127.0.0.1:0").unwrap())
            .collect();
        let addrs: Vec<String> = eps.iter().map(|e| e.local_addr().to_string()).collect();
        (eps, addrs)
    }

    #[test]
    fn star_reduce_matches_weighted_average() {
        let (mut eps, addrs) = fleet(3);
        for ep in &mut eps {
            ep.set_roster(&addrs).unwrap();
        }
        let group = vec![1usize, 0, 2];
        let weights = vec![0.5f32, 0.25, 0.25];
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                let group = group.clone();
                let weights = weights.clone();
                thread::spawn(move || {
                    let mut data = vec![ep.rank() as f32 + 1.0; 4];
                    ep.group_weighted_average(&group, 7, &mut data, &weights)
                        .unwrap();
                    data
                })
            })
            .collect();
        // Expected: 0.5*w1 + 0.25*w0 + 0.25*w2 = 0.5*2 + 0.25*1 + 0.25*3 = 2.0
        for h in handles {
            let data = h.join().unwrap();
            for x in data {
                assert!((x - 2.0).abs() < 1e-6, "{x}");
            }
        }
    }

    /// Runs one group average over a fresh fleet with the given segment
    /// size on every endpoint; returns each rank's resulting vector.
    fn run_group_average(n: usize, chunk_elems: usize, len: usize) -> Vec<Vec<f32>> {
        let (mut eps, addrs) = fleet(n);
        for ep in &mut eps {
            ep.set_roster(&addrs).unwrap();
            ep.set_chunk_elems(chunk_elems);
        }
        let group: Vec<usize> = (0..n).collect();
        let weights = vec![1.0 / n as f32; n];
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                let group = group.clone();
                let weights = weights.clone();
                thread::spawn(move || {
                    // Non-representable values make ordering observable.
                    let mut data: Vec<f32> = (0..len)
                        .map(|i| 0.1 + i as f32 * 0.3 + ep.rank() as f32 * 0.7)
                        .collect();
                    ep.group_weighted_average(&group, 11, &mut data, &weights)
                        .unwrap();
                    data
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn chunked_star_is_bitwise_identical_to_monolithic() {
        // 1003 elements with a 64-element segment: 16 segments, uneven
        // tail. The monolithic star is chunk = usize::MAX.
        let chunked = run_group_average(3, 64, 1003);
        let mono = run_group_average(3, usize::MAX, 1003);
        for (c, m) in chunked.iter().zip(mono.iter()) {
            assert_eq!(c.len(), m.len());
            for (a, b) in c.iter().zip(m.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // And every member agrees with the leader.
        for r in &chunked[1..] {
            for (a, b) in chunked[0].iter().zip(r.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn tiny_segments_still_average_correctly() {
        // Segment of 1 element exercises the pipeline at maximum depth.
        let results = run_group_average(2, 1, 7);
        for r in results {
            for (i, v) in r.iter().enumerate() {
                let expect = (0.1 + i as f32 * 0.3) + 0.7 / 2.0;
                assert!((v - expect).abs() < 1e-5, "idx {i}: {v} vs {expect}");
            }
        }
    }

    #[test]
    fn member_not_in_group_is_rejected() {
        let (mut eps, addrs) = fleet(2);
        let ep = &mut eps[1];
        ep.set_roster(&addrs).unwrap();
        let mut data = vec![1.0f32];
        let r = ep.group_weighted_average(&[0, 2], 0, &mut data, &[0.5, 0.5]);
        assert!(matches!(r, Err(CommError::InvalidGroup(_))), "{r:?}");
    }

    #[test]
    fn singleton_flush_scales_in_place() {
        let (mut eps, addrs) = fleet(1);
        eps[0].set_roster(&addrs).unwrap();
        let mut data = vec![2.0f32, 4.0];
        eps[0]
            .group_weighted_average(&[0], 3, &mut data, &[1.0])
            .unwrap();
        assert_eq!(data, vec![2.0, 4.0]);
    }

    #[test]
    fn dead_member_times_out_the_leader() {
        let (mut eps, addrs) = fleet(2);
        let mut leader = eps.remove(0);
        leader.set_roster(&addrs).unwrap();
        leader.set_io_timeout(Duration::from_millis(100));
        // Member never dials in.
        let mut data = vec![1.0f32; 2];
        let r = leader.group_weighted_average(&[0, 1], 5, &mut data, &[0.5, 0.5]);
        assert!(
            matches!(r, Err(CommError::Timeout { .. })),
            "leader must not hang: {r:?}"
        );
    }

    #[test]
    fn payload_length_mismatch_is_typed() {
        let (mut eps, addrs) = fleet(2);
        for ep in &mut eps {
            ep.set_roster(&addrs).unwrap();
            ep.set_io_timeout(Duration::from_secs(2));
        }
        let mut member = eps.pop().unwrap();
        let mut leader = eps.pop().unwrap();
        let m = thread::spawn(move || {
            let mut data = vec![1.0f32; 3]; // leader expects 2
            member.group_weighted_average(&[0, 1], 9, &mut data, &[0.5, 0.5])
        });
        let mut data = vec![1.0f32; 2];
        let r = leader.group_weighted_average(&[0, 1], 9, &mut data, &[0.5, 0.5]);
        assert!(matches!(r, Err(CommError::PayloadMismatch { .. })), "{r:?}");
        let _ = m.join().unwrap();
    }
}
