//! Process-level end-to-end suite (DESIGN.md §12): a real `preduce
//! controller` process serving real `preduce worker` child processes
//! over TCP on loopback.
//!
//! Flake hardening baked into the harness:
//! * every listener binds port 0; the controller's `listening on ADDR`
//!   line propagates the chosen port to the workers;
//! * every child is watched by a wall-clock guard ([`Proc::wait`] /
//!   [`Proc::await_line`]) that kills the process and dumps its captured
//!   stdout/stderr instead of letting the test hang.
//!
//! Run these with `--test-threads=1` (the CI smoke job does): each test
//! spawns a 5-process fleet and the box should not oversubscribe.

use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use partial_reduce::NullSink;
use preduce_cli::args::Args;
use preduce_cli::commands::config_from_args;
use preduce_trainer::engine::{self, Backend};
use preduce_trainer::strategy::Strategy;

/// The binary under test, built by cargo for this test run.
const BIN: &str = env!("CARGO_BIN_EXE_preduce");
/// Budget for startup events (bind + handshake).
const STARTUP: Duration = Duration::from_secs(30);
/// Budget for a full run to completion.
const RUN: Duration = Duration::from_secs(120);
/// Fleet size for every test.
const N: usize = 4;

/// A spawned child with captured output and hang guards.
struct Proc {
    name: String,
    child: Child,
    lines: Receiver<String>,
    stdout: Arc<Mutex<String>>,
    stderr: Arc<Mutex<String>>,
    readers: Vec<thread::JoinHandle<()>>,
}

impl Proc {
    fn spawn(name: &str, args: &[&str]) -> Proc {
        let mut child = Command::new(BIN)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {name} ({BIN}): {e}"));
        let (tx, lines) = mpsc::channel();
        let stdout = Arc::new(Mutex::new(String::new()));
        let stderr = Arc::new(Mutex::new(String::new()));

        let pipe = child.stdout.take().expect("piped stdout");
        let sink = Arc::clone(&stdout);
        let out_reader = thread::spawn(move || {
            for line in BufReader::new(pipe).lines().map_while(|l| l.ok()) {
                {
                    let mut s = sink.lock().unwrap();
                    s.push_str(&line);
                    s.push('\n');
                }
                let _ = tx.send(line);
            }
        });
        let pipe = child.stderr.take().expect("piped stderr");
        let sink = Arc::clone(&stderr);
        let err_reader = thread::spawn(move || {
            let mut buf = String::new();
            let _ = BufReader::new(pipe).read_to_string(&mut buf);
            *sink.lock().unwrap() = buf;
        });

        Proc {
            name: name.to_string(),
            child,
            lines,
            stdout,
            stderr,
            readers: vec![out_reader, err_reader],
        }
    }

    /// Captured output so far, for failure dumps.
    fn dump(&self) -> String {
        format!(
            "--- {n} stdout ---\n{o}--- {n} stderr ---\n{e}",
            n = self.name,
            o = self.stdout.lock().unwrap(),
            e = self.stderr.lock().unwrap()
        )
    }

    /// Returns the first stdout line matching `pred`, or kills the
    /// process and fails the test with its output after `timeout`.
    fn await_line(&mut self, pred: impl Fn(&str) -> bool, timeout: Duration) -> String {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.lines.recv_timeout(left) {
                Ok(l) if pred(&l) => return l,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
        panic!(
            "{}: expected line never arrived within {timeout:?}\n{}",
            self.name,
            self.dump()
        );
    }

    /// Waits for exit within `timeout` (the hang guard: kill + dump on
    /// expiry). Returns (exited cleanly, full stdout, full dump).
    fn wait(mut self, timeout: Duration) -> (bool, String, String) {
        let deadline = Instant::now() + timeout;
        let status = loop {
            match self.child.try_wait().expect("try_wait") {
                Some(s) => break s,
                None if Instant::now() >= deadline => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    for r in self.readers.drain(..) {
                        let _ = r.join();
                    }
                    panic!("{} hung past {timeout:?}\n{}", self.name, self.dump());
                }
                None => thread::sleep(Duration::from_millis(25)),
            }
        };
        for r in self.readers.drain(..) {
            let _ = r.join();
        }
        let out = self.stdout.lock().unwrap().clone();
        let dump = self.dump();
        (status.success(), out, dump)
    }

    /// SIGKILLs the process (the fail-stop fault for the negative test).
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        for r in self.readers.drain(..) {
            let _ = r.join();
        }
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        // A test failure must not leak children into the CI box.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Parses `key=value` out of a status line like
/// `worker rank=0 iterations=7 accuracy=0.5123 degraded=0`.
fn field(line: &str, key: &str) -> f64 {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no `{key}=` in `{line}`"))
        .parse()
        .unwrap_or_else(|e| panic!("bad `{key}` in `{line}`: {e}"))
}

/// Fresh per-test scratch path (the OS tempdir outlives the test; names
/// are unique per process + label so `--test-threads=1` reruns are safe).
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("preduce-mp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(label)
}

/// Starts a controller on port 0 and returns (proc, bound address).
fn start_controller(name: &str, extra: &[&str]) -> (Proc, String) {
    let mut args = vec![
        "controller",
        "--listen",
        "127.0.0.1:0",
        "--workers",
        "4",
        "--p",
        "2",
        "--model",
        "resnet18",
    ];
    args.extend_from_slice(extra);
    let mut proc = Proc::spawn(name, &args);
    let line = proc.await_line(|l| l.starts_with("listening on "), STARTUP);
    let addr = line.trim_start_matches("listening on ").trim().to_string();
    addr.parse::<SocketAddr>()
        .unwrap_or_else(|e| panic!("unparseable listen address `{addr}`: {e}"));
    (proc, addr)
}

fn start_worker(rank: usize, addr: &str, iters: &str) -> Proc {
    let rank_s = rank.to_string();
    Proc::spawn(
        &format!("worker-{rank}"),
        &[
            "worker",
            "--connect",
            addr,
            "--rank",
            &rank_s,
            "--workers",
            "4",
            "--model",
            "resnet18",
            "--iters",
            iters,
        ],
    )
}

/// Runs `preduce trace --check` on a recorded trace as a separate
/// process, exactly as a user would.
fn check_trace(path: &std::path::Path) {
    let trace = path.to_str().expect("utf-8 trace path");
    let (ok, _out, dump) = Proc::spawn("trace-check", &["trace", "--check", trace]).wait(STARTUP);
    assert!(ok, "trace --check rejected {trace}\n{dump}");
}

/// The threaded-substrate accuracy for the same experiment: the golden
/// the process fleet must stay near (both substrates run the same driver
/// over the same deterministic fleet; only the transports differ).
fn threaded_golden(dynamic: bool, iters: u64) -> f64 {
    let args = Args::parse(["--model", "resnet18", "--workers", "4"]).expect("golden args");
    let mut config = config_from_args(&args).expect("golden config");
    config.threaded_iters = Some(iters);
    let run = engine::run(
        Strategy::PReduce { p: 2, dynamic },
        &config,
        Backend::Threaded,
        Arc::new(NullSink),
    );
    run.result.final_accuracy
}

/// One full fleet run: controller + 4 worker processes to completion.
/// Returns (per-rank accuracies, controller done-line, trace path).
fn run_fleet(label: &str, dynamic: bool) -> (Vec<f64>, String, PathBuf) {
    let trace = scratch(&format!("{label}.jsonl"));
    let trace_s = trace.to_str().expect("utf-8 trace path").to_string();
    let mut extra = vec!["--trace-out", trace_s.as_str()];
    if dynamic {
        extra.extend_from_slice(&["--dynamic", "true"]);
    }
    let (controller, addr) = start_controller(&format!("{label}-controller"), &extra);

    let workers: Vec<Proc> = (0..N).map(|r| start_worker(r, &addr, "6")).collect();
    let mut accuracies = vec![0.0; N];
    for w in workers {
        let name = w.name.clone();
        let (ok, out, dump) = w.wait(RUN);
        assert!(ok, "{name} exited nonzero\n{dump}");
        let line = out
            .lines()
            .find(|l| l.starts_with("worker rank="))
            .unwrap_or_else(|| panic!("{name} printed no report\n{dump}"));
        let rank = field(line, "rank") as usize;
        assert_eq!(
            field(line, "degraded") as u64,
            0,
            "clean run degraded: {line}"
        );
        assert!(field(line, "iterations") as u64 >= 6, "{line}");
        accuracies[rank] = field(line, "accuracy");
    }

    let (ok, out, dump) = controller.wait(RUN);
    assert!(ok, "controller exited nonzero\n{dump}");
    let done = out
        .lines()
        .find(|l| l.starts_with("controller done:"))
        .unwrap_or_else(|| panic!("controller printed no summary\n{dump}"))
        .to_string();
    (accuracies, done, trace)
}

#[test]
fn con_fleet_converges_and_trace_checks() {
    let (accuracies, done, trace) = run_fleet("mp-con", false);
    assert!(field(&done, "groups") > 0.0, "{done}");
    assert_eq!(field(&done, "evictions") as u64, 0, "{done}");

    let golden = threaded_golden(false, 6);
    for (rank, &acc) in accuracies.iter().enumerate() {
        assert!(
            (acc - golden).abs() < 0.2,
            "rank {rank}: process accuracy {acc} vs threaded golden {golden}"
        );
    }
    check_trace(&trace);
}

#[test]
fn dyn_fleet_converges_and_trace_checks() {
    let (accuracies, done, trace) = run_fleet("mp-dyn", true);
    assert!(field(&done, "groups") > 0.0, "{done}");

    let golden = threaded_golden(true, 6);
    for (rank, &acc) in accuracies.iter().enumerate() {
        assert!(
            (acc - golden).abs() < 0.2,
            "rank {rank}: process accuracy {acc} vs threaded golden {golden}"
        );
    }
    check_trace(&trace);
}

/// The negative path: one worker is SIGKILLed mid-run. The controller
/// must evict it (socket death surfaces as `ProcessDisconnected`, or the
/// heartbeat sweep catches it), the survivors must finish, and the
/// recorded trace must still satisfy every invariant.
#[test]
fn killed_worker_is_evicted_and_trace_stays_valid() {
    let trace = scratch("mp-kill.jsonl");
    let trace_s = trace.to_str().expect("utf-8 trace path").to_string();
    let (controller, addr) = start_controller(
        "kill-controller",
        &[
            "--trace-out",
            trace_s.as_str(),
            "--liveness-ms",
            "50",
            "--miss-threshold",
            "4",
        ],
    );

    let survivors: Vec<Proc> = (0..N - 1).map(|r| start_worker(r, &addr, "40")).collect();
    // The victim's budget is effectively infinite: only eviction ends it.
    let victim = start_worker(N - 1, &addr, "1000000");

    // Let the fleet assemble and trade a few rounds, then fail-stop the
    // victim. (If the kill ever landed before the victim's handshake,
    // the controller's accept would error out — a loud failure, not a
    // hang.)
    thread::sleep(Duration::from_secs(3));
    victim.kill();

    for s in survivors {
        let name = s.name.clone();
        let (ok, out, dump) = s.wait(RUN);
        assert!(ok, "{name} exited nonzero\n{dump}");
        // Survivors may degrade on rounds that grouped them with the
        // corpse; they must still complete their budget.
        let line = out
            .lines()
            .find(|l| l.starts_with("worker rank="))
            .unwrap_or_else(|| panic!("{name} printed no report\n{dump}"));
        assert!(field(line, "iterations") as u64 >= 40, "{line}");
    }

    let (ok, out, dump) = controller.wait(RUN);
    assert!(ok, "controller exited nonzero\n{dump}");
    let done = out
        .lines()
        .find(|l| l.starts_with("controller done:"))
        .unwrap_or_else(|| panic!("controller printed no summary\n{dump}"));
    assert!(
        field(done, "evictions") as u64 >= 1,
        "victim was never evicted: {done}"
    );

    let recorded = std::fs::read_to_string(&trace).expect("read trace");
    assert!(
        recorded.contains("ProcessDisconnected") || recorded.contains("HeartbeatMissed"),
        "no death evidence in trace"
    );
    assert!(recorded.contains("WorkerEvicted"), "no eviction in trace");
    check_trace(&trace);
}
