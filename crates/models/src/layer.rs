use preduce_tensor::Tensor;

/// A trainable (or stateless) network layer.
///
/// Layers own their parameters and gradient accumulators and cache whatever
/// forward-pass state their backward pass needs. `forward` then `backward`
/// must be called in matched pairs; `backward` *accumulates* into the stored
/// gradients so gradient accumulation across micro-batches works naturally
/// (call [`Layer::zero_grads`] between optimizer steps).
pub trait Layer: Send {
    /// Short human-readable layer name (for debugging and spec display).
    fn name(&self) -> &'static str;

    /// Switches between training and evaluation behaviour. Only layers
    /// with mode-dependent forward passes (e.g. dropout) override this;
    /// the default is a no-op.
    fn set_training(&mut self, _training: bool) {}

    /// Runs the layer on a `[batch, in_features]` activation tensor,
    /// returning `[batch, out_features]`.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Propagates `grad` (w.r.t. this layer's output) backward, accumulating
    /// parameter gradients and returning the gradient w.r.t. the input.
    ///
    /// # Panics
    /// Implementations panic if called before `forward`.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Immutable views of the layer's parameter tensors (possibly empty).
    fn params(&self) -> Vec<&Tensor>;

    /// Mutable views of the layer's parameter tensors (same order as
    /// [`Layer::params`]).
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Immutable views of the accumulated gradients (same order/shapes as
    /// [`Layer::params`]).
    fn grads(&self) -> Vec<&Tensor>;

    /// Resets all accumulated gradients to zero.
    fn zero_grads(&mut self);

    /// Total number of scalar parameters in this layer.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Clones the layer (parameters and gradients included) behind a box.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
