//! Structured event tracing for the P-Reduce control plane.
//!
//! The controller (Fig. 6), the threaded runtime, the virtual-time
//! simulator, and the TCP control plane all narrate their decisions as a
//! single stream of [`TraceEvent`]s — one event vocabulary covering both
//! harnesses, mirroring the "one implementation, two harnesses" design.
//! The stream serves two purposes:
//!
//! * **observability** — a post-mortem JSONL dump ([`JsonlSink`]) or a
//!   bounded in-memory ring ([`RingSink`]) of every scheduling decision;
//! * **trace-driven testing** — [`crate::invariants::InvariantChecker`]
//!   replays a trace and asserts the paper's contracts (group size,
//!   doubly-stochastic weights, fast-forward, frozen-group repair, …).
//!
//! Tracing is strictly pay-for-what-you-use: every emission site is gated
//! on [`TraceSink::enabled`], and the default [`NullSink`] reports
//! `false`, so the hot path ([`crate::Controller::try_form_group`])
//! performs no allocation and takes no lock when tracing is off.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::controller::ControllerConfig;
use preduce_comm::control::{ControlObserver, GroupAssignment};

/// One control-plane event.
///
/// Events are emitted in causal order per trace: all controller-side
/// events are totally ordered by the controller (single thread or single
/// event loop); worker-side [`TraceEvent::ReduceCompleted`] events
/// interleave, but always after the [`TraceEvent::GroupFormed`] that
/// assigned them and before the member's next
/// [`TraceEvent::SignalEnqueued`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A controller came up with this configuration. First event of every
    /// trace; the invariant checker reads `N`, `P`, and the aggregation
    /// mode from it.
    RunStarted {
        /// The controller configuration.
        config: ControllerConfig,
    },
    /// A ready signal entered the signal queue (Algorithm 2 lines 6–7).
    SignalEnqueued {
        /// Worker rank.
        worker: usize,
        /// The iteration number the worker reported.
        iteration: u64,
        /// Queue depth after the enqueue.
        queued: usize,
    },
    /// A ready signal from a departed worker was discarded.
    SignalRejected {
        /// Worker rank.
        worker: usize,
        /// The iteration number the worker reported.
        iteration: u64,
    },
    /// The group filter held the queue back: every queued signal sits in
    /// one frozen sync-graph component and a FIFO group would deepen the
    /// freeze (§4).
    GroupDeferred {
        /// Queue depth at the deferral.
        queued: usize,
        /// Workers still participating.
        active: usize,
    },
    /// A partial-reduce group was formed (Algorithm 2 lines 3–5).
    GroupFormed {
        /// 0-based sequence number of the group.
        sequence: u64,
        /// Member ranks in collective order.
        members: Vec<usize>,
        /// Iteration numbers the members reported, aligned with `members`.
        iterations: Vec<u64>,
        /// Aggregation weights, aligned with `members`; sums to 1.
        weights: Vec<f32>,
        /// The iteration number every member adopts (group max, §3.3.3).
        new_iteration: u64,
        /// Whether the group filter repaired a frozen schedule.
        repaired: bool,
    },
    /// The control plane delivered a group assignment to one worker
    /// (transport-level; emitted via [`SinkObserver`]).
    AssignmentSent {
        /// Destination worker rank.
        worker: usize,
        /// Member ranks of the assignment.
        members: Vec<usize>,
        /// Base tag for the group's collective.
        base_tag: u64,
    },
    /// A member finished its weighted group average (worker side in the
    /// threaded runtime; reduce application in the simulator).
    ReduceCompleted {
        /// The reporting member's rank.
        worker: usize,
        /// Member ranks of the completed group.
        members: Vec<usize>,
        /// The adopted iteration number.
        new_iteration: u64,
    },
    /// A worker left the computation.
    WorkerLeft {
        /// Worker rank.
        worker: usize,
        /// Workers still participating after the departure.
        active: usize,
        /// Whether a queued ready signal of the departing worker was
        /// purged from the signal queue.
        purged_signal: bool,
    },
    /// The signal queue was drained without forming groups (shutdown: the
    /// active fleet shrank below `P`).
    PendingDrained {
        /// The drained `(worker, iteration)` pairs, FIFO.
        signals: Vec<(usize, u64)>,
    },
    /// A singleton (local no-op) assignment was issued during drain-out.
    SingletonIssued {
        /// Worker rank.
        worker: usize,
        /// The worker's reported iteration (also the adopted one).
        iteration: u64,
    },
    /// A planned fault was applied to a worker (chaos runs only; see
    /// DESIGN.md §11). The label is the substrate-independent
    /// `FaultKind::label()` string (e.g. `crash@40`).
    FaultInjected {
        /// Worker rank the fault targets.
        worker: usize,
        /// Compact fault label, stable across substrates.
        fault: String,
        /// The worker's iteration when the fault took effect.
        iteration: u64,
    },
    /// A worker process completed the control-plane handshake of a
    /// multi-process fleet (see `preduce controller`). Emitted once per
    /// rank, before any of that worker's signals.
    ProcessJoined {
        /// Worker rank.
        worker: usize,
        /// Peer address of the worker's control connection.
        addr: String,
    },
    /// A worker process's control connection dropped — socket EOF, a
    /// hard error, or a desynchronized frame stream. The serving loop
    /// routes this through [`TraceEvent::WorkerEvicted`] immediately
    /// (no need to wait out the heartbeat budget: a closed socket is
    /// proof of death, unlike silence).
    ProcessDisconnected {
        /// Worker rank.
        worker: usize,
    },
    /// The liveness monitor missed a heartbeat window for a worker.
    HeartbeatMissed {
        /// Worker rank.
        worker: usize,
        /// Consecutive windows missed so far (1-based).
        misses: u64,
    },
    /// The liveness monitor declared a silent worker dead and is about to
    /// route it through [`TraceEvent::WorkerLeft`] (the eviction is an
    /// involuntary departure; the repair path is shared).
    WorkerEvicted {
        /// Worker rank.
        worker: usize,
        /// Workers still participating after the eviction.
        active: usize,
    },
    /// A checkpoint was durably written (DESIGN.md §14). `worker` names
    /// the snapshotted rank, or `None` for the controller's
    /// roster/group-history snapshot.
    SnapshotTaken {
        /// Snapshotted worker rank; `None` = controller state.
        worker: Option<usize>,
        /// The worker's local iteration at the snapshot (for the
        /// controller, its groups-formed count).
        iteration: u64,
    },
    /// A previously departed worker rejoined from a checkpoint
    /// (DESIGN.md §14). The invariant checker requires the rank to have
    /// actually departed, and its next ready signal to resume from
    /// `iteration` — a restored worker may not time-travel.
    WorkerRestored {
        /// Restored worker rank.
        worker: usize,
        /// The local iteration the snapshot carried; the worker's next
        /// signal reports `iteration + 1`.
        iteration: u64,
        /// Workers participating after the restore.
        active: usize,
    },
    /// Shard ownership was recomputed after membership churn
    /// (DESIGN.md §14). `moved` counts only *gratuitous* movement — keys
    /// that hopped between two surviving workers; keys orphaned by the
    /// departed rank or adopted by a joining one are unavoidable and
    /// excluded. The invariant checker enforces `moved < 5%` of `total`.
    ShardsReassigned {
        /// Keys that moved between two surviving workers.
        moved: usize,
        /// Total keys in the assignment.
        total: usize,
    },
    /// The run ended; closing counters for cross-checking.
    RunFinished {
        /// Total groups formed.
        groups_formed: u64,
        /// Frozen-schedule repairs performed.
        repairs: u64,
        /// Group-formation deferrals.
        deferrals: u64,
        /// Singleton assignments issued during drain-out.
        singletons: u64,
    },
}

/// A consumer of [`TraceEvent`]s.
///
/// Implementations must be thread-safe: the threaded runtime records from
/// the controller thread and every worker thread concurrently.
pub trait TraceSink: Send + Sync {
    /// Whether events should be constructed at all. Emission sites gate on
    /// this so a disabled sink costs one virtual call and nothing else —
    /// no allocation, no lock.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event. May be called concurrently.
    fn record(&self, event: TraceEvent);

    /// Flushes buffered output (no-op for in-memory sinks).
    fn flush(&self) {}
}

/// The default sink: tracing off. [`TraceSink::enabled`] is `false`, so
/// instrumented code skips event construction entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}
}

// Sinks are best-effort by contract (see `JsonlSink`): a panicking
// recorder thread must not take tracing down with it, so poisoned locks
// are recovered via `PoisonError::into_inner` instead of propagated.
struct RingInner {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded in-memory sink: retains the most recent `capacity` events,
/// counting (and dropping) the overflow. Suited to tests and to always-on
/// flight recording.
pub struct RingSink {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl RingSink {
    /// Creates a ring retaining the last `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            capacity,
            inner: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
        }
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.buf.iter().cloned().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .buf
            .len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .dropped
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: TraceEvent) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(event);
    }
}

/// A sink that appends one JSON object per line — the post-mortem dump
/// format consumed by `preduce trace --check` and
/// [`crate::invariants::InvariantChecker::check_jsonl`].
///
/// Writes are best-effort: I/O errors are counted, not propagated, so a
/// full disk never takes down a training run.
pub struct JsonlSink {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
    write_errors: Mutex<u64>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(file)))
    }

    /// Wraps an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            writer: Mutex::new(BufWriter::new(writer)),
            write_errors: Mutex::new(0),
        }
    }

    /// Number of events lost to I/O or serialization errors.
    pub fn write_errors(&self) -> u64 {
        *self
            .write_errors
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: TraceEvent) {
        let line = match serde_json::to_string(&event) {
            Ok(l) => l,
            Err(_) => {
                *self
                    .write_errors
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
                return;
            }
        };
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if writeln!(w, "{line}").is_err() {
            *self
                .write_errors
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
        }
    }

    fn flush(&self) {
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = w.flush(); // lint: allow(lock-discipline) flushing the buffered writer requires holding its own lock; nothing else is ever held here
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Reads a JSONL trace back into events.
///
/// Empty lines are skipped; a malformed line is an
/// [`io::ErrorKind::InvalidData`] error naming its line number.
pub fn read_jsonl<P: AsRef<Path>>(path: P) -> io::Result<Vec<TraceEvent>> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut events = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event: TraceEvent = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: {e}", idx + 1),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Bridges the comm-layer [`ControlObserver`] hook onto a [`TraceSink`]:
/// every assignment the control plane delivers becomes a
/// [`TraceEvent::AssignmentSent`]. This is how the TCP message queue and
/// the in-process channels share the trace vocabulary.
pub struct SinkObserver {
    sink: Arc<dyn TraceSink>,
}

impl SinkObserver {
    /// Wraps `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        SinkObserver { sink }
    }
}

impl ControlObserver for SinkObserver {
    fn on_assignment(&self, worker: usize, assignment: &GroupAssignment) {
        if self.sink.enabled() {
            self.sink.record(TraceEvent::AssignmentSent {
                worker,
                members: assignment.group.clone(),
                base_tag: assignment.base_tag,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> TraceEvent {
        TraceEvent::GroupFormed {
            sequence: seq,
            members: vec![0, 1],
            iterations: vec![3, 4],
            weights: vec![0.5, 0.5],
            new_iteration: 4,
            repaired: false,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
        s.record(sample(0)); // no-op, must not panic
    }

    #[test]
    fn ring_sink_bounds_and_counts_drops() {
        let s = RingSink::new(2);
        assert!(s.is_empty());
        for i in 0..5 {
            s.record(sample(i));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let snap = s.snapshot();
        assert!(
            matches!(snap[0], TraceEvent::GroupFormed { sequence: 3, .. }),
            "{snap:?}"
        );
        assert!(
            matches!(snap[1], TraceEvent::GroupFormed { sequence: 4, .. }),
            "{snap:?}"
        );
    }

    #[test]
    fn jsonl_roundtrip() {
        let dir = std::env::temp_dir().join("preduce-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(TraceEvent::SignalEnqueued {
                worker: 3,
                iteration: 7,
                queued: 1,
            });
            sink.record(sample(0));
            sink.flush();
            assert_eq!(sink.write_errors(), 0);
        }
        let events = read_jsonl(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            TraceEvent::SignalEnqueued {
                worker: 3,
                iteration: 7,
                queued: 1
            }
        );
        assert_eq!(events[1], sample(0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_jsonl_rejects_garbage() {
        let dir = std::env::temp_dir().join("preduce-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        std::fs::write(&path, "{\"not\": \"an event\"}\n").unwrap();
        let err = read_jsonl(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sink_observer_records_assignments() {
        let ring = Arc::new(RingSink::new(16));
        let obs = SinkObserver::new(ring.clone());
        let a = GroupAssignment {
            group: vec![1, 2],
            weights: vec![0.5, 0.5],
            base_tag: 64,
            new_iteration: 9,
        };
        obs.on_assignment(2, &a);
        let snap = ring.snapshot();
        assert_eq!(
            snap,
            vec![TraceEvent::AssignmentSent {
                worker: 2,
                members: vec![1, 2],
                base_tag: 64,
            }]
        );
    }
}
