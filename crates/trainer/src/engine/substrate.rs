//! The two execution substrates: deterministic virtual time and real OS
//! threads.
//!
//! A substrate supplies the *scheduler* for a strategy's state machine —
//! how time advances and compute runs, how models are exchanged or
//! averaged within a group, how the controller is signaled, and how the
//! control plane is observed (via `TraceSink`). [`SimSubstrate`] hands the
//! driver a [`SimHarness`] whose event queue plays all of those roles
//! under virtual time; [`ThreadedSubstrate`] provides an SPMD scaffold
//! (one OS thread per worker plus per-strategy shared resources: comm
//! endpoints, partial reducers, or a shared server) over the in-process
//! fabric.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use partial_reduce::{NullSink, TraceSink};
use preduce_simnet::FaultPlan;
use preduce_tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};

use crate::config::ExperimentConfig;
use crate::elastic::ElasticOptions;
use crate::engine::setup::worker_thread_seed;
use crate::sim::SimHarness;
use crate::worker::WorkerState;

/// Which substrate executes a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Deterministic virtual-time simulation.
    Sim,
    /// Real OS threads over in-process message passing.
    Threaded,
}

impl Backend {
    /// All backends, for CLI listings and exhaustive tests.
    pub const ALL: [Backend; 2] = [Backend::Sim, Backend::Threaded];
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(Backend::Sim),
            "threaded" => Ok(Backend::Threaded),
            other => Err(format!(
                "unknown backend `{other}` (expected `sim` or `threaded`)"
            )),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Sim => "sim",
            Backend::Threaded => "threaded",
        })
    }
}

/// What every substrate exposes to the engine: its identity, fleet size,
/// and the sink through which its control plane is observed. The
/// strategy-facing capabilities — advancing time and running compute,
/// exchanging or averaging models within a group, signaling the
/// controller — live behind each substrate's scheduler handle (the
/// simulator's harness, the threaded scaffold's per-worker context and
/// resources), which the matching `StrategyDriver` projection consumes.
pub trait Substrate {
    /// Which backend this substrate is.
    fn backend(&self) -> Backend;
    /// Fleet size.
    fn num_workers(&self) -> usize;
    /// The trace sink observing this run.
    fn sink(&self) -> Arc<dyn TraceSink>;
}

/// The virtual-time substrate: wraps the deterministic [`SimHarness`].
pub struct SimSubstrate {
    harness: SimHarness,
    sink: Arc<dyn TraceSink>,
    faults: FaultPlan,
    elastic: ElasticOptions,
}

impl SimSubstrate {
    /// Builds the simulator substrate for `config` (no tracing).
    ///
    /// # Panics
    /// Panics if the config is invalid.
    pub fn new(config: &ExperimentConfig) -> Self {
        SimSubstrate {
            harness: SimHarness::new(config),
            sink: Arc::new(NullSink),
            faults: FaultPlan::none(),
            elastic: ElasticOptions::none(),
        }
    }

    /// Replaces the trace sink.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Injects a fault plan (DESIGN.md §11): crashes, stalls, signal
    /// delays, and late joins applied deterministically in virtual time.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The fault plan this run executes under.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Sets the elasticity options (DESIGN.md §14): periodic snapshots
    /// and/or a warm start from an earlier checkpoint directory. Inert
    /// options leave the run bit-identical.
    #[must_use]
    pub fn with_elastic(mut self, elastic: ElasticOptions) -> Self {
        self.elastic = elastic;
        self
    }

    /// The elasticity options this run executes under.
    pub fn elastic(&self) -> &ElasticOptions {
        &self.elastic
    }

    /// Consumes the substrate into its scheduler handle and sink: a sim
    /// driver projection runs the harness event loop to completion.
    pub fn into_parts(self) -> (SimHarness, Arc<dyn TraceSink>) {
        (self.harness, self.sink)
    }
}

impl Substrate for SimSubstrate {
    fn backend(&self) -> Backend {
        Backend::Sim
    }

    fn num_workers(&self) -> usize {
        self.harness.num_workers()
    }

    fn sink(&self) -> Arc<dyn TraceSink> {
        self.sink.clone()
    }
}

/// The real-concurrency substrate: one OS thread per worker, wall-clock
/// time, in-process message passing, and an optional controller thread.
pub struct ThreadedSubstrate {
    config: ExperimentConfig,
    iters: u64,
    delays: Vec<Duration>,
    sink: Arc<dyn TraceSink>,
    faults: FaultPlan,
    elastic: ElasticOptions,
}

impl ThreadedSubstrate {
    /// Builds the threaded substrate: each worker will run `iters` local
    /// iterations (real threads need a finite budget; the convergence
    /// tracker of the simulator has no wall-clock analogue).
    ///
    /// # Panics
    /// Panics if the config is invalid.
    pub fn new(config: &ExperimentConfig, iters: u64) -> Self {
        config.validate();
        ThreadedSubstrate {
            config: config.clone(),
            iters,
            delays: Vec::new(),
            sink: Arc::new(NullSink),
            faults: FaultPlan::none(),
            elastic: ElasticOptions::none(),
        }
    }

    /// Replaces the trace sink.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Injects a fault plan (DESIGN.md §11). Wall-clock analogue of
    /// [`SimSubstrate::with_faults`]: crashes become real fail-stops
    /// detected by the controller's liveness policy; stalls, signal
    /// delays, and late joins become real sleeps.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The fault plan this run executes under.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Sets the elasticity options (DESIGN.md §14). On this substrate the
    /// policy drives per-worker periodic snapshots and `restore_from`
    /// warm-starts workers before their threads spawn; threads are not
    /// resurrected mid-run (the `restore:` fault verb is sim-only).
    #[must_use]
    pub fn with_elastic(mut self, elastic: ElasticOptions) -> Self {
        self.elastic = elastic;
        self
    }

    /// The elasticity options this run executes under.
    pub fn elastic(&self) -> &ElasticOptions {
        &self.elastic
    }

    /// Injects controlled heterogeneity: `delays[rank]` is an artificial
    /// per-iteration sleep turning worker `rank` into a straggler. An
    /// empty slice injects none.
    ///
    /// # Panics
    /// Panics if `delays` is neither empty nor one entry per worker.
    #[must_use]
    pub fn with_delays(mut self, delays: &[Duration]) -> Self {
        assert!(
            delays.is_empty() || delays.len() == self.config.num_workers,
            "need one delay per worker (or none), got {} for {} workers",
            delays.len(),
            self.config.num_workers
        );
        self.delays = delays.to_vec();
        self
    }

    /// The experiment configuration this substrate runs.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Local iterations each worker will run.
    pub fn iters(&self) -> u64 {
        self.iters
    }

    /// Runs `body` as an SPMD program: one thread per worker, each handed
    /// its context (rank, iteration budget, straggler delay, seeded RNG),
    /// its [`WorkerState`], and one element of `resources` (comm endpoint,
    /// partial reducer, shared-server handle…). Returns the per-rank final
    /// models and iteration counts plus the wall-clock time of the
    /// training loops (evaluation happens after, outside the clock).
    ///
    /// # Panics
    /// Panics if a worker thread panics or `resources` is mis-sized.
    pub(crate) fn run_spmd<R, F>(
        &self,
        workers: Vec<WorkerState>,
        resources: Vec<R>,
        body: F,
    ) -> SpmdOutcome
    where
        R: Send + 'static,
        F: Fn(WorkerCtx, WorkerState, R) -> (Tensor, u64) + Send + Sync + 'static,
    {
        assert_eq!(workers.len(), resources.len(), "one resource per worker");
        let body = Arc::new(body);
        let start = Instant::now();
        let threads: Vec<_> = workers
            .into_iter()
            .zip(resources)
            .map(|(w, r)| {
                let ctx = WorkerCtx {
                    rank: w.rank,
                    iters: self.iters,
                    delay: self.delays.get(w.rank).copied().unwrap_or(Duration::ZERO),
                    rng: StdRng::seed_from_u64(worker_thread_seed(self.config.seed, w.rank)),
                    faults: self.faults.clone(),
                };
                let body = Arc::clone(&body);
                thread::spawn(move || body(ctx, w, r))
            })
            .collect();
        let mut params = Vec::new();
        let mut iterations = Vec::new();
        for t in threads {
            let (p, i) = match t.join() {
                Ok(v) => v,
                // Re-raise the worker's own panic so its message and
                // backtrace survive instead of a generic join error.
                Err(payload) => std::panic::resume_unwind(payload),
            };
            params.push(p);
            iterations.push(i);
        }
        SpmdOutcome {
            wall_seconds: start.elapsed().as_secs_f64(),
            params,
            iterations,
        }
    }
}

impl Substrate for ThreadedSubstrate {
    fn backend(&self) -> Backend {
        Backend::Threaded
    }

    fn num_workers(&self) -> usize {
        self.config.num_workers
    }

    fn sink(&self) -> Arc<dyn TraceSink> {
        self.sink.clone()
    }
}

/// Unwraps a result inside an SPMD worker body. Worker closures run under
/// [`ThreadedSubstrate::run_spmd`], which joins every thread and re-raises
/// a worker panic on the driving thread — panicking here is the designed
/// channel through which a failed mid-run collective aborts the whole run.
pub(crate) fn must<T, E: fmt::Display>(what: &str, result: Result<T, E>) -> T {
    match result {
        Ok(v) => v,
        // lint: allow(panic-path) worker-thread failures propagate to the driver through run_spmd's join; a failed collective mid-run has no recovery path
        Err(e) => panic!("{what}: {e}"),
    }
}

/// Per-thread context handed to an SPMD worker body.
pub(crate) struct WorkerCtx {
    /// Worker rank.
    pub rank: usize,
    /// Local iterations to run.
    pub iters: u64,
    /// Injected per-iteration straggler sleep.
    pub delay: Duration,
    /// This worker's private RNG (batch draws).
    pub rng: StdRng,
    /// The run's fault plan; drivers that understand iteration-level
    /// faults (the P-Reduce body) query it by `rank`.
    pub faults: FaultPlan,
}

/// What an SPMD run returns: wall time plus each worker's final model and
/// iteration count, in rank order.
pub(crate) struct SpmdOutcome {
    /// Wall-clock seconds for the training loops.
    pub wall_seconds: f64,
    /// Final per-rank models.
    pub params: Vec<Tensor>,
    /// Final per-rank iteration counts.
    pub iterations: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use preduce_data::cifar10_like;
    use preduce_models::zoo;

    fn config(n: usize) -> ExperimentConfig {
        let mut c = ExperimentConfig::table1(zoo::resnet18(), cifar10_like(), 1);
        c.num_workers = n;
        c
    }

    #[test]
    fn backend_parse_and_display_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(b.to_string().parse::<Backend>().unwrap(), b);
        }
        assert!("gpu".parse::<Backend>().is_err());
    }

    #[test]
    fn substrates_report_identity() {
        let c = config(3);
        let sim = SimSubstrate::new(&c);
        assert_eq!(sim.backend(), Backend::Sim);
        assert_eq!(sim.num_workers(), 3);
        let thr = ThreadedSubstrate::new(&c, 5);
        assert_eq!(thr.backend(), Backend::Threaded);
        assert_eq!(thr.num_workers(), 3);
        assert_eq!(thr.iters(), 5);
    }

    #[test]
    #[should_panic(expected = "need one delay per worker")]
    fn delays_must_match_fleet() {
        let _ = ThreadedSubstrate::new(&config(3), 1).with_delays(&[Duration::ZERO]);
    }

    #[test]
    fn spmd_scaffold_runs_every_worker_once() {
        let c = config(4);
        let fleet = crate::engine::setup::build_fleet(&c);
        let sub = ThreadedSubstrate::new(&c, 3);
        let out = sub.run_spmd(fleet.workers, vec![(); 4], |mut ctx, mut w, ()| {
            for _ in 0..ctx.iters {
                w.local_update(&mut ctx.rng);
            }
            (w.params, w.iteration)
        });
        assert_eq!(out.iterations, vec![3; 4]);
        assert_eq!(out.params.len(), 4);
        assert!(out.wall_seconds >= 0.0);
    }
}
