/root/repo/target/lint-scratch/target/debug/deps/preduce_analysis-69f9b202cb69ffdc.d: src/lib.rs src/allow.rs src/passes/mod.rs src/passes/event_conformance.rs src/passes/lock_discipline.rs src/passes/panic_path.rs src/passes/reactor_blocking.rs src/passes/trace_coverage.rs src/passes/unsafe_audit.rs src/passes/weight_stochasticity.rs src/scan.rs src/scope.rs

/root/repo/target/lint-scratch/target/debug/deps/preduce_analysis-69f9b202cb69ffdc: src/lib.rs src/allow.rs src/passes/mod.rs src/passes/event_conformance.rs src/passes/lock_discipline.rs src/passes/panic_path.rs src/passes/reactor_blocking.rs src/passes/trace_coverage.rs src/passes/unsafe_audit.rs src/passes/weight_stochasticity.rs src/scan.rs src/scope.rs

src/lib.rs:
src/allow.rs:
src/passes/mod.rs:
src/passes/event_conformance.rs:
src/passes/lock_discipline.rs:
src/passes/panic_path.rs:
src/passes/reactor_blocking.rs:
src/passes/trace_coverage.rs:
src/passes/unsafe_audit.rs:
src/passes/weight_stochasticity.rs:
src/scan.rs:
src/scope.rs:
