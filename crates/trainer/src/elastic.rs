//! Elastic-training glue (DESIGN.md §14): policies for when to write
//! [`preduce_checkpoint`] snapshots, and the conversions between live
//! trainer/controller state and the serialized snapshot types.
//!
//! The checkpoint crate knows nothing about tensors or controllers; this
//! module is the only place that maps [`WorkerState`] ⇄
//! [`WorkerSnapshot`] and [`Controller`] ⇄ [`ControllerSnapshot`]. What
//! is deliberately *not* snapshotted: the network activations, the batch
//! sampler cursor, and the RNG — a restored worker resamples from its
//! shard, which is statistically (not bitwise) equivalent and keeps the
//! format model-architecture-agnostic.

use std::path::{Path, PathBuf};

use partial_reduce::runtime::GroupHook;
use partial_reduce::{Controller, TraceEvent};
use preduce_checkpoint::{CheckpointError, CheckpointStore, ControllerSnapshot, WorkerSnapshot};
use preduce_data::consistent_hash::DEFAULT_VNODES;
use preduce_data::{assignment_churn, HashRing, RingChurn};
use preduce_models::SgdOptimizer;
use preduce_tensor::Tensor;

use crate::worker::WorkerState;

/// Seed for the reshard ring narrated by
/// [`TraceEvent::ShardsReassigned`](partial_reduce::TraceEvent). Fixed so
/// every substrate reports the same churn for the same membership change.
pub const RESHARD_RING_SEED: u64 = 0x7072_6564_7563_6531;

/// Balance factor for reshard accounting — matches the data layer's
/// [`preduce_data::consistent_hash::BALANCE_FACTOR`] contract.
const RESHARD_BALANCE: f64 = preduce_data::consistent_hash::BALANCE_FACTOR;

/// When to write snapshots: into `dir`, every `every` worker iterations
/// (and, on the simulator, every `every` formed groups for the
/// controller's roster/history snapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint directory (created on first use).
    pub dir: PathBuf,
    /// Snapshot cadence in iterations/groups; never zero.
    pub every: u64,
}

impl CheckpointPolicy {
    /// Creates a policy.
    ///
    /// # Panics
    /// Panics if `every == 0` — "snapshot every zero iterations" is a
    /// config error, not a runtime condition.
    pub fn new<P: Into<PathBuf>>(dir: P, every: u64) -> Self {
        assert!(every > 0, "checkpoint cadence must be at least 1");
        CheckpointPolicy {
            dir: dir.into(),
            every,
        }
    }

    /// Opens (creating if needed) the store this policy writes to.
    pub fn open_store(&self) -> Result<CheckpointStore, CheckpointError> {
        CheckpointStore::open(&self.dir)
    }

    /// Whether a snapshot is due at `count` (iterations or groups).
    pub fn due(&self, count: u64) -> bool {
        count > 0 && count % self.every == 0
    }
}

/// Elasticity knobs threaded through the engine substrates. The default
/// is inert: no snapshots, no warm start, and a run with inert options
/// is bit-identical to one without them (the sim goldens pin this).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ElasticOptions {
    /// Periodic snapshot policy, if any.
    pub policy: Option<CheckpointPolicy>,
    /// Directory to warm-start from before the run begins, if any.
    pub restore_from: Option<PathBuf>,
}

impl ElasticOptions {
    /// Inert options: no checkpointing at all.
    pub fn none() -> Self {
        ElasticOptions::default()
    }

    /// Adds a periodic snapshot policy.
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn with_policy<P: Into<PathBuf>>(mut self, dir: P, every: u64) -> Self {
        self.policy = Some(CheckpointPolicy::new(dir, every));
        self
    }

    /// Warm-starts workers from snapshots found under `dir`.
    pub fn with_restore<P: Into<PathBuf>>(mut self, dir: P) -> Self {
        self.restore_from = Some(dir.into());
        self
    }

    /// Whether these options change anything about a run.
    pub fn is_inert(&self) -> bool {
        self.policy.is_none() && self.restore_from.is_none()
    }

    /// The store that in-run restores read from: the snapshot policy's
    /// directory, falling back to the warm-start directory.
    pub fn restore_dir(&self) -> Option<&Path> {
        self.policy
            .as_ref()
            .map(|p| p.dir.as_path())
            .or(self.restore_from.as_deref())
    }
}

/// Captures a worker's durable state: counters, flat parameters, and the
/// momentum buffer.
pub fn worker_snapshot(w: &WorkerState) -> WorkerSnapshot {
    WorkerSnapshot {
        rank: w.rank,
        iteration: w.iteration,
        updates_applied: w.updates_applied,
        opt_steps: w.opt.steps() as u64,
        params: w.params.as_slice().to_vec(),
        velocity: w.opt.velocity().as_slice().to_vec(),
    }
}

/// Restores a worker in place from a snapshot: parameters, momentum,
/// iteration and update counters. The optimizer resumes mid-schedule
/// (same config, checkpointed step count). Rejects rank and shape
/// mismatches — a snapshot from a different fleet layout must not be
/// silently grafted on.
pub fn restore_worker(w: &mut WorkerState, snap: &WorkerSnapshot) -> Result<(), String> {
    if snap.rank != w.rank {
        return Err(format!(
            "snapshot belongs to rank {}, not rank {}",
            snap.rank, w.rank
        ));
    }
    if snap.params.len() != w.params.len() {
        return Err(format!(
            "snapshot has {} parameters, model has {}",
            snap.params.len(),
            w.params.len()
        ));
    }
    if snap.velocity.len() != snap.params.len() {
        return Err(format!(
            "snapshot velocity length {} does not match its {} parameters",
            snap.velocity.len(),
            snap.params.len()
        ));
    }
    let n = snap.params.len();
    let params = Tensor::from_vec(snap.params.clone(), [n])
        .map_err(|e| format!("rebuilding parameters: {e}"))?;
    let velocity = Tensor::from_vec(snap.velocity.clone(), [n])
        .map_err(|e| format!("rebuilding velocity: {e}"))?;
    w.params = params;
    w.opt = SgdOptimizer::from_state(*w.opt.config(), velocity, snap.opt_steps as usize);
    w.iteration = snap.iteration;
    w.updates_applied = snap.updates_applied;
    Ok(())
}

/// Captures the controller's roster and group-history database.
pub fn controller_snapshot(c: &Controller) -> ControllerSnapshot {
    ControllerSnapshot {
        num_workers: c.config().num_workers,
        active: c.active(),
        departed: c.departed_workers(),
        groups_formed: c.groups_formed(),
        repairs: c.repairs(),
        deferrals: c.deferrals(),
        history_window: c.history().window(),
        history: c.history().iter().map(|g| g.to_vec()).collect(),
    }
}

/// Builds the [`RuntimeOptions::on_groups`] hook that writes
/// policy-cadenced controller snapshots — the process/threaded control
/// planes' counterpart of the simulator's `GroupDone` snapshot site.
///
/// A serving-loop pass may advance the group counter by more than one
/// (batch ingest), so the hook snapshots whenever the counter *crosses* a
/// cadence boundary rather than only when it lands exactly on one.
///
/// [`RuntimeOptions::on_groups`]: partial_reduce::runtime::RuntimeOptions
///
/// # Errors
/// Fails if the policy's directory cannot be opened or created.
pub fn controller_group_hook(policy: &CheckpointPolicy) -> Result<GroupHook, CheckpointError> {
    let store = policy.open_store()?;
    let every = policy.every;
    let mut last = 0u64;
    Ok(Box::new(move |c: &Controller| {
        let g = c.groups_formed();
        if g / every > last / every {
            crate::engine::substrate::must(
                "write controller snapshot",
                store.save_controller(&controller_snapshot(c)),
            );
            if c.sink().enabled() {
                c.sink().record(TraceEvent::SnapshotTaken {
                    worker: None,
                    iteration: g,
                });
            }
        }
        last = g;
    }))
}

/// Validates a controller snapshot against the fleet a controller is
/// about to serve. Process-mode controller restore is validate-only: the
/// accept phase requires every configured worker to handshake, so the
/// roster always rebuilds live — but serving a fleet whose layout
/// contradicts the checkpoint it is supposed to continue is a config
/// error worth refusing (DESIGN.md §14).
///
/// # Errors
/// Fails if no controller snapshot exists under `dir`, it is unreadable,
/// or its fleet size differs from `num_workers`.
pub fn validate_controller_restore(
    dir: &Path,
    num_workers: usize,
) -> Result<ControllerSnapshot, String> {
    let store = CheckpointStore::open(dir).map_err(|e| format!("open `{}`: {e}", dir.display()))?;
    let snap = store
        .load_controller()
        .map_err(|e| format!("load controller snapshot: {e}"))?;
    if snap.num_workers != num_workers {
        return Err(format!(
            "snapshot describes a {}-worker fleet, this controller serves {}",
            snap.num_workers, num_workers
        ));
    }
    Ok(snap)
}

/// The shard-ownership churn a membership change causes under the
/// bounded-load ring, for the
/// [`TraceEvent::ShardsReassigned`](partial_reduce::TraceEvent)
/// narration: `moved` counts only keys that hop between two surviving
/// workers (DESIGN.md §14). Returns `None` when either membership set is
/// empty (no assignment exists to compare).
pub fn reshard_churn(
    before_members: &[usize],
    after_members: &[usize],
    total_keys: usize,
) -> Option<RingChurn> {
    if before_members.is_empty() || after_members.is_empty() {
        return None;
    }
    let before = HashRing::new(before_members, DEFAULT_VNODES, RESHARD_RING_SEED);
    let after = HashRing::new(after_members, DEFAULT_VNODES, RESHARD_RING_SEED);
    let a = before.assign_balanced(total_keys, RESHARD_BALANCE);
    let b = after.assign_balanced(total_keys, RESHARD_BALANCE);
    Some(assignment_churn(&a, &b, &before, &after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use preduce_data::BatchSampler;
    use preduce_data::{GaussianMixture, SynthConfig};
    use preduce_models::{NetworkSpec, SgdConfig};
    use rand::SeedableRng;

    fn worker(rank: usize) -> WorkerState {
        let data = GaussianMixture::new(SynthConfig {
            num_classes: 3,
            feature_dim: 8,
            num_samples: 90,
            center_norm: 4.0,
            noise_std: 0.5,
            nonlinear_warp: false,
            seed: 11,
        })
        .generate();
        let net = NetworkSpec::mlp(8, &[12], 3).build(4);
        let sampler = BatchSampler::new(data, 16, 5);
        WorkerState::new(rank, net, SgdConfig::default(), sampler)
    }

    #[test]
    fn snapshot_roundtrips_through_a_live_worker() {
        let mut w = worker(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..7 {
            w.local_update(&mut rng);
        }
        let snap = worker_snapshot(&w);
        assert_eq!(snap.rank, 3);
        assert_eq!(snap.iteration, 7);

        // Diverge, then restore: durable state must match the snapshot.
        for _ in 0..5 {
            w.local_update(&mut rng);
        }
        restore_worker(&mut w, &snap).expect("restore");
        assert_eq!(w.iteration, 7);
        assert_eq!(w.updates_applied, 7);
        assert_eq!(w.opt.steps(), 7);
        assert_eq!(w.params.as_slice(), snap.params.as_slice());
        assert_eq!(w.opt.velocity().as_slice(), snap.velocity.as_slice());
    }

    #[test]
    fn restore_rejects_foreign_snapshots() {
        let mut w = worker(0);
        let mut other = worker(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        other.local_update(&mut rng);
        let snap = worker_snapshot(&other);
        let err = restore_worker(&mut w, &snap).unwrap_err();
        assert!(err.contains("rank"), "{err}");
    }

    #[test]
    fn restore_rejects_shape_mismatches() {
        let mut w = worker(2);
        let mut snap = worker_snapshot(&w);
        snap.params.pop();
        snap.velocity.pop();
        let err = restore_worker(&mut w, &snap).unwrap_err();
        assert!(err.contains("parameters"), "{err}");
    }

    #[test]
    fn policy_cadence_skips_iteration_zero() {
        let p = CheckpointPolicy::new("/tmp/unused", 4);
        assert!(!p.due(0));
        assert!(!p.due(3));
        assert!(p.due(4));
        assert!(p.due(8));
    }

    #[test]
    fn inert_options_are_inert() {
        assert!(ElasticOptions::none().is_inert());
        let opts = ElasticOptions::none().with_policy("/tmp/x", 2);
        assert!(!opts.is_inert());
        assert_eq!(opts.restore_dir().unwrap(), Path::new("/tmp/x"));
    }

    #[test]
    fn reshard_churn_counts_only_survivor_movement() {
        let before: Vec<usize> = (0..8).collect();
        let after: Vec<usize> = (0..7).collect(); // worker 7 left
        let churn = reshard_churn(&before, &after, 4000).expect("non-empty");
        assert!(churn.orphaned > 0);
        assert!(
            churn.moved * 20 < churn.total,
            "gratuitous churn {} of {} breaches 5%",
            churn.moved,
            churn.total
        );
        assert!(reshard_churn(&[], &after, 100).is_none());
    }
}
