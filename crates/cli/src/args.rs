//! A small `--flag value` argument parser — deliberately dependency-free
//! (the workspace's dependency budget is documented in DESIGN.md).

use std::collections::BTreeMap;
use std::fmt;

/// Parse error for CLI arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared without a value.
    MissingValue(String),
    /// A value could not be parsed into the requested type.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending value.
        value: String,
        /// Expected type name.
        expected: &'static str,
    },
    /// A token did not look like `--flag`.
    UnexpectedToken(String),
    /// A flag was given twice.
    Duplicate(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => {
                write!(f, "flag --{flag} needs a value")
            }
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "--{flag} {value}: expected {expected}"),
            ArgError::UnexpectedToken(t) => {
                write!(f, "unexpected argument `{t}` (flags are --name value)")
            }
            ArgError::Duplicate(flag) => write!(f, "--{flag} given twice"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed `--flag value` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses a token stream of `--flag value` pairs.
    pub fn parse<I, S>(tokens: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut values = BTreeMap::new();
        let mut iter = tokens.into_iter().map(Into::into);
        while let Some(tok) = iter.next() {
            let flag = tok
                .strip_prefix("--")
                .ok_or_else(|| ArgError::UnexpectedToken(tok.clone()))?
                .to_string();
            let value = iter
                .next()
                .ok_or_else(|| ArgError::MissingValue(flag.clone()))?;
            if value.starts_with("--") {
                return Err(ArgError::MissingValue(flag));
            }
            if values.insert(flag.clone(), value).is_some() {
                return Err(ArgError::Duplicate(flag));
            }
        }
        Ok(Args { values })
    }

    /// The raw string value of a flag, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// A typed flag value, or `default` when absent.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.values.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.into(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Flags that were provided.
    pub fn flags(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flag_value_pairs() {
        let a = Args::parse(["--model", "vgg19", "--hl", "3"]).unwrap();
        assert_eq!(a.get("model"), Some("vgg19"));
        assert_eq!(a.get_or("hl", 1usize).unwrap(), 3);
        assert_eq!(a.get_or("p", 3usize).unwrap(), 3); // default
    }

    #[test]
    fn rejects_missing_value() {
        assert_eq!(
            Args::parse(["--model"]),
            Err(ArgError::MissingValue("model".into()))
        );
        assert_eq!(
            Args::parse(["--a", "--b"]),
            Err(ArgError::MissingValue("a".into()))
        );
    }

    #[test]
    fn rejects_bare_tokens_and_duplicates() {
        assert!(matches!(
            Args::parse(["oops"]),
            Err(ArgError::UnexpectedToken(_))
        ));
        assert_eq!(
            Args::parse(["--x", "1", "--x", "2"]),
            Err(ArgError::Duplicate("x".into()))
        );
    }

    #[test]
    fn typed_parse_errors_are_descriptive() {
        let a = Args::parse(["--hl", "three"]).unwrap();
        let e = a.get_or("hl", 1usize).unwrap_err();
        assert!(e.to_string().contains("three"));
    }
}
