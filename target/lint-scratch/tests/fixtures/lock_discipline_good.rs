//! Known-good twin of `lock_discipline_bad.rs`: consistent lock order,
//! condvar waits that hand the guard back, and drop-before-send.

pub fn ab(a: &Mutex<u64>, b: &Mutex<u64>) {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    *ga += *gb;
}

pub fn ab_again(a: &Mutex<u64>, b: &Mutex<u64>) {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    *gb += *ga;
}

pub fn wait_loop(m: &Mutex<u64>, cv: &Condvar) {
    let mut g = m.lock().unwrap();
    while *g == 0 {
        g = cv.wait(g).unwrap();
    }
}

pub fn send_after_drop(m: &Mutex<u64>, tx: &Sender<u64>) {
    let g = m.lock().unwrap();
    let v = *g;
    drop(g);
    tx.send(v).ok();
}
