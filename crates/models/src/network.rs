use preduce_tensor::Tensor;

use crate::layer::Layer;

/// A sequential feed-forward network.
///
/// The network is the unit of replication in distributed training: each
/// worker owns one, and all communication happens through the *flat
/// parameter vector* ([`Network::param_vector`] /
/// [`Network::set_param_vector`]) and *flat gradient vector*
/// ([`Network::grad_vector`]) — exactly the view a collective library like
/// Gloo or NCCL has of a model.
pub struct Network {
    input_dim: usize,
    layers: Vec<Box<dyn Layer>>,
    param_count: usize,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Network {
            input_dim: self.input_dim,
            layers: self.layers.clone(),
            param_count: self.param_count,
        }
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Network(input_dim={}, layers=[", self.input_dim)?;
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", l.name())?;
        }
        write!(f, "], params={})", self.param_count)
    }
}

impl Network {
    /// Assembles a network from constructed layers.
    ///
    /// # Panics
    /// Panics if `input_dim == 0`.
    pub fn new(input_dim: usize, layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(input_dim > 0, "network input dimension must be positive");
        let param_count = layers.iter().map(|l| l.param_count()).sum();
        Network {
            input_dim,
            layers,
            param_count,
        }
    }

    /// Expected input feature count.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Total scalar parameter count `d` — the length of the flat vectors.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Runs the forward pass on `[batch, input_dim]`, caching state for a
    /// subsequent [`Network::backward`].
    ///
    /// # Panics
    /// Panics if `x` is not `[batch, input_dim]`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.shape().dim(1),
            self.input_dim,
            "network expects [batch, {}], got {}",
            self.input_dim,
            x.shape()
        );
        let mut h = x.clone();
        for l in &mut self.layers {
            h = l.forward(&h);
        }
        h
    }

    /// Propagates `grad` (w.r.t. the network output) through all layers,
    /// accumulating parameter gradients.
    pub fn backward(&mut self, grad: &Tensor) {
        let mut g = grad.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
    }

    /// Resets all accumulated gradients to zero.
    pub fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    /// Switches every layer between training and evaluation behaviour
    /// (dropout etc.).
    pub fn set_training(&mut self, training: bool) {
        for l in &mut self.layers {
            l.set_training(training);
        }
    }

    /// All parameters concatenated into one flat `[d]` tensor
    /// (layer order, then the per-layer parameter order).
    pub fn param_vector(&self) -> Tensor {
        let mut flat = Vec::with_capacity(self.param_count);
        for l in &self.layers {
            for p in l.params() {
                flat.extend_from_slice(p.as_slice());
            }
        }
        Tensor::from_vec(flat, [self.param_count.max(1)]).expect("param volume matches")
    }

    /// All accumulated gradients concatenated into one flat `[d]` tensor,
    /// matching the layout of [`Network::param_vector`].
    pub fn grad_vector(&self) -> Tensor {
        let mut flat = Vec::with_capacity(self.param_count);
        for l in &self.layers {
            for g in l.grads() {
                flat.extend_from_slice(g.as_slice());
            }
        }
        Tensor::from_vec(flat, [self.param_count.max(1)]).expect("grad volume matches")
    }

    /// Overwrites all parameters from a flat `[d]` tensor.
    ///
    /// # Panics
    /// Panics if `flat.len() != param_count()`.
    pub fn set_param_vector(&mut self, flat: &Tensor) {
        assert_eq!(
            flat.len(),
            self.param_count,
            "flat parameter vector has length {}, expected {}",
            flat.len(),
            self.param_count
        );
        let src = flat.as_slice();
        let mut off = 0;
        for l in &mut self.layers {
            for p in l.params_mut() {
                let n = p.len();
                p.as_mut_slice().copy_from_slice(&src[off..off + n]);
                off += n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NetworkSpec;

    #[test]
    fn param_vector_roundtrip() {
        let mut net = NetworkSpec::mlp(6, &[8, 4], 3).build(1);
        let v = net.param_vector();
        assert_eq!(v.len(), net.param_count());
        let mut scaled = v.clone();
        scaled.scale(0.5);
        net.set_param_vector(&scaled);
        assert_eq!(net.param_vector(), scaled);
    }

    #[test]
    fn forward_backward_produces_gradients() {
        let mut net = NetworkSpec::mlp(4, &[8], 2).build(0);
        let x = Tensor::ones([3, 4]);
        let y = net.forward(&x);
        assert_eq!(y.shape().dims(), &[3, 2]);
        net.backward(&Tensor::ones([3, 2]));
        let g = net.grad_vector();
        assert_eq!(g.len(), net.param_count());
        assert!(g.norm2() > 0.0, "no gradient signal");
        net.zero_grads();
        assert_eq!(net.grad_vector().norm2(), 0.0);
    }

    #[test]
    fn clone_is_independent() {
        let net = NetworkSpec::mlp(4, &[4], 2).build(0);
        let mut other = net.clone();
        let mut zeroed = other.param_vector();
        zeroed.fill_zero();
        other.set_param_vector(&zeroed);
        assert!(net.param_vector().norm2() > 0.0);
        assert_eq!(other.param_vector().norm2(), 0.0);
    }

    #[test]
    fn whole_network_gradient_check() {
        // Sum-of-logits loss; verify d(sum)/d(theta) numerically for a
        // sample of parameters across layers.
        let mut net = NetworkSpec::mlp(3, &[5], 2).build(7);
        let x = Tensor::from_vec(vec![0.2, -0.4, 1.0, 0.9, 0.1, -0.7], [2, 3]).unwrap();

        let y = net.forward(&x);
        net.zero_grads();
        net.backward(&Tensor::ones(y.shape().clone()));
        let analytic = net.grad_vector();

        let base = net.param_vector();
        let eps = 1e-3f32;
        let d = net.param_count();
        for idx in (0..d).step_by(d / 10 + 1) {
            let mut hi = base.clone();
            hi.as_mut_slice()[idx] += eps;
            net.set_param_vector(&hi);
            let f_hi: f64 = net.forward(&x).sum();
            let mut lo = base.clone();
            lo.as_mut_slice()[idx] -= eps;
            net.set_param_vector(&lo);
            let f_lo: f64 = net.forward(&x).sum();
            let numeric = ((f_hi - f_lo) / (2.0 * eps as f64)) as f32;
            let a = analytic.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 1e-2,
                "param {idx}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "expects [batch, 4]")]
    fn forward_rejects_wrong_width() {
        let mut net = NetworkSpec::mlp(4, &[], 2).build(0);
        net.forward(&Tensor::ones([1, 5]));
    }
}
