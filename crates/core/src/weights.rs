//! Aggregation weight generation.
//!
//! Constant partial reduce averages the group's models uniformly
//! (Algorithm 2 line 7: weight `1/P`). Dynamic partial reduce (§3.3)
//! penalizes stale members using bias-corrected exponential-moving-average
//! weights: with relative iteration numbers
//! `k̂_i = max_j k_j − k_i + 1 ∈ [1, k̂_max]`, Eq. 9 assigns relative
//! iteration `r` the mass
//!
//! ```text
//! β(r) = (1 − α) · α^{r−1} / (1 − α^{k̂_max})
//! ```
//!
//! so fresher models (`r = 1`) weigh the most and Σ_r β(r) = 1. Two
//! paper-specified adjustments complete the scheme:
//!
//! * workers sharing a relative iteration number split its mass equally;
//! * relative iteration numbers in `[1, k̂_max]` held by *no* member still
//!   carry mass — the paper's conservative approximation routes it to the
//!   initial (most stale) model, i.e. the `k̂_max` holders
//!   ([`GapPolicy::Initial`]); the alternative it mentions routes each gap
//!   to the member with the nearest relative iteration number
//!   ([`GapPolicy::Nearest`]).

use serde::{Deserialize, Serialize};

/// What to do with EMA mass assigned to relative iteration numbers that no
/// group member holds (§3.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GapPolicy {
    /// Route gap mass to the most stale member(s) — the paper's
    /// "conservative approximation of using the initial model x₁".
    #[default]
    Initial,
    /// Route each gap's mass to the member(s) with the closest relative
    /// iteration number (ties toward the staler side).
    Nearest,
}

/// Uniform weights `1/P` for constant partial reduce.
///
/// # Panics
/// Panics if `p == 0`.
pub fn constant_weights(p: usize) -> Vec<f32> {
    assert!(p > 0, "group must be non-empty");
    vec![1.0 / p as f32; p]
}

/// The weight row of a singleton "group": the drain protocol's
/// self-assignment keeps the worker's own model with full mass. Trivially
/// doubly stochastic; routed through here so every row in the system
/// comes from this module.
pub fn singleton_weights() -> Vec<f32> {
    vec![1.0]
}

/// Staleness-aware weights for dynamic partial reduce.
///
/// `iterations[i]` is member `i`'s current iteration number as reported in
/// its ready signal; `alpha ∈ (0, 1)` is the EMA decay. Returns one weight
/// per member, aligned with `iterations`, summing to 1 (up to float error).
///
/// # Panics
/// Panics if `iterations` is empty or `alpha` is outside `(0, 1)`.
pub fn dynamic_weights(iterations: &[u64], alpha: f64, gap_policy: GapPolicy) -> Vec<f32> {
    assert!(!iterations.is_empty(), "group must be non-empty");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "EMA decay must lie in (0, 1), got {alpha}"
    );
    let p = iterations.len();
    let k_max = iterations.iter().copied().max().unwrap_or(0);

    // Relative iteration numbers k̂_i ∈ [1, k̂_max].
    let rel: Vec<u64> = iterations.iter().map(|&k| k_max - k + 1).collect();
    let rel_max = rel.iter().copied().max().unwrap_or(1);

    // All members at the same iteration: degenerate to constant weights
    // (also avoids 0/0 when α^1 cancellation would apply).
    if rel_max == 1 {
        return constant_weights(p);
    }

    // β(r) per Eq. 9 with k replaced by k̂_max.
    let denom = 1.0 - alpha.powi(rel_max as i32);
    let beta = |r: u64| -> f64 { (1.0 - alpha) * alpha.powi((r - 1) as i32) / denom };

    // Owners per relative iteration number.
    let mut weights = vec![0.0f64; p];
    for r in 1..=rel_max {
        let owners: Vec<usize> = (0..p).filter(|&i| rel[i] == r).collect();
        let mass = beta(r);
        if !owners.is_empty() {
            let share = mass / owners.len() as f64;
            for i in owners {
                weights[i] += share;
            }
            continue;
        }
        // Gap: route per policy. The stalest relative number always has an
        // owner (the min-iteration member), so recipients are never empty.
        let recipients: Vec<usize> = match gap_policy {
            GapPolicy::Initial => (0..p).filter(|&i| rel[i] == rel_max).collect(),
            GapPolicy::Nearest => {
                let Some(nearest) = rel
                    .iter()
                    .map(|&kr| {
                        let d = kr.abs_diff(r);
                        // Ties toward the staler side: prefer kr > r.
                        (d, if kr > r { 0u8 } else { 1u8 })
                    })
                    .min()
                else {
                    continue;
                };
                (0..p)
                    .filter(|&i| {
                        let d = rel[i].abs_diff(r);
                        (d, if rel[i] > r { 0u8 } else { 1u8 }) == nearest
                    })
                    .collect()
            }
        };
        debug_assert!(!recipients.is_empty());
        let share = mass / recipients.len() as f64;
        for i in recipients {
            weights[i] += share;
        }
    }
    weights.into_iter().map(|w| w as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sums_to_one(w: &[f32]) {
        let s: f32 = w.iter().sum();
        assert!((s - 1.0).abs() < 1e-5, "weights sum to {s}: {w:?}");
    }

    #[test]
    fn constant_weights_are_uniform() {
        let w = constant_weights(4);
        assert_eq!(w, vec![0.25; 4]);
        assert_sums_to_one(&w);
    }

    #[test]
    fn equal_iterations_degenerate_to_constant() {
        let w = dynamic_weights(&[7, 7, 7], 0.5, GapPolicy::Initial);
        for v in &w {
            assert!((v - 1.0 / 3.0).abs() < 1e-6);
        }
        assert_sums_to_one(&w);
    }

    #[test]
    fn fresher_members_weigh_more() {
        // k = [10, 9, 5]: rel = [1, 2, 6].
        let w = dynamic_weights(&[10, 9, 5], 0.5, GapPolicy::Initial);
        assert_sums_to_one(&w);
        assert!(w[0] > w[1], "{w:?}");
        assert!(w[1] > w[2], "{w:?}");
    }

    #[test]
    fn two_member_known_values() {
        // k = [2, 1]: rel = [1, 2], k̂max = 2, α = 0.5.
        // β(1) = 0.5/0.75 = 2/3, β(2) = 0.25/0.75 = 1/3.
        let w = dynamic_weights(&[2, 1], 0.5, GapPolicy::Initial);
        assert!((w[0] - 2.0 / 3.0).abs() < 1e-6);
        assert!((w[1] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn ties_split_equally() {
        // k = [9, 9, 8, 8]: rel = [1, 1, 2, 2], no gaps. α = 0.5:
        // β(1) = 2/3 split two ways, β(2) = 1/3 split two ways.
        let w = dynamic_weights(&[9, 9, 8, 8], 0.5, GapPolicy::Initial);
        assert_sums_to_one(&w);
        assert!((w[0] - w[1]).abs() < 1e-7);
        assert!((w[2] - w[3]).abs() < 1e-7);
        assert!((w[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((w[2] - 1.0 / 6.0).abs() < 1e-6);
        assert!(w[0] > w[2]);
    }

    #[test]
    fn initial_policy_collapses_to_one_minus_alpha_for_pairs() {
        // With one fresh and one very stale member, all gap mass routes to
        // the stale model: weights → [(1−α)/(1−α^k̂), ...rest]. This is the
        // paper's conservative approximation taken to its extreme.
        let w = dynamic_weights(&[1000, 1], 0.3, GapPolicy::Initial);
        assert_sums_to_one(&w);
        assert!((w[0] - 0.7).abs() < 1e-5);
        assert!((w[1] - 0.3).abs() < 1e-5);
    }

    #[test]
    fn gap_mass_goes_to_stalest_under_initial_policy() {
        // k = [10, 1]: rel = [1, 10]; gaps 2..9 exist.
        // Initial policy: member 1 receives β(2..=10).
        let w = dynamic_weights(&[10, 1], 0.5, GapPolicy::Initial);
        assert_sums_to_one(&w);
        // β(1) = 0.5 / (1 - 0.5^10) ≈ 0.5005; the rest goes to member 1.
        assert!((w[0] as f64 - 0.5 / (1.0 - 0.5f64.powi(10))).abs() < 1e-6);
        assert!(w[1] > 0.49 && w[1] < 0.5);
    }

    #[test]
    fn nearest_policy_shifts_gap_mass_toward_fresh() {
        let initial = dynamic_weights(&[10, 1], 0.5, GapPolicy::Initial);
        let nearest = dynamic_weights(&[10, 1], 0.5, GapPolicy::Nearest);
        assert_sums_to_one(&nearest);
        // Gaps 2..5 sit nearer rel=1 (fresh member 0); under Nearest the
        // fresh member receives them, so it gains weight vs Initial.
        assert!(nearest[0] > initial[0]);
    }

    #[test]
    fn smaller_alpha_penalizes_staleness_harder() {
        let mild = dynamic_weights(&[10, 8], 0.9, GapPolicy::Initial);
        let harsh = dynamic_weights(&[10, 8], 0.2, GapPolicy::Initial);
        assert!(harsh[0] > mild[0]);
        assert!(harsh[1] < mild[1]);
    }

    #[test]
    fn weights_always_normalized_and_nonnegative() {
        let cases: Vec<Vec<u64>> = vec![
            vec![1],
            vec![100, 1],
            vec![3, 3, 3, 3, 3],
            vec![50, 49, 48, 10, 2],
            vec![7, 7, 1, 1],
        ];
        for c in cases {
            for alpha in [0.1, 0.5, 0.9] {
                for policy in [GapPolicy::Initial, GapPolicy::Nearest] {
                    let w = dynamic_weights(&c, alpha, policy);
                    assert_sums_to_one(&w);
                    assert!(w.iter().all(|&x| x >= 0.0), "{c:?} {alpha} {w:?}");
                }
            }
        }
    }

    #[test]
    fn singleton_group_gets_full_weight() {
        let w = dynamic_weights(&[42], 0.5, GapPolicy::Initial);
        assert_eq!(w, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_group() {
        dynamic_weights(&[], 0.5, GapPolicy::Initial);
    }

    #[test]
    #[should_panic(expected = "(0, 1)")]
    fn rejects_bad_alpha() {
        dynamic_weights(&[1, 2], 1.0, GapPolicy::Initial);
    }
}
