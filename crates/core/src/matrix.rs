//! Synchronization matrices `W_k` (Eq. 3–4).
//!
//! The global view of one partial reduce is `X_{k+1} = (X_k − η G_k) W_k`,
//! where column `j` of `W_k` gives the mixing weights producing worker `j`'s
//! next model. For constant partial reduce over group `S` (Eq. 4):
//!
//! ```text
//! W_k(i,j) = 1/P  if i, j ∈ S,
//!            1    if i = j ∉ S,
//!            0    otherwise
//! ```
//!
//! which is symmetric and doubly stochastic (Assumption 2.1). The weighted
//! variant generalizes to dynamic weights (column-stochastic; symmetric only
//! when the weights are uniform).

use preduce_tensor::Tensor;

fn check_group(n: usize, group: &[usize]) {
    assert!(!group.is_empty(), "group must be non-empty");
    for &w in group {
        assert!(w < n, "worker {w} out of range (N = {n})");
    }
    let mut sorted = group.to_vec();
    sorted.sort_unstable();
    assert!(
        sorted.windows(2).all(|w| w[0] != w[1]),
        "group has duplicate members: {group:?}"
    );
}

/// The constant-partial-reduce synchronization matrix of Eq. 4 for a group
/// within a cluster of `n` workers.
///
/// # Panics
/// Panics if the group is empty, has duplicates, or references workers
/// outside `0..n`.
pub fn sync_matrix(n: usize, group: &[usize]) -> Tensor {
    check_group(n, group);
    weighted_sync_matrix(n, group, &crate::weights::constant_weights(group.len()))
}

/// The synchronization matrix for a weighted partial reduce: each member
/// `j ∈ S` replaces its model with `Σ_{i∈S} weights[i] · x_i`; outsiders
/// keep theirs. Every column sums to 1.
///
/// # Panics
/// Panics on an invalid group, weight-count mismatch, or weights that do
/// not sum to 1 (within 1e-4).
pub fn weighted_sync_matrix(n: usize, group: &[usize], weights: &[f32]) -> Tensor {
    check_group(n, group);
    assert_eq!(
        group.len(),
        weights.len(),
        "one weight per group member required"
    );
    let total: f32 = weights.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-4,
        "weights must sum to 1, got {total}"
    );

    let mut w = Tensor::zeros([n, n]);
    let in_group = {
        let mut mask = vec![false; n];
        for &m in group {
            mask[m] = true;
        }
        mask
    };
    for (i, &member) in in_group.iter().enumerate() {
        if !member {
            w.set(&[i, i], 1.0);
        }
    }
    for (pos, &i) in group.iter().enumerate() {
        for &j in group {
            // Column j (worker j's new model) takes weights[pos] of x_i.
            w.set(&[i, j], weights[pos]);
        }
    }
    w
}

/// Checks that a matrix is doubly stochastic within `tol`
/// (rows and columns each sum to 1, entries non-negative).
pub fn is_doubly_stochastic(w: &Tensor, tol: f32) -> bool {
    if w.shape().rank() != 2 || w.shape().dim(0) != w.shape().dim(1) {
        return false;
    }
    let n = w.shape().dim(0);
    for i in 0..n {
        let mut row = 0.0f32;
        let mut col = 0.0f32;
        for j in 0..n {
            let rij = w.at(&[i, j]);
            let cji = w.at(&[j, i]);
            if rij < -tol || cji < -tol {
                return false;
            }
            row += rij;
            col += cji;
        }
        if (row - 1.0).abs() > tol || (col - 1.0).abs() > tol {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq4_structure() {
        let w = sync_matrix(4, &[1, 3]);
        // Outsiders: identity.
        assert_eq!(w.at(&[0, 0]), 1.0);
        assert_eq!(w.at(&[2, 2]), 1.0);
        // Members: 1/P block.
        assert_eq!(w.at(&[1, 1]), 0.5);
        assert_eq!(w.at(&[1, 3]), 0.5);
        assert_eq!(w.at(&[3, 1]), 0.5);
        assert_eq!(w.at(&[3, 3]), 0.5);
        // Cross terms zero.
        assert_eq!(w.at(&[0, 1]), 0.0);
        assert_eq!(w.at(&[1, 0]), 0.0);
    }

    #[test]
    fn constant_matrix_is_doubly_stochastic_and_symmetric() {
        let w = sync_matrix(6, &[0, 2, 5]);
        assert!(is_doubly_stochastic(&w, 1e-6));
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(w.at(&[i, j]), w.at(&[j, i]));
            }
        }
    }

    #[test]
    fn full_group_is_uniform_matrix() {
        let w = sync_matrix(3, &[0, 1, 2]);
        for i in 0..3 {
            for j in 0..3 {
                assert!((w.at(&[i, j]) - 1.0 / 3.0).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn weighted_matrix_columns_sum_to_one() {
        let w = weighted_sync_matrix(4, &[0, 1, 2], &[0.5, 0.3, 0.2]);
        for j in 0..4 {
            let col: f32 = (0..4).map(|i| w.at(&[i, j])).sum();
            assert!((col - 1.0).abs() < 1e-6, "column {j} sums to {col}");
        }
        // Member column: worker 1's new model = 0.5 x0 + 0.3 x1 + 0.2 x2.
        assert_eq!(w.at(&[0, 1]), 0.5);
        assert_eq!(w.at(&[1, 1]), 0.3);
        assert_eq!(w.at(&[2, 1]), 0.2);
        assert_eq!(w.at(&[3, 1]), 0.0);
    }

    #[test]
    fn weighted_matrix_applies_mixing() {
        use preduce_tensor::matmul;
        // X: each worker's (1-dim) model as a column of a 1×N matrix.
        let x = Tensor::from_vec(vec![10.0, 20.0, 30.0], [1, 3]).unwrap();
        let w = weighted_sync_matrix(3, &[0, 1], &[0.75, 0.25]);
        let x_next = matmul(&x, &w);
        // Members 0,1 → 0.75·10 + 0.25·20 = 12.5; outsider keeps 30.
        assert_eq!(x_next.as_slice(), &[12.5, 12.5, 30.0]);
    }

    #[test]
    fn non_doubly_stochastic_detected() {
        let w = weighted_sync_matrix(3, &[0, 1], &[0.9, 0.1]);
        // Column-stochastic but rows don't sum to 1 (0.9+0.9+0 ≠ 1).
        assert!(!is_doubly_stochastic(&w, 1e-6));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_members() {
        sync_matrix(4, &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_unnormalized_weights() {
        weighted_sync_matrix(3, &[0, 1], &[0.9, 0.9]);
    }
}
