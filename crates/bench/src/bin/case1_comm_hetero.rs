//! Intro Case 1: **communication heterogeneity** — the paper motivates
//! partial reduce with geo-distributed clusters where inter-datacenter
//! links are ~10× slower than intra-datacenter ones, but its evaluation
//! only exercises compute heterogeneity. This binary closes that gap as an
//! extension experiment: 8 compute-identical workers, two of which sit
//! behind a slow link.
//!
//! All-Reduce's global ring always crosses the slow link; a partial-reduce
//! group pays it only when a remote worker is a member, so most groups run
//! at full speed.
//!
//! Run: `cargo run --release -p preduce-bench --bin case1_comm_hetero`

use preduce_bench::configs::table1_config;
use preduce_bench::output::{print_run_row, TableWriter};
use preduce_models::zoo;
use preduce_trainer::{run_experiment, Strategy};

fn main() {
    println!("Case 1 (intro): communication heterogeneity");
    println!("8 workers, identical GPUs; workers 6-7 behind a link with the given slowdown.\n");

    let t = TableWriter::new(
        &["link x", "All-Reduce", "AD-PSGD", "P-Reduce CON (P=3)"],
        &[7, 12, 12, 18],
    );
    for slow in [1.0f64, 4.0, 10.0] {
        // VGG-19 analog: the most communication-bound Table 1 model, where
        // link heterogeneity bites hardest.
        let mut config = table1_config(zoo::vgg19(), 1);
        config.link_slowdown = Some(vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, slow, slow]);
        let ar = run_experiment(Strategy::AllReduce, &config);
        let ad = run_experiment(Strategy::AdPsgd, &config);
        let pr = run_experiment(
            Strategy::PReduce {
                p: 3,
                dynamic: false,
            },
            &config,
        );
        t.row(&[
            &format!("{slow:.0}x"),
            &format!("{:.1}s", ar.run_time),
            &format!("{:.1}s", ad.run_time),
            &format!("{:.1}s", pr.run_time),
        ]);
    }

    println!("\ndetails at 10x:");
    let mut config = table1_config(zoo::vgg19(), 1);
    config.link_slowdown = Some(vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 10.0, 10.0]);
    for s in [
        Strategy::AllReduce,
        Strategy::AdPsgd,
        Strategy::PReduce {
            p: 3,
            dynamic: false,
        },
        Strategy::PReduce {
            p: 3,
            dynamic: true,
        },
    ] {
        let r = run_experiment(s, &config);
        print_run_row(&r);
    }
    println!("\n(The global ring always pays the slow link; most partial-reduce");
    println!(" groups avoid it entirely.)");
}
