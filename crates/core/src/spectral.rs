//! Spectral-gap analysis (Assumption 2.3, Eq. 6, Fig. 4).
//!
//! The convergence bound's *network error* scales with
//! `ρ̄ = ρ/(1−ρ) + 2√ρ/(1−√ρ)²`, where
//! `ρ = max(|λ₂(E[W])|, |λ_N(E[W])|)` is the second-largest eigenvalue
//! magnitude of the expected synchronization matrix. A smaller `ρ` means
//! faster update spreading; homogeneity ⇒ smaller `ρ` (Fig. 4), and
//! `P = N` all-reduce ⇒ `ρ = 0`.

use preduce_tensor::{symmetric_eigenvalues, JacobiOptions, Tensor, TensorError};

use crate::matrix::sync_matrix;

/// The spectral diagnostics of a partial-reduce schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralReport {
    /// `ρ = max(|λ₂|, |λ_N|)` of `E[W]`.
    pub rho: f64,
    /// The error coefficient `ρ̄` of Theorem 1.
    pub rho_bar: f64,
    /// All eigenvalues of `E[W]`, descending.
    pub eigenvalues: Vec<f64>,
}

/// Averages the constant-P-reduce synchronization matrices of an observed
/// group sequence into an empirical `E[W]`.
///
/// # Panics
/// Panics if `groups` is empty or any group is invalid for `n` workers.
pub fn expected_sync_matrix(n: usize, groups: &[Vec<usize>]) -> Tensor {
    assert!(!groups.is_empty(), "need at least one observed group");
    let mut acc = Tensor::zeros([n, n]);
    for g in groups {
        acc.add_assign(&sync_matrix(n, g));
    }
    acc.scale(1.0 / groups.len() as f32);
    acc
}

/// Closed-form `E[W]` when every size-`P` group is equally likely (the
/// homogeneous environment): diagonal
/// `P(i∈S)/P + P(i∉S) = (P−1)/N · 1/P · … ` reduces to
/// `d = 1 − (P−1)/N · (1 − 1/P) · N/(N−?)`… computed directly from pair
/// inclusion probabilities:
///
/// * `P(i ∈ S) = P/N`, so `E[W](i,i) = (P/N)·(1/P) + (1 − P/N)·1`;
/// * `P(i,j ∈ S) = P(P−1)/(N(N−1))`, so
///   `E[W](i,j) = P(P−1)/(N(N−1)) · 1/P` for `i ≠ j`.
///
/// # Panics
/// Panics unless `2 ≤ p ≤ n`.
pub fn expected_sync_matrix_uniform(n: usize, p: usize) -> Tensor {
    assert!(p >= 2 && p <= n, "need 2 ≤ P ≤ N, got P={p}, N={n}");
    let nf = n as f64;
    let pf = p as f64;
    let diag = (pf / nf) * (1.0 / pf) + (1.0 - pf / nf);
    let off = (pf * (pf - 1.0)) / (nf * (nf - 1.0)) / pf;
    let mut w = Tensor::zeros([n, n]);
    for i in 0..n {
        for j in 0..n {
            w.set(&[i, j], if i == j { diag as f32 } else { off as f32 });
        }
    }
    w
}

/// Closed-form `ρ` of the homogeneous environment (every size-`P` group
/// equally likely): `E[W] = d·I + o·(J − I)` has eigenvalue `1` on the
/// all-ones vector and `d − o` with multiplicity `N − 1`, so
/// `ρ = d − o` — no eigensolve needed. This is the Thm.-1 reference
/// curve the scale campaign compares measured schedules against: at
/// fixed `P`, `1 − ρ ≈ (P − 1)/N`, so `ρ̄` grows like `Θ(N²/(P−1)²)`.
///
/// # Panics
/// Panics unless `2 ≤ p ≤ n`.
pub fn rho_uniform(n: usize, p: usize) -> f64 {
    assert!(p >= 2 && p <= n, "need 2 ≤ P ≤ N, got P={p}, N={n}");
    if n == p {
        // All-reduce: E[W] is the averaging matrix, ρ = 0 exactly.
        return 0.0;
    }
    let nf = n as f64;
    let pf = p as f64;
    let diag = (pf / nf) * (1.0 / pf) + (1.0 - pf / nf);
    let off = (pf * (pf - 1.0)) / (nf * (nf - 1.0)) / pf;
    (diag - off).clamp(0.0, 1.0)
}

/// Matrix-free estimate of `ρ = max(|λ₂|, |λ_N|)` of the empirical
/// `E[W]` of an observed group sequence, by power iteration with the
/// all-ones eigenvector deflated.
///
/// [`spectral_gap`] materializes the `N×N` matrix and runs a Jacobi
/// eigensolve — O(N³), hopeless at `N = 10⁴`. This routine never forms
/// the matrix: each `W_k·v` replaces the member entries of `v` with
/// their mean, so one operator application costs
/// O(Σ|group| + N) and the whole estimate
/// O(iters · (Σ|group| + N)). `E[W]` is symmetric and doubly stochastic,
/// so its top eigenpair is `(1, 𝟙)`; projecting `v ⊥ 𝟙` each step makes
/// the power iteration converge to the largest *remaining* eigenvalue
/// magnitude — exactly `ρ`. The iteration is deterministic in `seed`.
///
/// # Panics
/// Panics if `n == 0`, `groups` is empty, `iters == 0`, or any member is
/// out of range.
pub fn rho_power(n: usize, groups: &[Vec<usize>], iters: usize, seed: u64) -> f64 {
    assert!(n > 0, "empty cluster");
    assert!(!groups.is_empty(), "need at least one observed group");
    assert!(iters > 0, "need at least one iteration");
    for g in groups {
        for &w in g {
            assert!(w < n, "worker {w} out of range (N = {n})");
        }
    }
    if n == 1 {
        return 0.0;
    }
    // splitmix64 init: deterministic, dependency-free.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut v: Vec<f64> = (0..n)
        .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
        .collect();
    let deflate = |v: &mut [f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        for x in v.iter_mut() {
            *x -= mean;
        }
    };
    let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
    deflate(&mut v);
    let mut rho = 0.0;
    let inv_k = 1.0 / groups.len() as f64;
    let mut y = vec![0.0; n];
    for _ in 0..iters {
        let before = norm(&v);
        if before < 1e-300 {
            // v fell entirely inside the ones eigenspace (e.g. N = 1 or a
            // pathological start): the deflated spectrum is empty-ish.
            return 0.0;
        }
        // y = E[W]·v = v + (1/K)·Σ_k Δ_k, Δ_k sparse on the members.
        y.copy_from_slice(&v);
        for g in groups {
            if g.is_empty() {
                continue;
            }
            let mean = g.iter().map(|&w| v[w]).sum::<f64>() / g.len() as f64;
            for &w in g {
                y[w] += (mean - v[w]) * inv_k;
            }
        }
        deflate(&mut y);
        let after = norm(&y);
        rho = after / before;
        // Normalize to keep magnitudes sane across iterations.
        if after > 1e-300 {
            for x in y.iter_mut() {
                *x /= after;
            }
        }
        std::mem::swap(&mut v, &mut y);
    }
    rho.clamp(0.0, 1.0)
}

/// The error coefficient `ρ̄ = ρ/(1−ρ) + 2√ρ/(1−√ρ)²` of Theorem 1.
///
/// # Panics
/// Panics unless `0 ≤ rho < 1` (Assumption 2.3 requires a spectral gap).
pub fn rho_bar(rho: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&rho),
        "rho must lie in [0, 1), got {rho}"
    );
    let sqrt = rho.sqrt();
    rho / (1.0 - rho) + 2.0 * sqrt / ((1.0 - sqrt) * (1.0 - sqrt))
}

/// Computes the spectral report of an expected synchronization matrix.
///
/// `e_w` must be symmetric (constant partial reduce always yields symmetric
/// `W_k`, hence symmetric expectation). The top eigenvalue of a doubly
/// stochastic matrix is 1; `ρ` is the largest magnitude among the rest.
pub fn spectral_gap(e_w: &Tensor) -> Result<SpectralReport, TensorError> {
    let eigenvalues = symmetric_eigenvalues(e_w, JacobiOptions::default())?;
    // eigenvalues are sorted descending; λ1 ≈ 1.
    let rho = match (eigenvalues.get(1), eigenvalues.last()) {
        (Some(lambda_2), Some(lambda_n)) => lambda_2.abs().max(lambda_n.abs()).min(1.0),
        _ => 0.0,
    };
    // Clamp tiny negatives from float error; snap near-1 values (a
    // disconnected schedule's repeated unit eigenvalue) to exactly 1.
    let rho = rho.max(0.0);
    let rho = if rho > 1.0 - 1e-6 { 1.0 } else { rho };
    let bar = if rho < 1.0 {
        rho_bar(rho)
    } else {
        f64::INFINITY
    };
    Ok(SpectralReport {
        rho,
        rho_bar: bar,
        eigenvalues,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_n3_p2_matches_paper_fig4a() {
        // Fig. 4(a): N=3, P=2, uniform groups ⇒ ρ = 0.5.
        let w = expected_sync_matrix_uniform(3, 2);
        let r = spectral_gap(&w).unwrap();
        assert!((r.eigenvalues[0] - 1.0).abs() < 1e-5);
        assert!((r.rho - 0.5).abs() < 1e-5, "rho = {}", r.rho);
    }

    #[test]
    fn heterogeneous_n3_p2_matches_paper_fig4b() {
        // Fig. 4(b): worker 3 is 2× slower; pair frequencies
        // {1,2}: 1/2, {1,3}: 1/4, {2,3}: 1/4 ⇒ ρ = 0.625.
        let groups = vec![vec![0, 1], vec![0, 1], vec![0, 2], vec![1, 2]];
        let w = expected_sync_matrix(3, &groups);
        let r = spectral_gap(&w).unwrap();
        assert!((r.rho - 0.625).abs() < 1e-5, "rho = {}", r.rho);
    }

    #[test]
    fn heterogeneity_increases_rho() {
        // More skew toward one pair ⇒ larger ρ (slower spreading).
        let balanced = expected_sync_matrix(3, &[vec![0, 1], vec![0, 2], vec![1, 2]]);
        let skewed = expected_sync_matrix(
            3,
            &[vec![0, 1], vec![0, 1], vec![0, 1], vec![0, 2], vec![1, 2]],
        );
        let r_b = spectral_gap(&balanced).unwrap();
        let r_s = spectral_gap(&skewed).unwrap();
        assert!(r_s.rho > r_b.rho);
        assert!(r_s.rho_bar > r_b.rho_bar);
    }

    #[test]
    fn allreduce_has_zero_rho() {
        // P = N: every W_k is the uniform matrix; ρ = 0, network error 0.
        let w = expected_sync_matrix_uniform(4, 4);
        let r = spectral_gap(&w).unwrap();
        assert!(r.rho < 1e-6, "rho = {}", r.rho);
        assert!(r.rho_bar < 1e-2);
    }

    #[test]
    fn disconnected_schedule_has_rho_one() {
        // Isolated pairs {0,1} and {2,3}: E[W] has a repeated eigenvalue 1
        // ⇒ ρ = 1 (no spectral gap; Assumption 2.3 violated).
        let w = expected_sync_matrix(4, &[vec![0, 1], vec![2, 3]]);
        let r = spectral_gap(&w).unwrap();
        assert!((r.rho - 1.0).abs() < 1e-6, "rho = {}", r.rho);
        assert!(r.rho_bar.is_infinite());
    }

    #[test]
    fn uniform_closed_form_matches_empirical_average() {
        // Enumerate all C(4,2)=6 pairs; empirical average over the full
        // enumeration must equal the closed form.
        let n = 4;
        let mut groups = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                groups.push(vec![i, j]);
            }
        }
        let emp = expected_sync_matrix(n, &groups);
        let closed = expected_sync_matrix_uniform(n, 2);
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (emp.at(&[i, j]) - closed.at(&[i, j])).abs() < 1e-6,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn larger_p_shrinks_rho_in_uniform_case() {
        let mut prev = f64::INFINITY;
        for p in 2..=8 {
            let w = expected_sync_matrix_uniform(8, p);
            let r = spectral_gap(&w).unwrap();
            assert!(r.rho < prev, "P={p}: rho {} !< {prev}", r.rho);
            prev = r.rho;
        }
    }

    #[test]
    fn rho_bar_monotone_and_zero_at_zero() {
        assert_eq!(rho_bar(0.0), 0.0);
        let mut prev = 0.0;
        for i in 1..10 {
            let r = i as f64 / 10.0;
            let v = rho_bar(r);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "[0, 1)")]
    fn rho_bar_rejects_one() {
        rho_bar(1.0);
    }

    #[test]
    fn rho_uniform_matches_jacobi() {
        for (n, p) in [(3, 2), (8, 3), (8, 5), (16, 4), (4, 4)] {
            let w = expected_sync_matrix_uniform(n, p);
            let r = spectral_gap(&w).unwrap();
            let closed = rho_uniform(n, p);
            assert!(
                (r.rho - closed).abs() < 1e-5,
                "N={n} P={p}: jacobi {} vs closed {closed}",
                r.rho
            );
        }
    }

    #[test]
    fn rho_power_matches_jacobi_on_fig4_cases() {
        // Fig. 4(a): uniform pairs over N=3 ⇒ ρ = 0.5.
        let uniform = vec![vec![0, 1], vec![0, 2], vec![1, 2]];
        let est = rho_power(3, &uniform, 500, 7);
        assert!((est - 0.5).abs() < 1e-4, "uniform est {est}");
        // Fig. 4(b): skewed pair frequencies ⇒ ρ = 0.625.
        let skewed = vec![vec![0, 1], vec![0, 1], vec![0, 2], vec![1, 2]];
        let est = rho_power(3, &skewed, 500, 7);
        assert!((est - 0.625).abs() < 1e-4, "skewed est {est}");
    }

    #[test]
    fn rho_power_detects_disconnected_schedule() {
        // Isolated pairs: a second unit eigenvalue survives deflation.
        let est = rho_power(4, &[vec![0, 1], vec![2, 3]], 500, 3);
        assert!(est > 1.0 - 1e-6, "est {est}");
    }

    #[test]
    fn rho_power_matches_jacobi_on_random_groups() {
        // A deterministic pseudo-random schedule over N=12, P=3.
        let mut groups = Vec::new();
        let mut x = 5u64;
        for _ in 0..40 {
            let mut g = Vec::new();
            while g.len() < 3 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let w = (x >> 33) as usize % 12;
                if !g.contains(&w) {
                    g.push(w);
                }
            }
            groups.push(g);
        }
        let jac = spectral_gap(&expected_sync_matrix(12, &groups)).unwrap();
        let est = rho_power(12, &groups, 2000, 11);
        assert!(
            (est - jac.rho).abs() < 1e-3,
            "power {est} vs jacobi {}",
            jac.rho
        );
    }
}
