//! Nonlinearities and row-wise classification ops.

use crate::tensor::Tensor;

/// Elementwise ReLU, returning a new tensor.
pub fn relu(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    for v in out.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    out
}

/// Backward pass of ReLU: masks `grad` by the sign of the forward *input*.
///
/// # Panics
/// Panics if `input` and `grad` have different shapes.
pub fn relu_backward(input: &Tensor, grad: &Tensor) -> Tensor {
    assert_eq!(
        input.shape(),
        grad.shape(),
        "relu_backward shape mismatch: {} vs {}",
        input.shape(),
        grad.shape()
    );
    let mut out = grad.clone();
    for (g, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
        if x <= 0.0 {
            *g = 0.0;
        }
    }
    out
}

/// Row-wise numerically-stable softmax of a rank-2 tensor.
///
/// # Panics
/// Panics if `x` is not rank-2.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().rank(), 2, "softmax_rows requires rank-2 input");
    let (rows, cols) = (x.shape().dim(0), x.shape().dim(1));
    let mut out = x.clone();
    for r in 0..rows {
        let row = &mut out.as_mut_slice()[r * cols..(r + 1) * cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Row-wise numerically-stable log-softmax of a rank-2 tensor.
///
/// # Panics
/// Panics if `x` is not rank-2.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(
        x.shape().rank(),
        2,
        "log_softmax_rows requires rank-2 input"
    );
    let (rows, cols) = (x.shape().dim(0), x.shape().dim(1));
    let mut out = x.clone();
    for r in 0..rows {
        let row = &mut out.as_mut_slice()[r * cols..(r + 1) * cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row
            .iter()
            .map(|&v| ((v - max) as f64).exp())
            .sum::<f64>()
            .ln() as f32;
        for v in row.iter_mut() {
            *v = *v - max - log_sum;
        }
    }
    out
}

/// Index of the maximum entry in each row of a rank-2 tensor
/// (ties resolve to the lowest index).
///
/// # Panics
/// Panics if `x` is not rank-2 or has zero columns.
pub fn argmax_rows(x: &Tensor) -> Vec<usize> {
    assert_eq!(x.shape().rank(), 2, "argmax_rows requires rank-2 input");
    let (rows, cols) = (x.shape().dim(0), x.shape().dim(1));
    assert!(cols > 0, "argmax_rows requires at least one column");
    (0..rows)
        .map(|r| {
            let row = x.row(r);
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_zeroes_negatives() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], [3]).unwrap();
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_by_input_sign() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], [3]).unwrap();
        let g = Tensor::from_vec(vec![5.0, 5.0, 5.0], [3]).unwrap();
        assert_eq!(relu_backward(&x, &g).as_slice(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], [2, 3]).unwrap();
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(r).iter().all(|&v| v > 0.0));
        }
        // Monotone: larger logit ⇒ larger probability.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0], [1, 2]).unwrap();
        let s = softmax_rows(&x);
        assert!(s.all_finite());
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let x = Tensor::from_vec(vec![0.5, -0.25, 2.0], [1, 3]).unwrap();
        let s = softmax_rows(&x);
        let ls = log_softmax_rows(&x);
        for (a, b) in s.as_slice().iter().zip(ls.as_slice()) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_rows_picks_max_and_breaks_ties_low() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 5.0, 5.0, 0.0], [2, 3]).unwrap();
        assert_eq!(argmax_rows(&x), vec![1, 0]);
    }
}
