//! Known-bad fixture for the `lock-discipline` pass: one lock-order
//! inversion (two edge findings) plus one blocking call under a guard.

pub fn ab(a: &Mutex<u64>, b: &Mutex<u64>) {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    *ga += *gb;
}

pub fn ba(a: &Mutex<u64>, b: &Mutex<u64>) {
    let gb = b.lock().unwrap();
    let ga = a.lock().unwrap();
    *gb += *ga;
}

pub fn send_under_lock(m: &Mutex<u64>, tx: &Sender<u64>) {
    let g = m.lock().unwrap();
    tx.send(*g).ok();
}
