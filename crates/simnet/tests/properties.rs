//! Property-based tests for the discrete-event simulator.

use preduce_simnet::{
    EventQueue, FifoResource, GpuSharingFleet, HeterogeneityModel, Jitter, MarkovFleet,
    NetworkModel, SimTime, SpeedFleet, UniformFleet,
};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #[test]
    fn event_queue_pops_in_nondecreasing_time(
        times in prop::collection::vec(0.0f64..1e6, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::new(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev, "time went backwards");
            prev = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn event_queue_equal_times_fifo(
        n in 1usize..100,
        t in 0.0f64..100.0,
    ) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::new(t), i);
        }
        let order: Vec<usize> =
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn compute_times_always_positive_and_finite(
        seed in any::<u64>(),
        kind in 0u8..4,
        flops in 1e6f64..1e12,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jitter = Jitter::LogNormal { sigma: 0.4 };
        let mut fleet: Box<dyn HeterogeneityModel> = match kind {
            0 => Box::new(UniformFleet::new(4, 1e9, jitter)),
            1 => Box::new(GpuSharingFleet::new(4, 3, 1e9, jitter)),
            2 => Box::new(SpeedFleet::new(
                vec![1.0, 2.0, 0.5, 7.0],
                1e9,
                jitter,
            )),
            _ => Box::new(MarkovFleet::new(4, 1e9, 0.2, 0.3, 6.0, jitter)),
        };
        for w in 0..4 {
            for _ in 0..10 {
                let t = fleet.compute_time(w, flops, SimTime::ZERO, &mut rng);
                prop_assert!(t.is_finite() && t > 0.0, "t = {t}");
            }
        }
    }

    #[test]
    fn ring_cost_monotone_in_bytes_and_bounded(
        p in 2usize..16,
        kb in 1u64..100_000,
    ) {
        let net = NetworkModel::ten_gbe();
        let bytes = kb * 1024;
        let t1 = net.ring_allreduce_time(p, bytes);
        let t2 = net.ring_allreduce_time(p, bytes * 2);
        prop_assert!(t2 > t1);
        // Lower bound: the pure bandwidth term 2(p−1)/p · bytes/BW.
        let bw_term = 2.0 * (p as f64 - 1.0) / p as f64 * bytes as f64
            / net.bandwidth;
        prop_assert!(t1 >= bw_term);
    }

    #[test]
    fn fifo_resource_serializes_and_conserves_busy_time(
        arrivals in prop::collection::vec((0.0f64..100.0, 0.0f64..5.0), 1..50),
    ) {
        let mut r = FifoResource::new();
        let mut total = 0.0;
        let mut prev_done = SimTime::ZERO;
        // Feed requests in arrival order.
        let mut sorted = arrivals.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (at, dur) in &sorted {
            let done = r.acquire(SimTime::new(*at), *dur);
            // Completions are ordered (FIFO) and never before arrival+dur.
            prop_assert!(done >= prev_done);
            prop_assert!(done.seconds() >= at + dur - 1e-12);
            prev_done = done;
            total += dur;
        }
        prop_assert!((r.busy_seconds() - total).abs() < 1e-9);
        prop_assert_eq!(r.served(), sorted.len() as u64);
    }

    #[test]
    fn gpu_sharing_slowdown_equals_residents(
        n in 2usize..12,
        hl in 2usize..6,
    ) {
        prop_assume!(hl <= n);
        let mut fleet = GpuSharingFleet::new(n, hl, 1e9, Jitter::None);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let shared = fleet.compute_time(0, 1e9, SimTime::ZERO, &mut rng);
        prop_assert!((shared - hl as f64).abs() < 1e-9);
        if hl < n {
            let solo =
                fleet.compute_time(n - 1, 1e9, SimTime::ZERO, &mut rng);
            prop_assert!((solo - 1.0).abs() < 1e-9);
        }
    }
}
