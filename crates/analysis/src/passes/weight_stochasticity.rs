//! Pass 3 — `weight-stochasticity`: reduce weight rows come from
//! `core::weights`, nowhere else.
//!
//! Theorem 1's convergence bound needs every synchronization matrix to
//! be doubly stochastic (Eq. 9), which holds *by construction* exactly
//! when every weight row is built by `core::weights` (constant `1/P`
//! rows, EMA dynamic rows, singleton rows). A hand-rolled
//! `vec![1.0 / p; p]` elsewhere is one refactor away from a row that
//! silently breaks the precondition. Gradient-scale arithmetic
//! (`grad.scale(1.0 / n)`) and learning-rate scales (`1.0 / staleness`)
//! are not weight rows and are not flagged.

use crate::scan::{has_word, SourceFile};
use crate::Finding;

/// Pass name used in findings and allow directives.
pub const NAME: &str = "weight-stochasticity";

/// The one module allowed to build weight rows.
pub const HOME: &str = "crates/core/src/weights.rs";

/// Runs the pass on one file (the caller excludes [`HOME`]).
pub fn run(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, line) in file.non_test_lines() {
        let uniform_literal = line.contains("vec![1.0 /") || line.contains("vec![1. /");
        let named_weight_build =
            has_word(line, "weights") && (line.contains("vec![") || line.contains("1.0 /"));
        if uniform_literal || named_weight_build {
            findings.push(Finding {
                pass: NAME.into(),
                file: file.path.clone(),
                line: i + 1,
                message: if uniform_literal {
                    "uniform weight row built by hand; use `core::weights::constant_weights` so the doubly-stochastic precondition holds by construction".into()
                } else {
                    "weight row constructed outside `core::weights`; route it through the blessed constructors (Thm. 1 precondition)".into()
                },
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_rolled_rows_flagged() {
        let f = SourceFile::from_source(
            "crates/x/src/a.rs",
            "fn f(n: usize) {\n    let weights = vec![1.0 / n as f32; n];\n    let w = vec![1.0 / n as f32; n];\n    let d = GroupAssignment { weights: vec![1.0], group };\n}\n",
        );
        let got = run(&f);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn scales_and_blessed_calls_clean() {
        let f = SourceFile::from_source(
            "crates/x/src/a.rs",
            "fn f(n: usize, s: u64) {\n    grad.scale(1.0 / n as f32);\n    let lr = 1.0 / s as f32;\n    let weights = constant_weights(n);\n    let link_slowdown = vec![1.0; n];\n}\n",
        );
        assert!(run(&f).is_empty());
    }
}
