//! CLI subcommands: experiment runs, spectral analysis, catalog listing,
//! and the multi-process fleet roles (`controller` / `worker`).

use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use partial_reduce::runtime::{LivenessPolicy, RuntimeOptions};
use partial_reduce::{
    expected_sync_matrix, spectral_gap, AggregationMode, Controller, ControllerConfig,
    InvariantChecker, JsonlSink, NullSink, TraceSink,
};
use preduce_data::{cifar100_like, cifar10_like, imagenet_like, DatasetPreset};
use preduce_models::zoo;
use preduce_simnet::{EventQueue, HeterogeneityModel, Jitter, SimTime, SpeedFleet, UniformFleet};
use preduce_trainer::engine::process;
use preduce_trainer::{engine, Backend, ElasticOptions, ExperimentConfig, FaultPlan, Strategy};
use rand::{rngs::StdRng, SeedableRng};

use crate::args::{ArgError, Args};

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing/validation failed.
    Args(ArgError),
    /// An unknown subcommand or catalog name.
    Unknown(String),
    /// A replayed trace broke this many control-plane invariants.
    Invariant(usize),
    /// `preduce lint` found this many rule violations.
    Lint(usize),
    /// An operation that should not fail did (I/O, serialization).
    Internal(String),
}

impl CliError {
    /// Process exit code: usage errors are 2 (conventional), internal
    /// failures 3, invariant violations 4, lint findings 1 (matching the
    /// standalone `preduce-analysis` binary so CI gates compose).
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Args(_) | CliError::Unknown(_) => 2,
            CliError::Internal(_) => 3,
            CliError::Invariant(_) => 4,
            CliError::Lint(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Unknown(what) => write!(f, "unknown {what}"),
            CliError::Invariant(n) => {
                write!(f, "trace violates {n} invariant(s)")
            }
            CliError::Lint(n) => write!(f, "lint found {n} violation(s)"),
            CliError::Internal(what) => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// A parsed subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// `preduce run …` — one experiment under virtual time.
    Run,
    /// `preduce controller …` — the controller role of a multi-process
    /// P-Reduce fleet: bind, accept, serve.
    Controller,
    /// `preduce worker …` — one worker process of a multi-process fleet.
    Worker,
    /// `preduce spectral …` — simulate group formation, report ρ and ρ̄.
    Spectral,
    /// `preduce scale …` — signal-level control-plane simulation at
    /// N = 10³–10⁴ with live invariant checking (DESIGN.md §15).
    Scale,
    /// `preduce trace --check trace.jsonl` — replay a recorded trace
    /// through the invariant checker.
    Trace,
    /// `preduce lint` — run the workspace static-analysis passes.
    Lint,
    /// `preduce list` — strategies, models, presets.
    List,
    /// `preduce help`.
    Help,
}

impl Command {
    /// Maps the first CLI token to a command.
    pub fn from_name(name: &str) -> Result<Self, CliError> {
        match name {
            "run" => Ok(Command::Run),
            "controller" => Ok(Command::Controller),
            "worker" => Ok(Command::Worker),
            "spectral" => Ok(Command::Spectral),
            "scale" => Ok(Command::Scale),
            "trace" => Ok(Command::Trace),
            "lint" => Ok(Command::Lint),
            "list" => Ok(Command::List),
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(CliError::Unknown(format!("command `{other}`"))),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
preduce — heterogeneity-aware distributed training via partial reduce

USAGE:
  preduce run      [--strategy S] [--model M] [--preset D] [--workers N]
                   [--hl HL] [--p P] [--dynamic true] [--threshold T]
                   [--max-updates K] [--seed SEED] [--json true]
                   [--backend sim|threaded] [--iters K]
                   [--config experiment.json] [--trace-out trace.jsonl]
                   [--fault-plan SPEC] [--checkpoint-dir DIR]
                   [--checkpoint-every K] [--restore-from DIR]
  preduce controller --listen ADDR [--workers N] [--p P] [--dynamic true]
                   [--liveness-ms MS] [--miss-threshold K]
                   [--trace-out trace.jsonl] [--config experiment.json]
                   [--checkpoint-dir DIR] [--checkpoint-every K]
                   [--restore-from DIR]
  preduce worker   --connect ADDR --rank R [--workers N] [--iters K]
                   [--seed SEED] [--config experiment.json]
                   [--checkpoint-dir DIR] [--checkpoint-every K]
                   [--restore-from DIR]
  preduce spectral [--workers N] [--p P] [--slow \"1,1,2\"] [--rounds R]
  preduce scale    [--workers N] [--p P] [--signals K]
                   [--hetero uniform|gpu-sharing|markov] [--dynamic true]
                   [--seed SEED] [--json true]
  preduce trace    --check trace.jsonl
  preduce lint     [--root PATH] [--format text|json|github]
                   [--pass a,b,...]
  preduce list
  preduce help

STRATEGIES (for --strategy):
  all-reduce | eager-reduce | ad-psgd | d-psgd | ps-bsp | ps-asp |
  ps-ssp | ps-hete | ps-bk | p-reduce (default)

BACKENDS (for --backend):
  sim (default)  — deterministic virtual-time simulator; stops at the
                   accuracy threshold or --max-updates.
  threaded       — real OS threads over the message-passing runtime;
                   each worker performs --iters local updates (wall
                   clock replaces virtual time, no convergence trace).

FAULT INJECTION:
  `run --fault-plan SPEC` executes a P-Reduce run under a chaos plan
  (DESIGN.md section 11). SPEC is a comma-separated list of
  crash:W@I (worker W fail-stops after I local updates),
  stall:WxF[@I] (W becomes F x slower from iteration I),
  delay:W+S (W's control signals arrive S seconds late), and
  latejoin:W+S (W starts S seconds late). Example:
  --fault-plan \"crash:3@40,stall:5x4@10\". Honored by the p-reduce
  strategy on both backends; other strategies ignore the plan. The sim
  backend additionally honors restore:W@U (worker W, previously crashed,
  rejoins from its snapshot once the fleet has applied U updates; needs
  --checkpoint-dir or --restore-from).

ELASTICITY (DESIGN.md section 14):
  --checkpoint-dir DIR enables periodic snapshots: every worker writes
  its durable state (parameters, momentum, counters) every
  --checkpoint-every iterations (default 32), and the controller writes
  its roster/group-history snapshot at the same cadence in formed
  groups. Writes are atomic (write-then-rename, checksummed), so a
  mid-write crash leaves the previous snapshot intact. --restore-from
  DIR warm-starts workers from the snapshots found there before
  training begins; for `controller` it validates the saved lineage
  against the fleet about to be served (the roster itself rebuilds
  live at accept time). Omitting every elasticity flag leaves runs
  bit-identical to a build without the subsystem.

MULTI-PROCESS FLEETS (DESIGN.md section 12):
  `controller` binds ADDR (use port 0 to let the OS choose; the chosen
  address is printed as `listening on HOST:PORT`), accepts exactly
  --workers process handshakes, and serves P-Reduce until every worker
  departs. `worker` rebuilds the same deterministic replica fleet from
  the shared config (same --workers/--seed/--model on every process),
  dials the controller, and runs --iters local-update + reduce rounds;
  group averages flow worker-to-worker over a TCP star-reduce, never
  through the controller. Grouping policy (--p, --dynamic) is
  controller-side; heartbeat liveness defaults on (--liveness-ms 0
  disables it). Each worker prints one final
  `worker rank=R iterations=K accuracy=A degraded=D` line.

SCALE CAMPAIGN (DESIGN.md section 15):
  `scale` runs the signal-level control-plane simulation: --workers ready
  signals stream through the real controller under a standard
  heterogeneity preset (--hetero), every trace event is checked live by
  the streaming invariant checker, and the report carries throughput,
  group-formation latency, the measured schedule's rho vs the uniform
  closed form, Eq. 9 weight spread, and windowed union-find work
  counters. Defaults: N=1000, P=8, 50000 signals, uniform fleet.
  --json true emits the full report as JSON. Exit is nonzero if any
  invariant is violated.

TRACING:
  `run --trace-out FILE` records every P-Reduce control-plane decision as
  one JSON object per line; `trace --check FILE` replays the file and
  asserts the paper's invariants (group size, weight rows, fast-forward,
  frozen-schedule repair, departures). The check is streaming: events
  feed an incremental checker line by line, so traces with millions of
  events verify in bounded memory. Exit is nonzero on violations.

LINTING:
  `lint` runs the workspace static-analysis passes (panic-path,
  lock-discipline, weight-stochasticity, trace-coverage,
  event-conformance, unsafe-audit, reactor-blocking) over the source
  tree — the same engine as `cargo run -p preduce-analysis -- check`.
  --format json emits a stable machine-readable report
  (schema `preduce-lint/1`); --format github emits CI annotations;
  --pass a,b runs only the named passes. Exit is nonzero on findings;
  see DESIGN.md section 10.
";

fn parse_strategy(args: &Args) -> Result<Strategy, CliError> {
    let name = args.get("strategy").unwrap_or("p-reduce");
    let p: usize = args.get_or("p", 3)?;
    let dynamic: bool = args.get_or("dynamic", false)?;
    Ok(match name {
        "all-reduce" => Strategy::AllReduce,
        "eager-reduce" => Strategy::EagerReduce,
        "ad-psgd" => Strategy::AdPsgd,
        "d-psgd" => Strategy::DPsgd,
        "ps-bsp" => Strategy::PsBsp,
        "ps-asp" => Strategy::PsAsp,
        "ps-ssp" => Strategy::PsSsp {
            bound: args.get_or("bound", 8)?,
        },
        "ps-hete" => Strategy::PsHete,
        "ps-bk" => Strategy::PsBackup {
            backups: args.get_or("backups", 3)?,
        },
        "p-reduce" => Strategy::PReduce { p, dynamic },
        other => return Err(CliError::Unknown(format!("strategy `{other}`"))),
    })
}

fn parse_preset(name: &str) -> Result<DatasetPreset, CliError> {
    match name {
        "cifar10-like" => Ok(cifar10_like()),
        "cifar100-like" => Ok(cifar100_like()),
        "imagenet-like" => Ok(imagenet_like()),
        other => Err(CliError::Unknown(format!("preset `{other}`"))),
    }
}

/// Builds [`ElasticOptions`] from the checkpoint/restore flags shared by
/// `run`, `controller`, and `worker` (DESIGN.md §14). Absent flags yield
/// the inert options, leaving the run bit-identical to one without them.
fn elastic_from_args(args: &Args) -> Result<ElasticOptions, CliError> {
    let mut elastic = ElasticOptions::none();
    match args.get("checkpoint-dir") {
        Some(dir) => {
            let every: u64 = args.get_or("checkpoint-every", 32)?;
            if every == 0 {
                return Err(CliError::Unknown(
                    "checkpoint cadence `0` (must be at least 1)".to_string(),
                ));
            }
            elastic = elastic.with_policy(dir, every);
        }
        None => {
            if args.get("checkpoint-every").is_some() {
                return Err(CliError::Unknown(
                    "flag --checkpoint-every without --checkpoint-dir".to_string(),
                ));
            }
        }
    }
    if let Some(dir) = args.get("restore-from") {
        elastic = elastic.with_restore(dir);
    }
    Ok(elastic)
}

/// Builds an [`ExperimentConfig`] from CLI flags (defaults mirror Table 1).
/// `--config file.json` loads a serialized config instead; other flags
/// then override its fields where given.
pub fn config_from_args(args: &Args) -> Result<ExperimentConfig, CliError> {
    if let Some(path) = args.get("config") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Unknown(format!("config file `{path}`: {e}")))?;
        let mut c: ExperimentConfig = serde_json::from_str(&text)
            .map_err(|e| CliError::Unknown(format!("config file `{path}`: {e}")))?;
        c.num_workers = args.get_or("workers", c.num_workers)?;
        c.threshold = args.get_or("threshold", c.threshold)?;
        c.max_updates = args.get_or("max-updates", c.max_updates)?;
        c.eval_every = args.get_or("eval-every", c.eval_every)?;
        c.seed = args.get_or("seed", c.seed)?;
        c.validate();
        return Ok(c);
    }
    let model = args.get("model").unwrap_or("resnet34");
    let model = zoo::by_name(model).ok_or_else(|| CliError::Unknown(format!("model `{model}`")))?;
    let preset = parse_preset(args.get("preset").unwrap_or("cifar10-like"))?;
    let hl: usize = args.get_or("hl", 1)?;

    let mut c = ExperimentConfig::table1(model, preset, hl);
    c.num_workers = args.get_or("workers", c.num_workers)?;
    c.threshold = args.get_or("threshold", 0.84)?;
    c.max_updates = args.get_or("max-updates", 20_000)?;
    c.eval_every = args.get_or("eval-every", 32)?;
    c.seed = args.get_or("seed", c.seed)?;
    c.sgd.lr = args.get_or("lr", 0.03)?;
    c.math_batch_size = args.get_or("batch", 8)?;
    c.label_noise = args.get_or("label-noise", 0.05)?;
    c.validate();
    Ok(c)
}

/// Executes a command, writing human output to `out`. Returns the process
/// exit code.
pub fn run_command(
    command: Command,
    args: &Args,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    match command {
        Command::Help => {
            let _ = writeln!(out, "{USAGE}");
        }
        Command::List => {
            let _ = writeln!(out, "strategies:");
            for s in Strategy::table1_lineup(8) {
                let _ = writeln!(out, "  {}", s.label());
            }
            let _ = writeln!(out, "models:");
            for m in zoo::all() {
                let _ = writeln!(
                    out,
                    "  {:<12} {:>6.1}M params, {:>5.1} GFLOPs/example",
                    m.name,
                    m.profile.param_count as f64 / 1e6,
                    m.profile.flops_per_example / 1e9
                );
            }
            let _ = writeln!(out, "presets:");
            for p in [cifar10_like(), cifar100_like(), imagenet_like()] {
                let _ = writeln!(
                    out,
                    "  {:<14} {} classes, {} samples",
                    p.name, p.config.num_classes, p.config.num_samples
                );
            }
        }
        Command::Run => {
            let strategy = parse_strategy(args)?;
            let mut config = config_from_args(args)?;
            let backend = match args.get("backend") {
                None => Backend::Sim,
                Some(name) => name.parse::<Backend>().map_err(|_| {
                    CliError::Unknown(format!("backend `{name}` (expected `sim` or `threaded`)"))
                })?,
            };
            if args.get("iters").is_some() {
                config.threaded_iters = Some(args.get_or("iters", 0)?);
            }
            let faults = match args.get("fault-plan") {
                None => FaultPlan::none(),
                Some(spec) => FaultPlan::parse(spec)
                    .map_err(|e| CliError::Unknown(format!("fault plan: {e}")))?,
            };
            let elastic = elastic_from_args(args)?;
            let result = match args.get("trace-out") {
                Some(path) => {
                    let sink = Arc::new(
                        JsonlSink::create(path)
                            .map_err(|e| CliError::Unknown(format!("trace file `{path}`: {e}")))?,
                    );
                    let r = engine::run_elastic(
                        strategy,
                        &config,
                        backend,
                        sink.clone(),
                        faults,
                        elastic,
                    );
                    sink.flush();
                    r
                }
                None => engine::run_elastic(
                    strategy,
                    &config,
                    backend,
                    Arc::new(NullSink),
                    faults,
                    elastic,
                ),
            }
            .result;
            if args.get_or("json", false)? {
                let text = serde_json::to_string_pretty(&result)
                    .map_err(|e| CliError::Internal(format!("serialize result: {e}")))?;
                let _ = writeln!(out, "{text}");
            } else {
                let _ = writeln!(
                    out,
                    "{:<22} run time {:>9.1}s | {:>6} updates | {:>8.3}s/update | acc {:.3}{}",
                    result.strategy,
                    result.run_time,
                    result.updates,
                    result.per_update_time(),
                    result.final_accuracy,
                    if result.converged { "" } else { "  (hit cap)" },
                );
            }
        }
        Command::Controller => {
            let config = config_from_args(args)?;
            let p: usize = args.get_or("p", 3)?;
            let dynamic: bool = args.get_or("dynamic", false)?;
            let listen = args.get("listen").unwrap_or("127.0.0.1:0").to_string();
            let controller_cfg =
                Strategy::preduce_controller_config(p, dynamic, config.num_workers);
            let liveness_ms: u64 = args.get_or("liveness-ms", 100)?;
            let miss: u64 = args.get_or("miss-threshold", 5)?;
            let liveness = if liveness_ms == 0 {
                None
            } else {
                Some(LivenessPolicy::new(
                    Duration::from_millis(liveness_ms),
                    miss.max(1),
                ))
            };
            let sink: Arc<dyn TraceSink> = match args.get("trace-out") {
                Some(path) => Arc::new(
                    JsonlSink::create(path)
                        .map_err(|e| CliError::Unknown(format!("trace file `{path}`: {e}")))?,
                ),
                None => Arc::new(NullSink),
            };
            let elastic = elastic_from_args(args)?;
            // Controller restore is validate-only (DESIGN.md §14): the
            // accept phase rebuilds the roster live, so the snapshot only
            // gates serving a fleet that contradicts the saved lineage.
            if let Some(dir) = &elastic.restore_from {
                let snap = preduce_trainer::elastic::validate_controller_restore(
                    dir.as_path(),
                    config.num_workers,
                )
                .map_err(|e| CliError::Unknown(format!("restore-from: {e}")))?;
                let _ = writeln!(
                    out,
                    "resuming lineage: groups={} repairs={} active={}",
                    snap.groups_formed, snap.repairs, snap.active
                );
            }
            let on_groups = match &elastic.policy {
                Some(pol) => Some(
                    preduce_trainer::elastic::controller_group_hook(pol)
                        .map_err(|e| CliError::Unknown(format!("checkpoint-dir: {e}")))?,
                ),
                None => None,
            };
            let report = process::run_controller(
                controller_cfg,
                &listen,
                RuntimeOptions {
                    sink: sink.clone(),
                    liveness,
                    on_groups,
                },
                |addr| {
                    // The e2e harness (and any launcher) parses this line
                    // to learn the port when --listen ends in :0.
                    let _ = writeln!(out, "listening on {addr}");
                    let _ = out.flush();
                },
            )
            .map_err(|e| CliError::Internal(format!("controller: {e}")))?;
            sink.flush();
            let s = report.stats;
            let _ = writeln!(
                out,
                "controller done: workers={} groups={} repairs={} singletons={} evictions={}",
                report.workers, s.groups_formed, s.repairs, s.singletons, s.evictions
            );
        }
        Command::Worker => {
            let connect = args.get("connect").ok_or_else(|| {
                CliError::Unknown(
                    "worker invocation (usage: preduce worker --connect ADDR --rank R)".to_string(),
                )
            })?;
            let addr: SocketAddr = connect
                .parse()
                .map_err(|_| CliError::Unknown(format!("controller address `{connect}`")))?;
            let rank_s = args.get("rank").ok_or_else(|| {
                CliError::Unknown(
                    "worker invocation (usage: preduce worker --connect ADDR --rank R)".to_string(),
                )
            })?;
            let rank: usize = rank_s.parse().map_err(|_| {
                CliError::Args(ArgError::BadValue {
                    flag: "rank".into(),
                    value: rank_s.into(),
                    expected: "usize",
                })
            })?;
            let config = config_from_args(args)?;
            let iters: u64 = args.get_or("iters", engine::DEFAULT_THREADED_ITERS)?;
            let elastic = elastic_from_args(args)?;
            let report = process::run_worker_elastic(
                &config,
                addr,
                rank,
                iters,
                Arc::new(NullSink),
                elastic,
            )
            .map_err(|e| CliError::Internal(format!("worker {rank}: {e}")))?;
            let _ = writeln!(
                out,
                "worker rank={} iterations={} accuracy={:.4} degraded={}",
                report.rank, report.iterations, report.accuracy, report.degraded
            );
        }
        Command::Lint => {
            let root = match args.get("root") {
                Some(p) => {
                    // A typo'd --root would otherwise scan zero files and
                    // report "clean" — a silently green gate.
                    let r = std::path::PathBuf::from(p);
                    if !r.join("crates").is_dir() {
                        return Err(CliError::Unknown(format!(
                            "workspace root `{p}` (no crates/ directory)"
                        )));
                    }
                    r
                }
                None => {
                    let cwd = std::env::current_dir()
                        .map_err(|e| CliError::Internal(format!("current directory: {e}")))?;
                    preduce_analysis::find_workspace_root(&cwd).ok_or_else(|| {
                        CliError::Unknown(
                            "workspace root (run inside the repo or pass --root)".to_string(),
                        )
                    })?
                }
            };
            let format = args.get("format").unwrap_or("text");
            if !matches!(format, "text" | "json" | "github") {
                return Err(CliError::Unknown(format!(
                    "lint format `{format}` (expected text, json, or github)"
                )));
            }
            let selected: Option<Vec<String>> = match args.get("pass") {
                None => None,
                Some(list) => {
                    let names: Vec<String> = list
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect();
                    for n in &names {
                        if !preduce_analysis::passes::ALL.contains(&n.as_str()) {
                            return Err(CliError::Unknown(format!(
                                "lint pass `{n}` (known: {})",
                                preduce_analysis::passes::ALL.join(", ")
                            )));
                        }
                    }
                    if names.is_empty() {
                        return Err(CliError::Unknown(
                            "lint pass list (empty --pass)".to_string(),
                        ));
                    }
                    Some(names)
                }
            };
            let findings = preduce_analysis::run_check_passes(&root, selected.as_deref())
                .map_err(|e| CliError::Internal(format!("lint walk: {e}")))?;
            match format {
                "json" => {
                    let _ = writeln!(out, "{}", preduce_analysis::to_json(&findings));
                }
                "github" => {
                    let _ = write!(out, "{}", preduce_analysis::github_annotations(&findings));
                    if findings.is_empty() {
                        let _ = writeln!(out, "lint: workspace clean");
                    }
                }
                _ => {
                    for f in &findings {
                        let _ = writeln!(out, "{f}");
                    }
                    if findings.is_empty() {
                        let _ = writeln!(out, "lint: workspace clean");
                    }
                }
            }
            if !findings.is_empty() {
                return Err(CliError::Lint(findings.len()));
            }
        }
        Command::Trace => {
            let path = args.get("check").ok_or_else(|| {
                CliError::Unknown(
                    "trace invocation (usage: preduce trace --check FILE)".to_string(),
                )
            })?;
            let report = InvariantChecker::check_jsonl(path)
                .map_err(|e| CliError::Unknown(format!("trace file `{path}`: {e}")))?;
            let _ = write!(out, "{report}");
            if !report.is_clean() {
                return Err(CliError::Invariant(report.violations.len()));
            }
        }
        Command::Scale => {
            let n: usize = args.get_or("workers", 1_000)?;
            let p: usize = args.get_or("p", 8)?;
            let signals: u64 = args.get_or("signals", 50_000)?;
            let hetero = args.get("hetero").unwrap_or("uniform");
            if preduce_simnet::standard_fleet(hetero, 1).is_none() {
                return Err(CliError::Unknown(format!(
                    "heterogeneity preset `{hetero}` (expected uniform, gpu-sharing, or markov)"
                )));
            }
            if p < 2 || p > n || signals == 0 {
                return Err(CliError::Unknown(format!(
                    "scale configuration (need 2 <= P <= N and signals > 0, \
                     got N={n}, P={p}, signals={signals})"
                )));
            }
            let mut cfg = preduce_trainer::ScaleConfig::new(n, p, signals, hetero);
            cfg.dynamic = args.get_or("dynamic", true)?;
            cfg.seed = args.get_or("seed", cfg.seed)?;
            let report = preduce_trainer::run_scale(&cfg);
            if args.get_or("json", false)? {
                let text = serde_json::to_string_pretty(&report)
                    .map_err(|e| CliError::Internal(format!("serialize report: {e}")))?;
                let _ = writeln!(out, "{text}");
            } else {
                let rho = report
                    .rho_measured
                    .map_or_else(|| "n/a".to_string(), |r| format!("{r:.4}"));
                let _ = writeln!(
                    out,
                    "N = {n}, P = {p}, {} signals under `{hetero}`:\n\
                     \x20 throughput  = {:.0} signals/s ({} groups, {} deferrals, {} repairs)\n\
                     \x20 latency     = {:.3}s mean / {:.3}s max (virtual)\n\
                     \x20 rho         = {rho} (uniform reference {:.4})\n\
                     \x20 spread      = {:.4} mean / {:.4} max\n\
                     \x20 union-find  = {} merges, {} rebuilds, {} clean evictions\n\
                     \x20 checker     = {} events, {} violation(s)",
                    report.signals,
                    report.signals_per_sec,
                    report.groups,
                    report.deferrals,
                    report.repairs,
                    report.formation_latency_mean,
                    report.formation_latency_max,
                    report.rho_uniform_ref,
                    report.weight_spread_mean,
                    report.weight_spread_max,
                    report.connectivity.merges,
                    report.connectivity.rebuilds,
                    report.connectivity.clean_evictions,
                    report.checker_events,
                    report.checker_violations,
                );
            }
            if report.checker_violations > 0 {
                return Err(CliError::Invariant(report.checker_violations));
            }
        }
        Command::Spectral => {
            let n: usize = args.get_or("workers", 8)?;
            let p: usize = args.get_or("p", 3)?;
            let rounds: usize = args.get_or("rounds", 20_000)?;
            let fleet: Box<dyn HeterogeneityModel> = match args.get("slow") {
                None => Box::new(UniformFleet::new(n, 1e9, Jitter::LogNormal { sigma: 0.2 })),
                Some(spec) => {
                    let multipliers: Vec<f64> = spec
                        .split(',')
                        .map(|t| {
                            t.trim()
                                .parse()
                                .map_err(|_| CliError::Unknown(format!("multiplier `{t}`")))
                        })
                        .collect::<Result<_, _>>()?;
                    if multipliers.len() != n {
                        return Err(CliError::Unknown(format!(
                            "--slow needs {n} comma-separated values"
                        )));
                    }
                    Box::new(SpeedFleet::new(
                        multipliers,
                        1e9,
                        Jitter::LogNormal { sigma: 0.2 },
                    ))
                }
            };
            let groups = observe_groups(fleet, p, rounds);
            let e_w = expected_sync_matrix(n, &groups);
            let report = spectral_gap(&e_w)
                .map_err(|e| CliError::Internal(format!("spectral analysis of E[W]: {e}")))?;
            let _ = writeln!(
                out,
                "N = {n}, P = {p}, {rounds} observed groups:\n  rho     = {:.4}\n  rho_bar = {:.4}",
                report.rho, report.rho_bar
            );
        }
    }
    Ok(())
}

/// Simulates the FIFO controller on `fleet` and records the formed groups.
fn observe_groups(
    mut fleet: Box<dyn HeterogeneityModel>,
    p: usize,
    rounds: usize,
) -> Vec<Vec<usize>> {
    let n = fleet.num_workers();
    let mut rng = StdRng::seed_from_u64(17);
    let mut controller = Controller::new(ControllerConfig {
        num_workers: n,
        group_size: p,
        mode: AggregationMode::Constant,
        history_window: None,
        frozen_avoidance: true,
    });
    let mut queue = EventQueue::new();
    for w in 0..n {
        let ct = fleet.compute_time(w, 1e9, SimTime::ZERO, &mut rng);
        queue.schedule(SimTime::new(ct), w);
    }
    let mut groups = Vec::with_capacity(rounds);
    while groups.len() < rounds {
        // Every formed group reschedules all of its members, so the queue
        // can never drain before `rounds` groups form; stop early rather
        // than panic if that invariant is ever broken.
        let Some((t, w)) = queue.pop() else { break };
        controller.push_ready(w, 0);
        while let Some(d) = controller.try_form_group() {
            for &m in &d.group {
                let ct = fleet.compute_time(m, 1e9, t, &mut rng);
                queue.schedule(t + ct, m);
            }
            groups.push(d.group);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cmdline: &[&str]) -> (Result<(), CliError>, String) {
        let command = Command::from_name(cmdline[0]).unwrap();
        let args = Args::parse(cmdline[1..].iter().copied()).unwrap();
        let mut out = Vec::new();
        let r = run_command(command, &args, &mut out);
        (r, String::from_utf8(out).unwrap())
    }

    #[test]
    fn list_shows_catalog() {
        let (r, out) = run(&["list"]);
        r.unwrap();
        assert!(out.contains("All-Reduce"));
        assert!(out.contains("resnet34"));
        assert!(out.contains("cifar10-like"));
    }

    #[test]
    fn help_prints_usage() {
        let (r, out) = run(&["help"]);
        r.unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn spectral_reports_rho() {
        let (r, out) = run(&["spectral", "--workers", "3", "--p", "2", "--rounds", "4000"]);
        r.unwrap();
        assert!(out.contains("rho"), "{out}");
        // Homogeneous N=3 P=2 should land near 0.5.
        let rho: f64 = out
            .lines()
            .find(|l| l.contains("rho     ="))
            .and_then(|l| l.split('=').nth(1))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!((rho - 0.5).abs() < 0.05, "rho = {rho}");
    }

    #[test]
    fn scale_runs_a_small_fleet() {
        let (r, out) = run(&["scale", "--workers", "64", "--p", "4", "--signals", "2000"]);
        r.unwrap();
        assert!(out.contains("0 violation(s)"), "{out}");
        assert!(out.contains("rho"), "{out}");
    }

    #[test]
    fn scale_json_output_is_parseable() {
        let (r, out) = run(&[
            "scale",
            "--workers",
            "32",
            "--p",
            "4",
            "--signals",
            "1000",
            "--json",
            "true",
        ]);
        r.unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["num_workers"], 32);
        assert_eq!(v["checker_violations"], 0);
        assert!(v["groups"].as_u64().unwrap() > 0, "{out}");
    }

    #[test]
    fn scale_rejects_unknown_preset_and_bad_shape() {
        let (r, out) = run(&["scale", "--hetero", "quantum"]);
        assert!(matches!(r, Err(CliError::Unknown(_))), "{out}");
        let (r, out) = run(&["scale", "--workers", "4", "--p", "9"]);
        assert!(matches!(r, Err(CliError::Unknown(_))), "{out}");
        let (r, out) = run(&["scale", "--signals", "0"]);
        assert!(matches!(r, Err(CliError::Unknown(_))), "{out}");
    }

    #[test]
    fn run_executes_a_tiny_experiment() {
        let (r, out) = run(&[
            "run",
            "--strategy",
            "p-reduce",
            "--p",
            "2",
            "--workers",
            "4",
            "--max-updates",
            "80",
            "--eval-every",
            "40",
            "--threshold",
            "0.99",
        ]);
        r.unwrap();
        assert!(out.contains("P-Reduce CON (P=2)"), "{out}");
        assert!(out.contains("hit cap"), "{out}");
    }

    #[test]
    fn run_json_output_is_parseable() {
        let (r, out) = run(&[
            "run",
            "--strategy",
            "all-reduce",
            "--workers",
            "4",
            "--max-updates",
            "40",
            "--eval-every",
            "40",
            "--threshold",
            "0.99",
            "--json",
            "true",
        ]);
        r.unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["strategy"], "All-Reduce");
        assert_eq!(v["updates"], 40);
    }

    #[test]
    fn run_threaded_backend_executes() {
        let (r, out) = run(&[
            "run",
            "--strategy",
            "all-reduce",
            "--backend",
            "threaded",
            "--workers",
            "2",
            "--iters",
            "4",
        ]);
        r.unwrap();
        assert!(out.contains("All-Reduce"), "{out}");
        // 2 workers x 4 local updates each.
        assert!(out.contains("8 updates"), "{out}");
    }

    #[test]
    fn unknown_backend_is_an_error() {
        let (r, out) = run(&["run", "--backend", "mpi", "--workers", "4"]);
        assert!(matches!(r, Err(CliError::Unknown(_))), "{out}");
    }

    #[test]
    fn run_accepts_a_fault_plan() {
        let (r, out) = run(&[
            "run",
            "--strategy",
            "p-reduce",
            "--p",
            "2",
            "--workers",
            "4",
            "--max-updates",
            "60",
            "--eval-every",
            "30",
            "--threshold",
            "0.99",
            "--fault-plan",
            "crash:3@5,stall:1x2@2",
        ]);
        r.unwrap();
        assert!(out.contains("P-Reduce CON (P=2)"), "{out}");
    }

    #[test]
    fn malformed_fault_plan_is_an_error() {
        let (r, out) = run(&["run", "--workers", "4", "--fault-plan", "explode:1@2"]);
        assert!(matches!(r, Err(CliError::Unknown(_))), "{out}");
    }

    #[test]
    fn threaded_trace_out_then_check_roundtrips_clean() {
        let dir = std::env::temp_dir().join("preduce-cli-threaded-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let path_str = path.to_str().unwrap();

        let (r, _) = run(&[
            "run",
            "--strategy",
            "p-reduce",
            "--p",
            "2",
            "--workers",
            "4",
            "--backend",
            "threaded",
            "--iters",
            "6",
            "--trace-out",
            path_str,
        ]);
        r.unwrap();

        let (r, out) = run(&["trace", "--check", path_str]);
        r.unwrap();
        assert!(out.contains("0 violation(s)"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_file_roundtrip_drives_a_run() {
        // Serialize a config, load it back through --config, run it.
        let args = Args::parse([
            "--workers",
            "4",
            "--max-updates",
            "40",
            "--eval-every",
            "40",
            "--threshold",
            "0.99",
        ])
        .unwrap();
        let config = config_from_args(&args).unwrap();
        let dir = std::env::temp_dir().join("preduce-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exp.json");
        std::fs::write(&path, serde_json::to_string_pretty(&config).unwrap()).unwrap();

        let (r, out) = run(&[
            "run",
            "--strategy",
            "all-reduce",
            "--config",
            path.to_str().unwrap(),
        ]);
        r.unwrap();
        assert!(out.contains("All-Reduce"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_out_then_check_roundtrips_clean() {
        let dir = std::env::temp_dir().join("preduce-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let path_str = path.to_str().unwrap();

        let (r, _) = run(&[
            "run",
            "--strategy",
            "p-reduce",
            "--p",
            "2",
            "--workers",
            "4",
            "--max-updates",
            "60",
            "--eval-every",
            "30",
            "--threshold",
            "0.99",
            "--trace-out",
            path_str,
        ]);
        r.unwrap();

        let (r, out) = run(&["trace", "--check", path_str]);
        r.unwrap();
        assert!(out.contains("0 violation(s)"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_check_flags_a_corrupted_trace() {
        use partial_reduce::TraceEvent;

        let dir = std::env::temp_dir().join("preduce-cli-trace-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        // A group without RunStarted, with a duplicate member and a weight
        // row that does not sum to 1.
        let ev = TraceEvent::GroupFormed {
            sequence: 0,
            members: vec![1, 1],
            iterations: vec![2, 2],
            weights: vec![0.9, 0.9],
            new_iteration: 2,
            repaired: false,
        };
        std::fs::write(&path, serde_json::to_string(&ev).unwrap() + "\n").unwrap();

        let (r, out) = run(&["trace", "--check", path.to_str().unwrap()]);
        assert!(matches!(r, Err(CliError::Invariant(_))), "{out}");
        assert!(out.contains("duplicate members"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_without_check_flag_is_an_error() {
        let command = Command::from_name("trace").unwrap();
        let args = Args::parse([] as [&str; 0]).unwrap();
        let mut out = Vec::new();
        let r = run_command(command, &args, &mut out);
        assert!(matches!(r, Err(CliError::Unknown(_))));
    }

    #[test]
    fn missing_config_file_is_a_clean_error() {
        let command = Command::from_name("run").unwrap();
        let args = Args::parse(["--config", "/nonexistent/exp.json"]).unwrap();
        let mut out = Vec::new();
        let r = run_command(command, &args, &mut out);
        assert!(matches!(r, Err(CliError::Unknown(_))));
    }

    #[test]
    fn unknown_strategy_is_an_error() {
        let command = Command::from_name("run").unwrap();
        let args = Args::parse(["--strategy", "magic"]).unwrap();
        let mut out = Vec::new();
        let r = run_command(command, &args, &mut out);
        assert!(matches!(r, Err(CliError::Unknown(_))));
    }

    #[test]
    fn controller_and_worker_subcommands_parse() {
        assert_eq!(
            Command::from_name("controller").unwrap(),
            Command::Controller
        );
        assert_eq!(Command::from_name("worker").unwrap(), Command::Worker);
        let (_, out) = run(&["help"]);
        assert!(out.contains("preduce controller"), "{out}");
        assert!(out.contains("preduce worker"), "{out}");
    }

    #[test]
    fn worker_without_connect_is_an_error() {
        let (r, out) = run(&["worker", "--rank", "0"]);
        assert!(matches!(r, Err(CliError::Unknown(_))), "{out}");
    }

    #[test]
    fn worker_without_rank_is_an_error() {
        let (r, out) = run(&["worker", "--connect", "127.0.0.1:1"]);
        assert!(matches!(r, Err(CliError::Unknown(_))), "{out}");
    }

    #[test]
    fn worker_with_unparseable_rank_is_an_error() {
        let (r, out) = run(&["worker", "--connect", "127.0.0.1:1", "--rank", "zero"]);
        assert!(matches!(r, Err(CliError::Args(_))), "{out}");
    }

    #[test]
    fn worker_with_bad_address_is_an_error() {
        let (r, out) = run(&["worker", "--connect", "nowhere", "--rank", "0"]);
        assert!(matches!(r, Err(CliError::Unknown(_))), "{out}");
    }

    #[test]
    fn worker_rank_outside_fleet_is_internal_error() {
        // The rank check fires before dialing, so no controller is needed.
        let (r, out) = run(&[
            "worker",
            "--connect",
            "127.0.0.1:1",
            "--rank",
            "9",
            "--workers",
            "2",
        ]);
        assert!(matches!(r, Err(CliError::Internal(_))), "{out}");
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(matches!(
            Command::from_name("frobnicate"),
            Err(CliError::Unknown(_))
        ));
    }

    #[test]
    fn lint_reports_clean_on_this_workspace() {
        let root = env!("CARGO_MANIFEST_DIR");
        let root = std::path::Path::new(root)
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let (r, out) = run(&["lint", "--root", root.to_str().unwrap()]);
        r.unwrap();
        assert!(out.contains("workspace clean"), "{out}");
    }

    #[test]
    fn lint_counts_findings_in_a_dirty_tree() {
        let dir = std::env::temp_dir().join("preduce-cli-lint-dirty");
        let src = dir.join("crates/core/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
        std::fs::write(
            src.join("controller.rs"),
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        )
        .unwrap();
        let (r, out) = run(&["lint", "--root", dir.to_str().unwrap()]);
        assert!(matches!(r, Err(CliError::Lint(1))), "{out}");
        assert!(out.contains("panic-path"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lint_json_format_emits_stable_schema() {
        let dir = std::env::temp_dir().join("preduce-cli-lint-json");
        let src = dir.join("crates/core/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
        std::fs::write(
            src.join("controller.rs"),
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        )
        .unwrap();
        let (r, out) = run(&["lint", "--root", dir.to_str().unwrap(), "--format", "json"]);
        assert!(matches!(r, Err(CliError::Lint(1))), "{out}");
        assert!(
            out.starts_with("{\"schema\":\"preduce-lint/1\",\"count\":1,"),
            "{out}"
        );
        assert!(out.contains("\"pass\":\"panic-path\""), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lint_pass_selection_filters_findings() {
        let dir = std::env::temp_dir().join("preduce-cli-lint-pass");
        let src = dir.join("crates/core/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
        std::fs::write(
            src.join("controller.rs"),
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        )
        .unwrap();
        // The dirty line is a panic-path finding; selecting only
        // weight-stochasticity must come back clean.
        let (clean, out) = run(&[
            "lint",
            "--root",
            dir.to_str().unwrap(),
            "--pass",
            "weight-stochasticity",
        ]);
        clean.unwrap();
        assert!(out.contains("workspace clean"), "{out}");
        let (dirty, out) = run(&[
            "lint",
            "--root",
            dir.to_str().unwrap(),
            "--pass",
            "panic-path,weight-stochasticity",
        ]);
        assert!(matches!(dirty, Err(CliError::Lint(1))), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
        // Unknown pass names and formats are usage errors (exit 2).
        let (bad_pass, _) = run(&["lint", "--pass", "made-up"]);
        assert!(matches!(bad_pass, Err(CliError::Unknown(_))));
        let (bad_fmt, _) = run(&["lint", "--format", "yaml"]);
        assert!(matches!(bad_fmt, Err(CliError::Unknown(_))));
    }

    #[test]
    fn exit_codes_distinguish_failure_modes() {
        assert_eq!(CliError::Unknown("x".into()).exit_code(), 2);
        assert_eq!(CliError::Internal("x".into()).exit_code(), 3);
        assert_eq!(CliError::Invariant(2).exit_code(), 4);
        assert_eq!(CliError::Lint(1).exit_code(), 1);
    }
}
